"""Ablation A8 — Fig. 5 pipeline vs hierarchical ring allreduce.

The paper's future work asks for evaluating SRM "under different assumptions
and parameter values"; the most natural algorithmic question is whether the
Fig. 5 reduce+broadcast pipeline (log k network rounds, every byte crosses
the network twice on the tree) should yield to a bandwidth-optimal
hierarchical ring (2(k-1) rounds, 2(k-1)/k of the bytes per master) for
very large messages.  Expected shape: the pipeline wins at small/medium
sizes (latency-bound), the ring takes over for multi-megabyte payloads.
"""

import numpy as np

from repro.bench import build, format_bytes, format_us, print_table, time_operation
from repro.core import SRMConfig
from repro.machine import ClusterSpec

NODES = 16
SIZES = (64 * 1024, 512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024)


def _timed(algorithm: str, nbytes: int) -> float:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=16)
    machine, srm = build(
        "srm", spec, srm_config=SRMConfig(allreduce_algorithm=algorithm)
    )
    return time_operation(machine, srm, "allreduce", nbytes, repeats=2, warmup=1).seconds


def bench_abl8_pipeline_vs_ring_allreduce(run_once):
    def sweep():
        info = {}
        rows = []
        for nbytes in SIZES:
            pipeline = _timed("pipeline", nbytes)
            ring = _timed("ring", nbytes)
            rows.append(
                [
                    format_bytes(nbytes),
                    format_us(pipeline),
                    format_us(ring),
                    f"{ring / pipeline:.2f}x",
                ]
            )
            info[f"pipeline_{nbytes}"] = pipeline * 1e6
            info[f"ring_{nbytes}"] = ring * 1e6
        print_table(
            f"A8: SRM allreduce, Fig. 5 pipeline vs hierarchical ring, {NODES} nodes [us]",
            ["size", "pipeline", "ring", "ring/pipeline"],
            rows,
        )
        return info

    info = run_once(sweep)
    # Latency-bound regime: the paper's pipeline is the right default.
    assert info[f"pipeline_{SIZES[0]}"] < info[f"ring_{SIZES[0]}"]
    # Bandwidth-bound regime: the ring overtakes for multi-MB payloads.
    assert info[f"ring_{SIZES[-1]}"] < info[f"pipeline_{SIZES[-1]}"]
