"""Shared helpers for the figure benchmarks.

Each benchmark regenerates one of the paper's figures: it runs the relevant
simulated sweep exactly once (``benchmark.pedantic`` — the simulation clock
is deterministic, so re-running buys nothing), prints the same series the
paper plots (visible with ``-s``), attaches the numbers to
``benchmark.extra_info``, and asserts the *shape* claims the reproduction
is accountable for (who wins, by roughly what factor, where the crossovers
fall).

``--bench-json PATH`` additionally collects every benchmark's extra_info
into one identity-stamped JSON document (same cost-model fingerprint as the
``BENCH_*.json`` snapshots — see docs/benchmarking.md), so a figures run
leaves a diffable artifact next to the perf-gate snapshot.
"""

from __future__ import annotations

import json
import typing

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        help="write every benchmark's series data to this JSON file, "
        "stamped with the cost-model identity fingerprint",
    )


def pytest_configure(config):
    config._bench_json_results = {}


@pytest.fixture
def run_once(benchmark, request):
    """Run a zero-argument callable once under pytest-benchmark and return
    its value; attach any dict it returns to extra_info."""

    def runner(fn: typing.Callable[[], typing.Any]):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        if isinstance(result, dict):
            for key, value in result.items():
                benchmark.extra_info[str(key)] = value
            request.config._bench_json_results[request.node.nodeid] = {
                str(key): value for key, value in result.items()
            }
        return result

    return runner


def pytest_sessionfinish(session, exitstatus):
    target = session.config.getoption("--bench-json")
    results = getattr(session.config, "_bench_json_results", None)
    if not target or not results:
        return
    from repro.bench.export import bench_identity, identity_fingerprint

    identity = bench_identity()
    document = {
        "kind": "repro-bench-figures",
        "identity": identity,
        "fingerprint": identity_fingerprint(identity),
        "results": {nodeid: results[nodeid] for nodeid in sorted(results)},
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    print(f"\nwrote figure benchmark series to {target}")
