"""Shared helpers for the figure benchmarks.

Each benchmark regenerates one of the paper's figures: it runs the relevant
simulated sweep exactly once (``benchmark.pedantic`` — the simulation clock
is deterministic, so re-running buys nothing), prints the same series the
paper plots (visible with ``-s``), attaches the numbers to
``benchmark.extra_info``, and asserts the *shape* claims the reproduction
is accountable for (who wins, by roughly what factor, where the crossovers
fall).
"""

from __future__ import annotations

import typing

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable once under pytest-benchmark and return
    its value; attach any dict it returns to extra_info."""

    def runner(fn: typing.Callable[[], typing.Any]):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        if isinstance(result, dict):
            for key, value in result.items():
                benchmark.extra_info[str(key)] = value
        return result

    return runner
