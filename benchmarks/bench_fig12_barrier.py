"""Figure 12 — barrier time versus processor count (SRM, IBM MPI, MPICH).

Acceptance shape: SRM is fastest at every processor count, scales gently
(~log in node count), and at 256 processors clearly outperforms both MPI
implementations (the paper reports a 73% improvement; the simulated
substrate reproduces a >=50% improvement — see EXPERIMENTS.md for the
residual discussion).
"""

from repro.bench import format_us, measure, print_table, processor_configs, ratio_percent


def bench_fig12_barrier_scaling(run_once):
    configs = processor_configs()

    def sweep():
        rows = []
        info = {}
        for nodes in configs:
            srm = measure("srm", "barrier", 0, nodes)
            ibm = measure("ibm", "barrier", 0, nodes)
            mpich = measure("mpich", "barrier", 0, nodes)
            rows.append(
                [
                    f"P={16 * nodes}",
                    format_us(srm.seconds),
                    format_us(ibm.seconds),
                    format_us(mpich.seconds),
                ]
            )
            info[f"srm_P{16 * nodes}"] = srm.microseconds
            info[f"ibm_P{16 * nodes}"] = ibm.microseconds
            info[f"mpich_P{16 * nodes}"] = mpich.microseconds
            info[f"ratio_ibm_P{16 * nodes}"] = ratio_percent(srm, ibm)
        print_table(
            "Fig. 12: barrier time vs processor count [us]",
            ["procs", "SRM", "IBM MPI", "MPICH"],
            rows,
        )
        return info

    info = run_once(sweep)
    for nodes in configs:
        P = 16 * nodes
        assert info[f"srm_P{P}"] < info[f"ibm_P{P}"], f"SRM barrier not fastest at P={P}"
        assert info[f"srm_P{P}"] < info[f"mpich_P{P}"], f"SRM barrier not fastest at P={P}"
    # At the largest configuration the improvement is substantial (>= 50%).
    largest = 16 * configs[-1]
    assert info[f"ratio_ibm_P{largest}"] < 50.0
