"""Model validation — the analytical model of §5 against the simulator.

The closed-form model (:mod:`repro.analysis.model`) ignores contention and
interrupt second-order effects, so it will not match the simulation exactly;
this benchmark records the model/simulation ratio across the sweep and
asserts it stays within a calibrated band, making the model safe to use for
the what-if questions §5 raises.
"""

from repro.analysis import model
from repro.bench import build, format_bytes, print_table, time_operation
from repro.machine import ClusterSpec, CostModel

BAND = (0.4, 2.0)
SIZES = (64, 4096, 65536, 1 << 20)
NODE_COUNTS = (4, 16)

OPERATIONS = {
    "broadcast": model.srm_broadcast_time,
    "reduce": model.srm_reduce_time,
    "allreduce": model.srm_allreduce_time,
}


def bench_model_vs_simulation(run_once):
    cost = CostModel.ibm_sp_colony()

    def sweep():
        info = {}
        rows = []
        for nodes in NODE_COUNTS:
            spec = ClusterSpec(nodes=nodes, tasks_per_node=16)
            for operation, model_fn in OPERATIONS.items():
                for nbytes in SIZES:
                    machine, srm = build("srm", spec)
                    simulated = time_operation(
                        machine, srm, operation, nbytes, repeats=2, warmup=1
                    ).seconds
                    predicted = model_fn(cost, spec, nbytes)
                    ratio = predicted / simulated
                    info[f"{operation}_{nodes}_{nbytes}"] = ratio
                    rows.append(
                        [operation, nodes, format_bytes(nbytes), f"{ratio:.2f}"]
                    )
            machine, srm = build("srm", spec)
            simulated = time_operation(machine, srm, "barrier", repeats=3, warmup=1).seconds
            ratio = model.srm_barrier_time(cost, spec) / simulated
            info[f"barrier_{nodes}"] = ratio
            rows.append(["barrier", nodes, "-", f"{ratio:.2f}"])
        print_table(
            "Model validation: analytical / simulated time",
            ["op", "nodes", "size", "model/sim"],
            rows,
        )
        return info

    info = run_once(sweep)
    for key, ratio in info.items():
        assert BAND[0] <= ratio <= BAND[1], f"model diverged on {key}: {ratio:.2f}"


def bench_model_crossover_question(run_once):
    """One of §5's what-ifs, answered analytically: how fat can an SMP node
    get before its internal fan-out costs as much as a network hop?"""
    cost = CostModel.ibm_sp_colony()

    def sweep():
        rows = []
        info = {}
        for nbytes in (1024, 16 * 1024, 65536):
            node_size = model.crossover_node_size(cost, nbytes)
            rows.append([format_bytes(nbytes), node_size])
            info[f"crossover_{nbytes}"] = node_size
        print_table(
            "Node size at which SMP fan-out exceeds one network hop",
            ["message", "node size"],
            rows,
        )
        return info

    info = run_once(sweep)
    # On Colony-class parameters, 16-way nodes are still comfortably on the
    # shared-memory-wins side for small messages.
    assert info["crossover_1024"] > 16
