"""Ablation A5 (§2.3) — the Eager/Rendezvous trade-off SRM escapes.

Two effects of the baseline MPI's buffer management are demonstrated on the
raw p2p substrate:

1. the eager limit *shrinks with the task count* (the P-1-buffers memory
   argument), so a mid-size message that travels eagerly in a 16-task job
   is forced onto the slower rendezvous path in a 256-task job;
2. crossing the eager limit costs a visible latency jump (the handshake
   round trip) at any fixed task count.
"""

import numpy as np

from repro.bench import format_bytes, format_us, print_table
from repro.machine import ClusterSpec, Machine

KB = 1024


def _p2p_time(total_nodes: int, nbytes: int) -> float:
    """One inter-node send/recv on a cluster sized to set the eager limit."""
    machine = Machine(ClusterSpec(nodes=total_nodes, tasks_per_node=16))
    src = np.ones(nbytes, np.uint8)
    dst = np.zeros(nbytes, np.uint8)
    peer = machine.spec.first_rank(total_nodes - 1)

    def program(task):
        if task.rank == 0:
            yield from task.mpi.send(peer, src, tag=1)
        else:
            yield from task.mpi.recv(0, 1, dst)

    machine.launch(program, ranks=[0, peer])  # warm
    start = machine.now
    machine.launch(program, ranks=[0, peer])
    return machine.now - start


def bench_abl5_eager_limit_shrinks_with_scale(run_once):
    sizes = [2 * KB, 8 * KB, 16 * KB, 32 * KB]
    node_counts = [1, 4, 16]  # P = 16, 64, 256

    def sweep():
        info = {}
        rows = []
        for nbytes in sizes:
            row = [format_bytes(nbytes)]
            for nodes in node_counts:
                seconds = _p2p_time(max(nodes, 2), nbytes)
                row.append(format_us(seconds))
                info[f"{nbytes}_{nodes}"] = seconds * 1e6
            rows.append(row)
        machine = Machine(ClusterSpec(nodes=16, tasks_per_node=16))
        for nodes in node_counts:
            spec_machine = Machine(ClusterSpec(nodes=max(nodes, 2), tasks_per_node=16))
            info[f"limit_{nodes}"] = spec_machine.task(0).mpi.eager_limit
        del machine
        print_table(
            "A5a: inter-node p2p latency vs job size [us]",
            ["size"] + [f"P={16 * n}" for n in node_counts],
            rows,
        )
        return info

    info = run_once(sweep)
    # The effective eager limit decreases with the task count (§2.3) ...
    assert info["limit_1"] > info["limit_4"] > info["limit_16"]
    # ... so a 16 KB message is eager at P=32 but rendezvous at P=256:
    # the SAME point-to-point message is slower on the bigger job by a
    # visible handshake margin even though nothing else changed.
    assert info["16384_16"] > info["16384_1"] + 20.0


def bench_abl5_rendezvous_jump(run_once):
    def sweep():
        machine = Machine(ClusterSpec(nodes=2, tasks_per_node=16))
        limit = machine.task(0).mpi.eager_limit
        below = _p2p_time(2, limit)
        above = _p2p_time(2, limit + 1024)
        print_table(
            f"A5b: latency jump at the eager limit ({format_bytes(limit)})",
            ["message", "time [us]"],
            [
                [f"limit ({format_bytes(limit)})", format_us(below)],
                [f"limit + 1KB", format_us(above)],
            ],
        )
        return {"below": below * 1e6, "above": above * 1e6, "limit": limit}

    info = run_once(sweep)
    # Crossing into rendezvous costs far more than the extra kilobyte.
    extra_bytes_time = 1024 / 350e6 * 1e6
    assert info["above"] > info["below"] + extra_bytes_time + 20.0
