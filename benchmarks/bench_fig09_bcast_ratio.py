"""Figure 9 — SRM broadcast time as a fraction of IBM MPI (left) and MPICH
(right) MPI_Bcast, full 8 B – 8 MB range, P = 16 ... 256.

Acceptance shape: every ratio is below 100% (SRM always wins, as in every
test run of the paper), and the P=256 improvements overlap the paper's
27–84% headline band.
"""

from _figures import ratio_surface


def bench_fig09_vs_ibm(run_once):
    info = run_once(lambda: ratio_surface("broadcast", "ibm", "Fig. 9 (left)"))
    assert all(percent < 100.0 for percent in info.values())
    # Paper: SRM bcast beats IBM MPI by 27%-84% depending on size/P.
    improvements = [100.0 - percent for percent in info.values()]
    assert max(improvements) > 27.0
    assert min(improvements) > 0.0


def bench_fig09_vs_mpich(run_once):
    info = run_once(lambda: ratio_surface("broadcast", "mpich", "Fig. 9 (right)"))
    assert all(percent < 100.0 for percent in info.values())
