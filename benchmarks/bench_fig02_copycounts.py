"""Figure 2 — the data-movement argument, audited.

The paper's intra-node case: an SMP-reduce over 8 tasks moves data 4 times
(one copy per binomial-tree leaf) while a message-passing reduce on the same
tree moves it 7 times, "internally 7 or even 14 memory copies".  We audit
the real implementations' copy counters against the analytic counts.
"""

from repro.analysis import audit_reduce, message_passing_reduce_analytic, smp_reduce_analytic
from repro.bench import print_table


def bench_fig02_copy_counts(run_once):
    def audit():
        rows = []
        info = {}
        for tasks in (4, 8, 16):
            analytic = smp_reduce_analytic(tasks)
            mp_analytic = message_passing_reduce_analytic(tasks)
            srm_audit = audit_reduce(tasks, "srm")
            mpi_audit = audit_reduce(tasks, "mpi")
            rows.append(
                [
                    tasks,
                    analytic.copies,
                    srm_audit.copies,
                    f"{mp_analytic.messages}-{mp_analytic.copies}",
                    mpi_audit.copies,
                ]
            )
            info[f"srm_analytic_{tasks}"] = analytic.copies
            info[f"srm_audit_{tasks}"] = srm_audit.copies
            info[f"mpi_audit_{tasks}"] = mpi_audit.copies
        print_table(
            "Fig. 2: intra-node reduce data movements",
            ["tasks", "SRM analytic", "SRM audited", "MP analytic (msgs-copies)", "MPI audited"],
            rows,
        )
        return info

    info = run_once(audit)
    # Paper's 8-task case: exactly 4 copies for SRM ...
    assert info["srm_analytic_8"] == 4
    assert info["srm_audit_8"] == 4
    # ... and well above 7 movements for the message-passing version.
    assert info["mpi_audit_8"] >= 7
    # The gap widens with the task count (the paper's scaling argument).
    assert info["mpi_audit_16"] - info["srm_audit_16"] > info["mpi_audit_8"] - info["srm_audit_8"]
