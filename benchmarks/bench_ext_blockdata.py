"""Extension benchmark — RMA-native block-data collectives.

The gather/scatter/allgather extensions follow the substrate's logic: SRM
replaces the baselines' packed binomial forwarding (which moves every block
log-depth times) with direct one-sided puts (each block moves once).  The
expected shape: SRM wins everywhere; for scatter/gather its margin grows (or
holds) with the block size because the baselines pay packing copies and
store-and-forward bandwidth, while for allgather both SRM's hierarchical
master ring and MPI's rank ring are bandwidth-optimal at large sizes, so the
margin narrows toward the pure shared-memory saving.
"""

import numpy as np

from repro.bench import build, format_bytes, format_us, print_table
from repro.machine import ClusterSpec

NODES = 8
TASKS = 8
BLOCKS = (256, 8 * 1024)


def _timed(name: str, operation: str, block: int) -> float:
    machine, stack = build(name, ClusterSpec(nodes=NODES, tasks_per_node=TASKS))
    total = machine.spec.total_tasks
    blocks = {r: np.full(block, r % 251, np.uint8) for r in range(total)}
    fullbuf = np.zeros(block * total, np.uint8)
    outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}
    scatter_out = {r: np.zeros(block, np.uint8) for r in range(total)}

    def program(task):
        if operation == "gather":
            dst = fullbuf if task.rank == 0 else None
            yield from stack.gather(task, blocks[task.rank], dst, root=0)
        elif operation == "scatter":
            src = fullbuf if task.rank == 0 else None
            yield from stack.scatter(task, src, scatter_out[task.rank], root=0)
        else:
            yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program)  # warm
    start = machine.now
    machine.launch(program)
    return machine.now - start


def bench_ext_block_collectives(run_once):
    def sweep():
        info = {}
        rows = []
        for operation in ("scatter", "gather", "allgather"):
            for block in BLOCKS:
                times = {name: _timed(name, operation, block) for name in ("srm", "ibm", "mpich")}
                rows.append(
                    [
                        operation,
                        format_bytes(block),
                        format_us(times["srm"]),
                        format_us(times["ibm"]),
                        format_us(times["mpich"]),
                        f"{100 * times['srm'] / times['ibm']:.1f}%",
                    ]
                )
                for name, seconds in times.items():
                    info[f"{operation}_{block}_{name}"] = seconds * 1e6
        print_table(
            f"Block-data collectives on {NODES}x{TASKS} [us]",
            ["op", "block", "SRM", "IBM MPI", "MPICH", "srm/ibm"],
            rows,
        )
        return info

    info = run_once(sweep)
    for operation in ("scatter", "gather", "allgather"):
        for block in BLOCKS:
            assert info[f"{operation}_{block}_srm"] < info[f"{operation}_{block}_ibm"], (
                f"SRM lost {operation} at {block} B"
            )
    # The one-sided advantage grows (or holds) with block size for the
    # rooted operations.
    for operation in ("scatter", "gather"):
        small_ratio = info[f"{operation}_{BLOCKS[0]}_srm"] / info[f"{operation}_{BLOCKS[0]}_ibm"]
        large_ratio = info[f"{operation}_{BLOCKS[1]}_srm"] / info[f"{operation}_{BLOCKS[1]}_ibm"]
        assert large_ratio < small_ratio * 1.1
