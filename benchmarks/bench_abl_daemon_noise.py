"""Ablation A6 (§2.1) — system daemons and the 15-of-16 configuration.

"To minimize the impact of the system daemons running on each node, some
applications on the IBM SP leave out one processor and use only 15 of the 16
processors per node.  For that case, too, our embedding is optimal."

With daemon noise injected (periodic memory-bus theft per node), we compare
16 tasks/node against 15 tasks/node at a similar total task count, and check
that (a) noise hurts, (b) the 15-way configuration gives back part of the
loss per task, and (c) the SRM embedding stays correct and efficient for the
non-power-of-two node size.
"""

from repro.bench import build, format_us, print_table, time_operation
from repro.machine import ClusterSpec, CostModel

NODES = 8
NBYTES = 16 * 1024


def _bcast(tasks_per_node: int, noisy: bool) -> float:
    cost = CostModel.ibm_sp_colony()
    if noisy:
        # One daemon preemption burst per node roughly every 300 us.
        cost = cost.evolve(daemon_interval=300e-6, daemon_duration=150e-6)
    spec = ClusterSpec(nodes=NODES, tasks_per_node=tasks_per_node)
    machine, srm = build("srm", spec, cost=cost, seed=42)
    return time_operation(machine, srm, "broadcast", NBYTES, repeats=4, warmup=1).seconds


def bench_abl6_daemon_noise_and_15_of_16(run_once):
    def sweep():
        quiet16 = _bcast(16, noisy=False)
        noisy16 = _bcast(16, noisy=True)
        quiet15 = _bcast(15, noisy=False)
        noisy15 = _bcast(15, noisy=True)
        print_table(
            f"A6: 16KB SRM broadcast on {NODES} nodes, daemon noise [us]",
            ["config", "quiet", "noisy", "noise cost"],
            [
                ["16 tasks/node", format_us(quiet16), format_us(noisy16), f"{noisy16 / quiet16:.2f}x"],
                ["15 tasks/node", format_us(quiet15), format_us(noisy15), f"{noisy15 / quiet15:.2f}x"],
            ],
        )
        return {
            "quiet16": quiet16 * 1e6,
            "noisy16": noisy16 * 1e6,
            "quiet15": quiet15 * 1e6,
            "noisy15": noisy15 * 1e6,
        }

    info = run_once(sweep)
    # Noise must visibly slow the collective.
    assert info["noisy16"] > info["quiet16"] * 1.02
    # The 15-of-16 embedding stays within the quiet 16-way cost envelope:
    # equation (1)'s optimality argument for non-power-of-two node sizes.
    assert info["quiet15"] <= info["quiet16"] * 1.05
