"""Extension benchmark — collectives over arbitrary task groups (§5).

The paper leaves "optimal embedding spanning trees for arbitrary MPI task
groups" as future work; this repository implements it (``SRM(machine,
group=...)``).  Two checks:

1. a group spanning k of n nodes costs about what a k-node world costs —
   the embedding only pays for the nodes it touches;
2. two disjoint half-machine groups run concurrent broadcasts in barely
   more time than one of them alone (independent buffers and counters).
"""

import numpy as np

from repro.bench import format_us, print_table
from repro.core import SRM
from repro.machine import ClusterSpec, Machine


def _group_bcast_time(machine, members, nbytes=16 * 1024, root=None):
    srm = SRM(machine, group=members)
    root = members[0] if root is None else root
    buffers = {r: np.zeros(nbytes, np.uint8) for r in members}
    buffers[root][:] = 1

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program, ranks=members)  # warm
    start = machine.now
    machine.launch(program, ranks=members)
    assert all(np.all(buffers[r] == 1) for r in members)
    return machine.now - start


def bench_ext_group_cost_tracks_used_nodes(run_once):
    def sweep():
        machine16 = Machine(ClusterSpec(nodes=16, tasks_per_node=16))
        # A group occupying 4 full nodes of the 16-node machine ...
        group = [rank for node in range(4) for rank in machine16.spec.ranks_on_node(node)]
        group_time = _group_bcast_time(machine16, group)
        # ... versus the same shape as a whole 4-node world.
        machine4 = Machine(ClusterSpec(nodes=4, tasks_per_node=16))
        world_time = _group_bcast_time(machine4, list(range(64)))
        print_table(
            "Group on 4/16 nodes vs a 4-node world (16KB broadcast) [us]",
            ["config", "time"],
            [
                ["group of 64 on 16-node machine", format_us(group_time)],
                ["world of 64 on 4-node machine", format_us(world_time)],
            ],
        )
        return {"group": group_time * 1e6, "world": world_time * 1e6}

    info = run_once(sweep)
    # The group pays for its 4 nodes, not the machine's 16.
    assert info["group"] <= info["world"] * 1.1


def bench_ext_disjoint_groups_overlap(run_once):
    def sweep():
        nbytes = 32 * 1024

        def solo():
            machine = Machine(ClusterSpec(nodes=8, tasks_per_node=8))
            members = [r for node in range(4) for r in machine.spec.ranks_on_node(node)]
            return _group_bcast_time(machine, members, nbytes)

        def together():
            machine = Machine(ClusterSpec(nodes=8, tasks_per_node=8))
            left = [r for node in range(4) for r in machine.spec.ranks_on_node(node)]
            right = [r for node in range(4, 8) for r in machine.spec.ranks_on_node(node)]
            srm_left = SRM(machine, group=left)
            srm_right = SRM(machine, group=right)
            buffers = {r: np.zeros(nbytes, np.uint8) for r in left + right}
            buffers[left[0]][:] = 1
            buffers[right[0]][:] = 2

            def program(task):
                if task.rank in left:
                    yield from srm_left.broadcast(task, buffers[task.rank], root=left[0])
                else:
                    yield from srm_right.broadcast(task, buffers[task.rank], root=right[0])

            machine.launch(program)  # warm
            start = machine.now
            machine.launch(program)
            return machine.now - start

        solo_time = solo()
        pair_time = together()
        print_table(
            "Disjoint half-machine groups, concurrent 32KB broadcasts [us]",
            ["config", "time"],
            [["one group alone", format_us(solo_time)], ["both groups concurrently", format_us(pair_time)]],
        )
        return {"solo": solo_time * 1e6, "pair": pair_time * 1e6}

    info = run_once(sweep)
    # Perfect overlap would be 1.0x; require clearly sub-serial behaviour.
    assert info["pair"] < 1.5 * info["solo"]
