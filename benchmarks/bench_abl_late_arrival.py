"""Ablation A7 (§4) — flag-based vs barrier-based shared-memory sync under
late arrivals.

The paper's comparison with Sistare et al. [11]: "in [11] a barrier was used
to synchronize access to shared memory buffers, whereas SRM uses shared
memory flags to coordinate access to buffers between the interacting task
pairs.  This weaker form of synchronization makes the overall algorithm
faster and less susceptible to the processor late arrivals and delays."

We inject a straggler (one task enters the operation late) and measure how
much of its delay each scheme's *other* tasks absorb.  With barriers every
task waits for the straggler before any buffer traffic; with SRM flags only
the root's fill couples to the drain state, so on-time readers of earlier
chunks proceed.
"""

import numpy as np

from repro.bench import format_us, print_table
from repro.core import SRM
from repro.core.smp.broadcast import barrier_synced_smp_broadcast_chunk, smp_broadcast_chunk
from repro.machine import ClusterSpec, Machine

TASKS = 8
CHUNKS = 6
CHUNK_BYTES = 4096
DELAY = 200e-6  # the straggler's lateness


def _run(flavor: str, straggler_delay: float) -> float:
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=TASKS))
    srm = SRM(machine)
    state = srm.ctx.nodes[0]
    source = np.ones(CHUNK_BYTES, np.uint8)
    sinks = {r: np.zeros(CHUNK_BYTES, np.uint8) for r in range(1, TASKS)}
    on_time_finish = {}

    def program(task):
        if task.rank == TASKS - 1 and straggler_delay:
            yield from task.compute(straggler_delay)
        for _chunk in range(CHUNKS):
            src = source if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank]
            if flavor == "flags":
                yield from smp_broadcast_chunk(state, task, task.rank == 0, src, dst)
            else:
                yield from barrier_synced_smp_broadcast_chunk(
                    state, task, task.rank == 0, src, dst
                )
        if task.rank == 1:
            on_time_finish["t"] = task.engine.now

    start = machine.now
    machine.launch(program)
    assert all(np.all(sink == 1) for sink in sinks.values())
    return on_time_finish["t"] - start


def bench_abl7_late_arrival_sensitivity(run_once):
    def sweep():
        info = {}
        rows = []
        for flavor in ("flags", "barrier"):
            quiet = _run(flavor, 0.0)
            late = _run(flavor, DELAY)
            absorbed = late - quiet
            rows.append(
                [flavor, format_us(quiet), format_us(late), format_us(absorbed)]
            )
            info[f"{flavor}_quiet"] = quiet * 1e6
            info[f"{flavor}_late"] = late * 1e6
            info[f"{flavor}_absorbed"] = absorbed * 1e6
        print_table(
            f"A7: on-time reader's completion, {TASKS}-way node, "
            f"{CHUNKS}x{CHUNK_BYTES}B chunks, straggler +{DELAY * 1e6:.0f}us",
            ["sync scheme", "no straggler", "with straggler", "delay absorbed"],
            rows,
        )
        return info

    info = run_once(sweep)
    # Even without a straggler, flags are faster (three barriers per chunk).
    assert info["flags_quiet"] < info["barrier_quiet"]
    # The barrier scheme passes the straggler's full delay (and then some:
    # every barrier re-couples to it) to the on-time tasks ...
    assert info["barrier_absorbed"] >= 0.95 * DELAY * 1e6
    # ... while the flag scheme's two-buffer pipeline lets on-time readers
    # run chunks ahead, visibly shielding part of the delay.  (The shield is
    # bounded by the two-buffer depth — with only two shared buffers the
    # root's refill eventually couples to the slowest reader too.)
    assert info["flags_absorbed"] < info["barrier_absorbed"] - 20.0
    assert info["flags_late"] < info["barrier_late"]
