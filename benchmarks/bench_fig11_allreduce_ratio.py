"""Figure 11 — SRM allreduce time as a fraction of IBM MPI (left) and MPICH
(right) MPI_Allreduce.

Acceptance shape: SRM wins everywhere; improvements overlap the paper's
30–73% band.
"""

from _figures import ratio_surface


def bench_fig11_vs_ibm(run_once):
    info = run_once(lambda: ratio_surface("allreduce", "ibm", "Fig. 11 (left)"))
    assert all(percent < 100.0 for percent in info.values())
    improvements = [100.0 - percent for percent in info.values()]
    assert max(improvements) > 30.0


def bench_fig11_vs_mpich(run_once):
    info = run_once(lambda: ratio_surface("allreduce", "mpich", "Fig. 11 (right)"))
    assert all(percent < 100.0 for percent in info.values())
