"""Figure 6 — SRM broadcast performance.

Left panel: absolute SRM broadcast time, 8 B – 8 MB, one curve per
processor count (16 tasks/node).  Right panel: SRM vs IBM MPI vs MPICH for
messages up to 64 KB on the largest configuration.
"""

from repro.bench import (
    format_bytes,
    format_us,
    measure,
    message_sizes,
    print_table,
    processor_configs,
    small_message_sizes,
)


def bench_fig06_left_srm_absolute(run_once):
    configs = processor_configs()
    sizes = message_sizes()

    def sweep():
        grid = {
            nodes: [measure("srm", "broadcast", nbytes, nodes) for nbytes in sizes]
            for nodes in configs
        }
        headers = ["size"] + [f"P={16 * nodes}" for nodes in configs]
        rows = [
            [format_bytes(nbytes)]
            + [format_us(grid[nodes][i].seconds) for nodes in configs]
            for i, nbytes in enumerate(sizes)
        ]
        print_table("Fig. 6 (left): SRM broadcast time [us]", headers, rows)
        return {
            f"P{16 * nodes}_{nbytes}B": grid[nodes][i].microseconds
            for nodes in configs
            for i, nbytes in enumerate(sizes)
        }

    info = run_once(sweep)
    # Shape: time grows with message size and with processor count.
    for nodes in configs:
        series = [info[f"P{16 * nodes}_{nbytes}B"] for nbytes in sizes]
        assert series == sorted(series), f"non-monotonic size scaling at {nodes} nodes"
    largest = sizes[-1]
    assert info[f"P{16 * configs[-1]}_{largest}B"] >= info[f"P{16 * configs[0]}_{largest}B"]


def bench_fig06_right_comparison_small(run_once):
    nodes = processor_configs()[-1]
    sizes = small_message_sizes()

    def sweep():
        rows = []
        info = {}
        for nbytes in sizes:
            srm = measure("srm", "broadcast", nbytes, nodes)
            ibm = measure("ibm", "broadcast", nbytes, nodes)
            mpich = measure("mpich", "broadcast", nbytes, nodes)
            rows.append(
                [
                    format_bytes(nbytes),
                    format_us(srm.seconds),
                    format_us(ibm.seconds),
                    format_us(mpich.seconds),
                ]
            )
            info[f"{nbytes}B"] = (srm.seconds, ibm.seconds, mpich.seconds)
        print_table(
            f"Fig. 6 (right): broadcast <=64KB at P={16 * nodes} [us]",
            ["size", "SRM", "IBM MPI", "MPICH"],
            rows,
        )
        return {f"srm_frac_ibm_{k}": 100 * v[0] / v[1] for k, v in info.items()} | {
            "raw": {k: v for k, v in info.items()}
        }

    info = run_once(sweep)
    # SRM is fastest at every size in the sub-range (Fig. 6 right).
    for key, value in info.items():
        if key.startswith("srm_frac_ibm_"):
            assert value < 100.0, f"SRM not fastest at {key}"
