"""Figure 10 — SRM reduce time as a fraction of IBM MPI (left) and MPICH
(right) MPI_Reduce.

Acceptance shape: SRM wins everywhere; P=256 improvements overlap the
paper's 24–79% band.
"""

from _figures import ratio_surface


def bench_fig10_vs_ibm(run_once):
    info = run_once(lambda: ratio_surface("reduce", "ibm", "Fig. 10 (left)"))
    assert all(percent < 100.0 for percent in info.values())
    improvements = [100.0 - percent for percent in info.values()]
    assert max(improvements) > 24.0


def bench_fig10_vs_mpich(run_once):
    info = run_once(lambda: ratio_surface("reduce", "mpich", "Fig. 10 (right)"))
    assert all(percent < 100.0 for percent in info.values())
