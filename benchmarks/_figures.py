"""Shared generators for the Figure 6–11 benchmark families.

Figures 6/7/8 share one template (absolute SRM curves + a <=64 KB
three-stack comparison), as do Figures 9/10/11 (SRM-to-MPI ratio surfaces);
these helpers keep each bench file down to the figure-specific assertions.
"""

from __future__ import annotations

from repro.bench import (
    format_bytes,
    format_us,
    measure,
    message_sizes,
    print_table,
    processor_configs,
    ratio_percent,
    small_message_sizes,
)


def absolute_series(operation: str, figure: str) -> dict[str, float]:
    """Fig. 6/7/8 left panels: SRM absolute time per size per P."""
    configs = processor_configs()
    sizes = message_sizes()
    grid = {
        nodes: [measure("srm", operation, nbytes, nodes) for nbytes in sizes]
        for nodes in configs
    }
    headers = ["size"] + [f"P={16 * nodes}" for nodes in configs]
    rows = [
        [format_bytes(nbytes)] + [format_us(grid[nodes][i].seconds) for nodes in configs]
        for i, nbytes in enumerate(sizes)
    ]
    print_table(f"{figure} (left): SRM {operation} time [us]", headers, rows)
    return {
        f"P{16 * nodes}_{nbytes}B": grid[nodes][i].microseconds
        for nodes in configs
        for i, nbytes in enumerate(sizes)
    }


def comparison_small(operation: str, figure: str) -> dict[str, float]:
    """Fig. 6/7/8 right panels: three stacks, <=64 KB, largest P."""
    nodes = processor_configs()[-1]
    rows = []
    info: dict[str, float] = {}
    for nbytes in small_message_sizes():
        srm = measure("srm", operation, nbytes, nodes)
        ibm = measure("ibm", operation, nbytes, nodes)
        mpich = measure("mpich", operation, nbytes, nodes)
        rows.append(
            [
                format_bytes(nbytes),
                format_us(srm.seconds),
                format_us(ibm.seconds),
                format_us(mpich.seconds),
            ]
        )
        info[f"ratio_ibm_{nbytes}B"] = ratio_percent(srm, ibm)
        info[f"ratio_mpich_{nbytes}B"] = ratio_percent(srm, mpich)
    print_table(
        f"{figure} (right): {operation} <=64KB at P={16 * nodes} [us]",
        ["size", "SRM", "IBM MPI", "MPICH"],
        rows,
    )
    return info


def ratio_surface(operation: str, baseline: str, figure: str) -> dict[str, float]:
    """Fig. 9/10/11: T_SRM / T_baseline * 100% over the full grid."""
    configs = processor_configs()
    sizes = message_sizes()
    info: dict[str, float] = {}
    rows = []
    for nbytes in sizes:
        row = [format_bytes(nbytes)]
        for nodes in configs:
            srm = measure("srm", operation, nbytes, nodes)
            base = measure(baseline, operation, nbytes, nodes)
            percent = ratio_percent(srm, base)
            info[f"P{16 * nodes}_{nbytes}B"] = percent
            row.append(f"{percent:.1f}%")
        rows.append(row)
    headers = ["size"] + [f"P={16 * nodes}" for nodes in configs]
    print_table(
        f"{figure}: SRM {operation} as %% of {baseline} (lower is better)",
        headers,
        rows,
    )
    return info
