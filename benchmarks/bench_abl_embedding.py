"""Ablation A3 (§2.1, Fig. 1) — SMP-aware tree embedding vs naive.

Isolates the embedding from the protocol: the same message-passing stack
(IBM-MPI-like) runs its broadcast/reduce once over the naive rotated-rank
binomial tree and once over the Fig. 1 SMP-aware embedding, for a root that
breaks the accidental rank/node alignment.  The embedded tree uses exactly
``nodes - 1`` network edges; the naive tree uses several times more, and
pays for it.
"""

from repro.bench import build, format_bytes, format_us, print_table, time_operation
from repro.machine import ClusterSpec
from repro.mpi.collectives import IbmMpi
from repro.trees import naive_rank_tree, smp_embedding

NODES = 8
ROOT = 5  # off-master root: rotation destroys node alignment
SIZES = (512, 8 * 1024)


class EmbeddedIbmMpi(IbmMpi):
    """IBM-MPI-like stack walking the SMP-aware tree instead of the naive one."""

    name = "IBM MPI (embedded tree)"

    def _tree(self, root):
        if root not in self._trees:
            self._trees[root] = smp_embedding(self.machine.spec, root).combined()
        return self._trees[root]


def _time(Stack, operation: str, nbytes: int) -> float:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=16)
    machine, _ = build("ibm", spec)
    stack = Stack(machine)
    return time_operation(machine, stack, operation, nbytes, root=ROOT, repeats=3, warmup=1).seconds


def bench_abl3_embedding(run_once):
    def sweep():
        spec = ClusterSpec(nodes=NODES, tasks_per_node=16)
        naive_edges = naive_rank_tree(spec, ROOT).cross_node_edges(spec)
        embedded_edges = smp_embedding(spec, ROOT).combined().cross_node_edges(spec)
        info = {"naive_edges": naive_edges, "embedded_edges": embedded_edges}
        rows = []
        for operation in ("broadcast", "reduce"):
            for nbytes in SIZES:
                naive = _time(IbmMpi, operation, nbytes)
                embedded = _time(EmbeddedIbmMpi, operation, nbytes)
                rows.append(
                    [operation, format_bytes(nbytes), format_us(naive), format_us(embedded)]
                )
                info[f"naive_{operation}_{nbytes}"] = naive * 1e6
                info[f"embedded_{operation}_{nbytes}"] = embedded * 1e6
        print_table(
            f"A3: naive vs SMP-aware tree on the same MPI stack, root={ROOT} "
            f"(network edges: {naive_edges} vs {embedded_edges}) [us]",
            ["op", "size", "naive tree", "embedded tree"],
            rows,
        )
        return info

    info = run_once(sweep)
    assert info["embedded_edges"] == NODES - 1
    assert info["naive_edges"] > info["embedded_edges"]
    for operation in ("broadcast", "reduce"):
        for nbytes in SIZES:
            assert info[f"embedded_{operation}_{nbytes}"] < info[f"naive_{operation}_{nbytes}"], (
                f"embedding did not help {operation}/{nbytes}"
            )
