"""The paper's §3 headline claims, checked at the largest configuration.

"Depending on the message size and number of processors, SRM broadcast
outperforms IBM MPI_Bcast by 27% to 84% ... reduce by 24% to 79% ...
allreduce by 30% to 73% ... barrier by 73% on 256 processors."

The simulated reproduction asserts the direction and the rough factor: the
best-case improvement in each operation's sweep reaches the paper's lower
band, and SRM never loses.
"""

from repro.bench import measure, message_sizes, print_table, processor_configs, ratio_percent

PAPER_BANDS = {
    "broadcast": (27.0, 84.0),
    "reduce": (24.0, 79.0),
    "allreduce": (30.0, 73.0),
}


def bench_headline_improvement_bands(run_once):
    nodes = processor_configs()[-1]

    def sweep():
        rows = []
        info = {}
        for operation, (low, high) in PAPER_BANDS.items():
            improvements = []
            for nbytes in message_sizes():
                srm = measure("srm", operation, nbytes, nodes)
                ibm = measure("ibm", operation, nbytes, nodes)
                improvements.append(100.0 - ratio_percent(srm, ibm))
            info[f"{operation}_min"] = min(improvements)
            info[f"{operation}_max"] = max(improvements)
            rows.append(
                [
                    operation,
                    f"{min(improvements):.1f}%",
                    f"{max(improvements):.1f}%",
                    f"{low:.0f}%-{high:.0f}%",
                ]
            )
        barrier_improvement = 100.0 - ratio_percent(
            measure("srm", "barrier", 0, nodes), measure("ibm", "barrier", 0, nodes)
        )
        info["barrier"] = barrier_improvement
        rows.append(["barrier", f"{barrier_improvement:.1f}%", "", "73%"])
        print_table(
            f"Headline: SRM improvement over IBM MPI at P={16 * nodes}",
            ["operation", "min", "max", "paper band"],
            rows,
        )
        return info

    info = run_once(sweep)
    for operation, (low, _high) in PAPER_BANDS.items():
        assert info[f"{operation}_min"] > 0.0, f"SRM lost somewhere on {operation}"
        assert info[f"{operation}_max"] >= low, (
            f"{operation}: best improvement {info[f'{operation}_max']:.1f}% "
            f"below the paper's lower band {low}%"
        )
    assert info["barrier"] >= 50.0
