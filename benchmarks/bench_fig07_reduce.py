"""Figure 7 — SRM reduce performance (sum over doubles, §3).

Left: absolute SRM reduce time per size per processor count.
Right: SRM vs IBM MPI vs MPICH MPI_Reduce for messages up to 64 KB at the
largest configuration.
"""

from _figures import absolute_series, comparison_small
from repro.bench import message_sizes, processor_configs


def bench_fig07_left_srm_absolute(run_once):
    info = run_once(lambda: absolute_series("reduce", "Fig. 7"))
    for nodes in processor_configs():
        series = [info[f"P{16 * nodes}_{nbytes}B"] for nbytes in message_sizes()]
        assert series == sorted(series), f"non-monotonic size scaling at {nodes} nodes"


def bench_fig07_right_comparison_small(run_once):
    info = run_once(lambda: comparison_small("reduce", "Fig. 7"))
    for key, percent in info.items():
        assert percent < 100.0, f"SRM reduce not fastest: {key}={percent:.1f}%"
