"""Ablation A1 (§2.1) — inter-node tree family.

"We implemented and experimented with the three tree types and found
binomial trees ... perform the best, for inter-node communication, in our
target environment."  We run the SRM broadcast and reduce with binomial,
binary, and Fibonacci inter-node trees.

Reproduction note (recorded in EXPERIMENTS.md): on the simulated cost model
the orderings are close and regime-dependent — low-degree (binary) trees
pipeline chunked messages slightly better, and Fibonacci trees edge out
binomial for tiny latency-bound messages (the postal-model regime, since a
LAPI put's origin overhead is far below the wire latency).  The paper's
empirical preference for binomial on the real SP is therefore asserted here
in its defensible form: binomial is always within 30% of the best family,
i.e. a safe universal default — and the family remains a config knob.
"""

from repro.bench import build, format_bytes, format_us, print_table, time_operation
from repro.core import SRMConfig
from repro.machine import ClusterSpec

FAMILIES = ("binomial", "binary", "fibonacci")
SIZES = (512, 16 * 1024)
NODES = 16


def _time(family: str, operation: str, nbytes: int) -> float:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=16)
    machine, srm = build("srm", spec, srm_config=SRMConfig(inter_family=family))
    return time_operation(machine, srm, operation, nbytes, repeats=3, warmup=1).seconds


def bench_abl1_inter_tree_family(run_once):
    def sweep():
        info = {}
        rows = []
        for operation in ("broadcast", "reduce"):
            for nbytes in SIZES:
                times = {family: _time(family, operation, nbytes) for family in FAMILIES}
                rows.append(
                    [operation, format_bytes(nbytes)]
                    + [format_us(times[family]) for family in FAMILIES]
                )
                for family in FAMILIES:
                    info[f"{operation}_{nbytes}_{family}"] = times[family] * 1e6
        print_table(
            f"A1: SRM time by inter-node tree family, {NODES} nodes [us]",
            ["op", "size", *FAMILIES],
            rows,
        )
        return info

    info = run_once(sweep)
    for operation in ("broadcast", "reduce"):
        for nbytes in SIZES:
            binomial = info[f"{operation}_{nbytes}_binomial"]
            best = min(info[f"{operation}_{nbytes}_{family}"] for family in FAMILIES)
            assert binomial <= best * 1.30, (
                f"binomial more than 30% off the best family on {operation}/{nbytes}"
            )
