"""Ablation A4 (§2.4) — pipeline chunk size and protocol switch point.

The paper fixes the small-protocol pipeline at 4 KB chunks and switches to
the direct-to-user-buffer protocol at 64 KB.  This sweep varies both and
checks the defaults sit at (or within a small factor of) the optimum on the
simulated machine.
"""

from repro.bench import build, format_bytes, format_us, print_table, time_operation
from repro.core import SRMConfig
from repro.machine import ClusterSpec

KB = 1024
NODES = 8


def _bcast_time(config: SRMConfig, nbytes: int) -> float:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=16)
    machine, srm = build("srm", spec, srm_config=config)
    return time_operation(machine, srm, "broadcast", nbytes, repeats=3, warmup=1).seconds


def bench_abl4_pipeline_chunk_size(run_once):
    chunk_sizes = [1 * KB, 2 * KB, 4 * KB, 8 * KB]
    nbytes = 32 * KB

    def sweep():
        info = {}
        rows = []
        for chunk in chunk_sizes:
            config = SRMConfig(pipeline_chunk=chunk, pipeline_min=max(8 * KB, chunk))
            seconds = _bcast_time(config, nbytes)
            rows.append([format_bytes(chunk), format_us(seconds)])
            info[f"chunk_{chunk}"] = seconds * 1e6
        print_table(
            f"A4a: 32KB SRM broadcast vs pipeline chunk, {NODES} nodes [us]",
            ["chunk", "time"],
            rows,
        )
        return info

    info = run_once(sweep)
    best = min(info.values())
    # The paper's 4 KB default is at or near the optimum.
    assert info["chunk_4096"] <= best * 1.25


def bench_abl4_protocol_switch_point(run_once):
    switch_points = [16 * KB, 64 * KB, 256 * KB]
    sizes = [32 * KB, 128 * KB]

    def sweep():
        info = {}
        rows = []
        for switch in switch_points:
            config = SRMConfig(small_protocol_max=switch)
            for nbytes in sizes:
                seconds = _bcast_time(config, nbytes)
                rows.append([format_bytes(switch), format_bytes(nbytes), format_us(seconds)])
                info[f"switch_{switch}_{nbytes}"] = seconds * 1e6
        print_table(
            f"A4b: SRM broadcast vs small/large switch point, {NODES} nodes [us]",
            ["switch", "size", "time"],
            rows,
        )
        return info

    info = run_once(sweep)
    # The default 64 KB switch is within 30% of the best choice at both sizes.
    for nbytes in sizes:
        best = min(info[f"switch_{switch}_{nbytes}"] for switch in switch_points)
        assert info[f"switch_{64 * KB}_{nbytes}"] <= best * 1.3
