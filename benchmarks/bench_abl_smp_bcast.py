"""Ablation A2 (§2.2) — flat two-buffer SMP broadcast vs tree-based.

"Despite the contention in simultaneous read access to the shared memory
buffer, this algorithm has achieved a much better performance than the
tree-based algorithms."  Reproduced at the primitive level on one 16-way
node: the same chunks are pushed through the flat two-buffer protocol and
through a binomial-tree relay.
"""

import numpy as np

from repro.bench import format_bytes, format_us, print_table
from repro.core import SRM
from repro.core.smp.broadcast import smp_broadcast_chunk, tree_smp_broadcast_chunk
from repro.machine import ClusterSpec, Machine
from repro.trees import binomial_tree, map_to_ranks

SIZES = (256, 4096, 32 * 1024)
TASKS = 16


def _run(flavor: str, nbytes: int) -> float:
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=TASKS))
    srm = SRM(machine)
    state = srm.ctx.nodes[0]
    chunk = min(nbytes, srm.config.shared_buffer_bytes)
    chunks = [(offset, min(chunk, nbytes - offset)) for offset in range(0, nbytes, chunk)]
    source = np.ones(nbytes, np.uint8)
    sinks = {rank: np.zeros(nbytes, np.uint8) for rank in range(1, TASKS)}
    tree = map_to_ranks(binomial_tree(TASKS), list(range(TASKS)))

    def program(task):
        for offset, size in chunks:
            src = source[offset : offset + size] if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank][offset : offset + size]
            if flavor == "flat":
                yield from smp_broadcast_chunk(state, task, task.rank == 0, src, dst)
            else:
                yield from tree_smp_broadcast_chunk(state, task, tree, src, dst)

    machine.launch(program)  # warm the buffers
    start = machine.now
    machine.launch(program)
    for sink in sinks.values():
        assert np.all(sink == 1)
    return machine.now - start


def bench_abl2_flat_vs_tree_smp_broadcast(run_once):
    def sweep():
        info = {}
        rows = []
        for nbytes in SIZES:
            flat = _run("flat", nbytes)
            tree = _run("tree", nbytes)
            rows.append([format_bytes(nbytes), format_us(flat), format_us(tree), f"{tree / flat:.2f}x"])
            info[f"flat_{nbytes}"] = flat * 1e6
            info[f"tree_{nbytes}"] = tree * 1e6
        print_table(
            f"A2: SMP broadcast on one {TASKS}-way node [us]",
            ["size", "flat 2-buffer", "binomial tree", "tree/flat"],
            rows,
        )
        return info

    info = run_once(sweep)
    for nbytes in SIZES:
        assert info[f"flat_{nbytes}"] < info[f"tree_{nbytes}"], (
            f"tree SMP broadcast beat flat at {nbytes} B"
        )
