"""Version of the srm-collectives reproduction package."""

__version__ = "1.0.0"
