"""Reproduction of *Fast Collective Operations Using Shared and Remote
Memory Access Protocols on Clusters* (Tipparaju, Nieplocha, Panda —
IPPS 2003).

The package simulates an SMP cluster (discrete-event, with real data
movement) and implements the paper's SRM collectives plus the two MPI
baselines on top of it.  See :mod:`repro.api` for the high-level interface.
"""

from repro._version import __version__
from repro.machine import ClusterSpec, CostModel, Machine

__all__ = ["__version__", "ClusterSpec", "CostModel", "Machine"]
