"""Differential trace analysis: *where did the time go between two runs?*

Two runs of the same workload — baseline vs head snapshot cells, or policy A
vs policy B on live machines — are aligned phase-by-phase and wait-state-by-
wait-state, and the latency delta is attributed to the entries that grew.
The output names the guilty (state, resource, context) triple, so a perf
gate failure arrives as

    allreduce srm 64 KB x8 nodes regressed +7.2% -- +340.1us of
    bandwidth-contention on bus[0] during ring-step

instead of a bare ratio.

The unit of comparison is a *profile summary*: a plain dict with
``microseconds``, ``critical_path`` (the :meth:`CriticalPath.to_dict` form)
and ``wait_states`` (the :meth:`WaitReport.summary_us` form,
``state|context|resource -> us``).  Benchmark snapshot cells carry exactly
these fields, so :func:`diff_cells` diffs committed artifacts and
:func:`capture_profile` produces the same shape from a live machine —
one comparator serves both.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.obs.critical import critical_path
from repro.obs.waits import classify_waits

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Machine

__all__ = [
    "PhaseDelta",
    "WaitDelta",
    "TraceDiff",
    "capture_profile",
    "diff_profiles",
    "diff_cells",
    "format_diff",
]


@dataclass(frozen=True)
class PhaseDelta:
    """One critical-path phase, aligned across the two runs."""

    phase: str
    baseline_us: float
    candidate_us: float

    @property
    def delta_us(self) -> float:
        return self.candidate_us - self.baseline_us


@dataclass(frozen=True)
class WaitDelta:
    """One (wait state, context, resource) bucket, aligned across the runs."""

    state: str
    context: str
    resource: str
    baseline_us: float
    candidate_us: float

    @property
    def delta_us(self) -> float:
        return self.candidate_us - self.baseline_us

    @property
    def label(self) -> str:
        """Human phrasing: ``bandwidth-contention on bus[0] during ring-step``."""
        parts = [self.state]
        if self.resource != "-":
            parts.append(f"on {self.resource}")
        if self.context != "-":
            parts.append(f"during {self.context}")
        return " ".join(parts)


class TraceDiff:
    """The aligned comparison of two profile summaries."""

    def __init__(
        self,
        label: str,
        baseline_us: float,
        candidate_us: float,
        phases: list[PhaseDelta],
        waits: list[WaitDelta],
    ) -> None:
        self.label = label
        self.baseline_us = baseline_us
        self.candidate_us = candidate_us
        #: Largest positive delta first; ties and shrinkage after.
        self.phases = sorted(phases, key=lambda p: (-p.delta_us, p.phase))
        self.waits = sorted(
            waits, key=lambda w: (-w.delta_us, w.state, w.context, w.resource)
        )

    @property
    def delta_us(self) -> float:
        return self.candidate_us - self.baseline_us

    @property
    def ratio(self) -> float:
        if self.baseline_us <= 0:
            return float("inf") if self.candidate_us > 0 else 1.0
        return self.candidate_us / self.baseline_us

    def dominant_phase(self) -> PhaseDelta | None:
        """The critical-path phase that grew the most (None if nothing grew)."""
        if self.phases and self.phases[0].delta_us > 0:
            return self.phases[0]
        return None

    def dominant_wait(self) -> WaitDelta | None:
        """The wait bucket that grew the most (None if nothing grew)."""
        if self.waits and self.waits[0].delta_us > 0:
            return self.waits[0]
        return None

    def headline(self) -> str:
        """One line naming the change and its dominant cause."""
        change = (self.ratio - 1.0) * 100
        if change > 0:
            verdict = f"regressed +{change:.1f}%"
        elif change < 0:
            verdict = f"improved {change:.1f}%"
        else:
            verdict = "unchanged"
        line = (
            f"{self.label}: {self.baseline_us:.1f} -> {self.candidate_us:.1f} us "
            f"({verdict})"
        )
        wait = self.dominant_wait()
        phase = self.dominant_phase()
        if change > 0 and wait is not None:
            line += f" -- +{wait.delta_us:.1f}us of {wait.label}"
        elif change > 0 and phase is not None:
            line += f" -- +{phase.delta_us:.1f}us of {phase.phase} on the critical path"
        elif change < 0 and self.waits:
            shrunk = min(self.waits, key=lambda w: w.delta_us)
            if shrunk.delta_us < 0:
                line += f" -- {shrunk.delta_us:.1f}us of {shrunk.label}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready form (maps key-sorted for byte stability)."""
        return {
            "label": self.label,
            "baseline_us": self.baseline_us,
            "candidate_us": self.candidate_us,
            "delta_us": self.delta_us,
            "ratio": self.ratio,
            "phases_us": {
                p.phase: {"baseline": p.baseline_us, "candidate": p.candidate_us}
                for p in sorted(self.phases, key=lambda p: p.phase)
            },
            "wait_states_us": {
                f"{w.state}|{w.context}|{w.resource}": {
                    "baseline": w.baseline_us,
                    "candidate": w.candidate_us,
                }
                for w in sorted(
                    self.waits, key=lambda w: (w.state, w.context, w.resource)
                )
            },
            "headline": self.headline(),
        }

    def __repr__(self) -> str:
        return f"<TraceDiff {self.label!r} delta={self.delta_us:+.1f}us>"


def capture_profile(
    machine: "Machine",
    start: float,
    end: float,
    microseconds: float | None = None,
) -> dict:
    """A profile summary of one live machine's ``[start, end]`` window.

    The same shape as a benchmark snapshot cell's telemetry fields, so the
    result can be diffed against committed cells or other live captures.
    """
    recorder = machine.obs.recorder
    path = critical_path(recorder, start=start, end=end) if recorder.spans else None
    waits = classify_waits(machine, start=start, end=end, critical=path)
    return {
        "microseconds": (
            microseconds if microseconds is not None else (end - start) * 1e6
        ),
        "critical_path": path.to_dict() if path is not None else None,
        "wait_states": waits.summary_us(),
    }


def _phase_map(profile: dict) -> dict[str, float]:
    path = profile.get("critical_path")
    if not path:
        return {}
    return dict(path.get("phases_us", {}))


def _wait_map(profile: dict) -> dict[str, float]:
    return dict(profile.get("wait_states") or {})


def diff_profiles(baseline: dict, candidate: dict, label: str = "run") -> TraceDiff:
    """Align two profile summaries and attribute the latency delta."""
    base_phases, cand_phases = _phase_map(baseline), _phase_map(candidate)
    phases = [
        PhaseDelta(
            phase=name,
            baseline_us=base_phases.get(name, 0.0),
            candidate_us=cand_phases.get(name, 0.0),
        )
        for name in sorted(set(base_phases) | set(cand_phases))
    ]
    base_waits, cand_waits = _wait_map(baseline), _wait_map(candidate)
    waits = []
    for key in sorted(set(base_waits) | set(cand_waits)):
        state, _, rest = key.partition("|")
        context, _, resource = rest.partition("|")
        waits.append(
            WaitDelta(
                state=state,
                context=context or "-",
                resource=resource or "-",
                baseline_us=base_waits.get(key, 0.0),
                candidate_us=cand_waits.get(key, 0.0),
            )
        )
    return TraceDiff(
        label=label,
        baseline_us=float(baseline.get("microseconds", 0.0)),
        candidate_us=float(candidate.get("microseconds", 0.0)),
        phases=phases,
        waits=waits,
    )


def diff_cells(baseline: dict, candidate: dict) -> TraceDiff:
    """Diff two benchmark snapshot cells of the same grid key."""
    from repro.bench.report import format_bytes

    label = (
        f"{candidate['operation']} {candidate['stack']} "
        f"{format_bytes(candidate['nbytes'])} x{candidate['nodes']} nodes"
    )
    return diff_profiles(baseline, candidate, label=label)


def format_diff(diff: TraceDiff, top: int = 8) -> str:
    """A readable multi-line rendering of one trace diff."""
    lines = [diff.headline()]
    moved_phases = [p for p in diff.phases if abs(p.delta_us) > 1e-9]
    if moved_phases:
        lines.append("  critical path:")
        for p in moved_phases[:top]:
            lines.append(
                f"    {p.phase:<24} {p.baseline_us:>10.1f} -> {p.candidate_us:>10.1f} us"
                f"  ({p.delta_us:+.1f})"
            )
    moved_waits = [w for w in diff.waits if abs(w.delta_us) > 1e-9]
    if moved_waits:
        lines.append("  wait states:")
        for w in moved_waits[:top]:
            lines.append(
                f"    {w.label:<48} {w.baseline_us:>10.1f} -> "
                f"{w.candidate_us:>10.1f} us  ({w.delta_us:+.1f})"
            )
    if len(lines) == 1:
        lines.append("  no phase or wait-state movement recorded")
    return "\n".join(lines)
