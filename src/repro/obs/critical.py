"""Critical-path attribution over phase spans and flow links.

The walker answers the question the paper's evaluation keeps asking
implicitly: *which phases is the makespan actually made of?*  Starting from
the last event of the window (the rank that finished last), it walks
simulated time backwards:

* inside an annotated phase it charges the elapsed interval to that phase and
  jumps to the phase's start — always the *innermost, latest-starting* span
  covering the instant, so a pipelined chunk's flag wait is charged to
  ``flag-wait``, not to the enclosing ``pipeline-chunk``;
* inside a **wait phase** (``flag-wait``, ``counter-wait``, ``stream-join``)
  it looks for the flow link that released the waiter, charges the detection
  tail to the wait, charges the link's transit time to ``put-flight`` (zero
  for same-time flag wakeups), and continues on the *source* rank at the
  moment the cause was issued — hopping across ranks exactly the way
  causality did;
* time covered by no span is charged to ``(untracked)``.

Every step attributes a contiguous interval ending at the cursor and moves
the cursor to that interval's start, so the per-phase durations sum to the
window extent *exactly* — the breakdown is a partition of the makespan, not
a sample of it.
"""

from __future__ import annotations

import bisect
import typing
from dataclasses import dataclass

from repro.obs.spans import FlowLink, PhaseRecorder, PhaseSpan
from repro.obs.taxonomy import PUT_FLIGHT, UNTRACKED, WAIT_PHASES

__all__ = ["CriticalPath", "Segment", "critical_path"]


@dataclass(frozen=True)
class Segment:
    """One attributed interval of the critical path."""

    rank: int
    start: float
    end: float
    phase: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class CriticalPath:
    """The walker's result: a rank-hopping partition of the window."""

    def __init__(self, segments: list[Segment], start: float, end: float) -> None:
        #: Chronological (earliest first) attributed segments.
        self.segments = segments
        self.start = start
        self.end = end

    @property
    def total(self) -> float:
        """The window extent the walk partitioned."""
        return self.end - self.start

    @property
    def attributed(self) -> float:
        """Sum of all segment durations (equals ``total`` by construction)."""
        return sum(segment.duration for segment in self.segments)

    def by_phase(self) -> dict[str, float]:
        """Critical-path seconds per phase, largest first."""
        totals: dict[str, float] = {}
        for segment in self.segments:
            totals[segment.phase] = totals.get(segment.phase, 0.0) + segment.duration
        return dict(sorted(totals.items(), key=lambda item: -item[1]))

    def top(self, n: int = 10) -> list[Segment]:
        """The ``n`` longest individual segments."""
        return sorted(self.segments, key=lambda s: -s.duration)[:n]

    def to_dict(self) -> dict:
        """A compact JSON-ready summary for benchmark snapshots.

        Phase keys are sorted by name (not by weight) so two runs of the
        same workload serialize byte-identically and snapshot diffs stay
        stable; times are microseconds to match the benchmark tables.
        """
        by_phase = self.by_phase()
        return {
            "total_us": self.total * 1e6,
            "attributed_us": self.attributed * 1e6,
            "segments": len(self.segments),
            "ranks": len({segment.rank for segment in self.segments}),
            "phases_us": {name: by_phase[name] * 1e6 for name in sorted(by_phase)},
        }

    def __repr__(self) -> str:
        return (
            f"<CriticalPath {len(self.segments)} segments over "
            f"{self.total * 1e6:.1f}us>"
        )


class _RankIndex:
    """Per-rank span lookup: innermost latest-starting span covering t."""

    def __init__(self, spans: list[PhaseSpan]) -> None:
        #: Sorted by start time; ties broken by depth (deeper last).
        self.spans = sorted(spans, key=lambda s: (s.start, s.depth))
        self.starts = [span.start for span in self.spans]

    def covering(self, t: float) -> PhaseSpan | None:
        """The span with ``start < t <= end`` maximizing (start, depth)."""
        # Spans are sorted by start; walk left from the first start >= t.
        hi = bisect.bisect_left(self.starts, t)
        best: PhaseSpan | None = None
        for i in range(hi - 1, -1, -1):
            span = self.spans[i]
            if span.end is not None and span.end >= t:
                best = span
                break
        return best

    def previous_end(self, t: float) -> float | None:
        """The latest span end strictly before ``t`` (for gap hopping)."""
        best: float | None = None
        for span in self.spans:
            if span.start >= t:
                break
            end = span.end
            if end is not None and end < t and (best is None or end > best):
                best = end
        return best


class _FlowIndex:
    """Per-destination-rank flow lookup, sorted by arrival time."""

    def __init__(self, flows: list[FlowLink]) -> None:
        self._by_dst: dict[int, list[FlowLink]] = {}
        for link in sorted(flows, key=lambda f: f.dst_ts):
            self._by_dst.setdefault(link.dst_rank, []).append(link)

    def releasing(self, rank: int, not_before: float, not_after: float) -> FlowLink | None:
        """The latest link into ``rank`` arriving in ``[not_before, not_after)``."""
        links = self._by_dst.get(rank)
        if not links:
            return None
        # Latest arrival strictly before the cursor keeps the walk moving.
        for link in reversed(links):
            if link.dst_ts >= not_after:
                continue
            if link.dst_ts < not_before:
                break
            return link
        return None


def critical_path(
    recorder: PhaseRecorder,
    start: float | None = None,
    end: float | None = None,
    max_steps: int = 1_000_000,
) -> CriticalPath:
    """Walk the recorded spans/flows backwards and partition ``[start, end]``.

    ``start`` / ``end`` default to the extent of the recorded spans.  Raises
    ``ValueError`` when nothing usable was recorded.
    """
    spans = [span for span in recorder.spans if span.end is not None]
    if start is None:
        if not spans:
            raise ValueError("no closed phase spans recorded")
        start = min(span.start for span in spans)
    if end is None:
        if not spans:
            raise ValueError("no closed phase spans recorded")
        end = max(span.end for span in spans if span.end is not None)
    if end < start:
        raise ValueError(f"critical_path window is inverted: [{start}, {end}]")

    window = [
        span for span in spans if span.end is not None and span.end > start and span.start < end
    ]
    grouped: dict[int, list[PhaseSpan]] = {}
    for span in window:
        grouped.setdefault(span.rank, []).append(span)
    by_rank = {rank: _RankIndex(rank_spans) for rank, rank_spans in grouped.items()}
    flows = _FlowIndex(recorder.flows)

    # Start on the rank whose annotated activity ends last.
    if window:
        last = max(window, key=lambda s: typing.cast(float, s.end))
        rank = last.rank
    else:
        rank = 0

    segments: list[Segment] = []

    def attribute(seg_rank: int, seg_start: float, seg_end: float, phase: str) -> None:
        if seg_end > seg_start:
            segments.append(Segment(seg_rank, seg_start, seg_end, phase))

    t = end
    epsilon = 1e-15 * max(1.0, abs(end))
    steps = 0
    while t > start + epsilon and steps < max_steps:
        steps += 1
        index = by_rank.get(rank)
        span = index.covering(t) if index is not None else None

        if span is None:
            previous = index.previous_end(t) if index is not None else None
            floor = max(previous, start) if previous is not None else start
            attribute(rank, floor, t, UNTRACKED)
            t = floor
            continue

        span_start = max(span.start, start)
        if span.name in WAIT_PHASES:
            link = flows.releasing(rank, span_start, t)
            if link is not None and link.src_ts < t - epsilon:
                arrival = min(max(link.dst_ts, span_start), t)
                # Detection tail: from the cause's arrival to the cursor.
                attribute(rank, arrival, t, span.name)
                # Transit: from the cause's issue to its arrival.
                if arrival > link.src_ts:
                    attribute(link.src_rank, link.src_ts, arrival, PUT_FLIGHT)
                rank = link.src_rank
                t = min(link.src_ts, t)
                continue
        attribute(rank, span_start, t, span.name)
        t = span_start

    if t > start + epsilon:  # pragma: no cover - max_steps safety valve
        attribute(rank, start, t, UNTRACKED)

    segments.reverse()
    return CriticalPath(segments, start, end)
