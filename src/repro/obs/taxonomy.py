"""The canonical phase and flow taxonomy of the SRM observability layer.

Every protocol layer annotates its work with phases from this vocabulary so
exports and the critical-path profiler can aggregate across operations:

**Substrate phases** (recorded by the machine / substrate layers):

* ``shm-copy`` — a timed shared-memory copy (:meth:`Task.copy`);
* ``reduce-apply`` — operator execution (:meth:`Task.reduce_into` /
  :meth:`Task.combine_into`);
* ``flag-wait`` / ``flag-set`` — spinning on / storing shared-memory flags;
* ``counter-wait`` — blocked in ``LAPI_Waitcntr`` / a ``LAPI_Getcntr`` poll;
* ``put-issue`` / ``get-issue`` / ``rmw`` / ``amsend`` — origin-side RMA
  injection overhead (the delivery itself is tracked by flow links).

**Protocol phases** (recorded by ``core/smp`` and ``core/internode``):

* ``pipeline-chunk`` — one chunk's traversal of an integrated protocol;
* ``slot-fill`` / ``slot-drain`` / ``slot-announce`` — the Fig. 3 SMP
  broadcast primitives;
* ``smp-reduce`` — one chunk of the Fig. 2 SMP reduce tree;
* ``smp-barrier`` — the flat flag barrier (§2.2);
* ``exchange-round`` — one recursive-doubling round of the small allreduce;
* ``dissemination-round`` — one round of the inter-node barrier;
* ``stream-join`` — a master joining its spawned large-message forwarders;
* ``block-register`` — a block collective's window-open stage (buffer
  registration puts / the epoch token that opens a one-sided window);
* ``block-transfer`` — a block collective moving payload blocks (direct
  puts into registered buffers, plus the arrival waits that fence them);
* ``ring-step`` — one master-ring exchange step (allgather ring, ring
  allreduce reduce-scatter/allgather);
* ``scan-chunk`` — one chunk's traversal of the hierarchical scan (SMP
  prefix chain, inter-node base chain, base+local combine);
* ``dispatch`` — a zero-duration marker recording which algorithm variant
  the protocol-dispatch layer selected for a collective call (the span's
  ``detail`` carries ``op/variant:nbytesB``); emitted once per distinct
  ``(op, nbytes)`` decision, never on the cached hot path.

**Flow kinds** (causal links between ranks):

* ``put-counter`` — a LAPI put's data landing and incrementing its target
  counter at the remote task;
* ``put-completion`` — the completion ack riding back to the origin;
* ``flag-wakeup`` — a shared-flag store releasing a spinning waiter;
* ``ring-signal`` — a ring protocol's FIFO-chained arrival signal landing:
  issued when the underlying put was injected, delivered when the signal
  chain increments the neighbour's arrival counter (so ring waits are
  attributable like direct counter puts);
* ``put-flight`` — the synthetic phase the critical-path walker charges for
  the network time between a put's injection and its remote arrival.

``WAIT_PHASES`` marks the phases the critical-path walker treats as blocking:
when the walk lands inside one, it follows the flow link that released the
waiter instead of continuing on the same rank.
"""

from __future__ import annotations

__all__ = [
    "SHM_COPY",
    "REDUCE_APPLY",
    "FLAG_WAIT",
    "FLAG_SET",
    "COUNTER_WAIT",
    "PUT_ISSUE",
    "GET_ISSUE",
    "RMW",
    "AMSEND",
    "PIPELINE_CHUNK",
    "SLOT_FILL",
    "SLOT_DRAIN",
    "SLOT_ANNOUNCE",
    "SMP_REDUCE",
    "SMP_BARRIER",
    "EXCHANGE_ROUND",
    "DISSEMINATION_ROUND",
    "STREAM_JOIN",
    "BLOCK_REGISTER",
    "BLOCK_TRANSFER",
    "RING_STEP",
    "SCAN_CHUNK",
    "DISPATCH",
    "REQUEST",
    "FLOW_PUT_COUNTER",
    "FLOW_PUT_COMPLETION",
    "FLOW_FLAG_WAKEUP",
    "FLOW_RING_SIGNAL",
    "PUT_FLIGHT",
    "UNTRACKED",
    "WAIT_PHASES",
    "ALL_PHASES",
    "WAIT_LATE_SENDER",
    "WAIT_LATE_RELEASE",
    "WAIT_BANDWIDTH_CONTENTION",
    "WAIT_RESOURCE_QUEUEING",
    "WAIT_DETECTION_ONLY",
    "WAIT_UNATTRIBUTED",
    "WAIT_STATES",
]

# -- substrate phases -------------------------------------------------------
SHM_COPY = "shm-copy"
REDUCE_APPLY = "reduce-apply"
FLAG_WAIT = "flag-wait"
FLAG_SET = "flag-set"
COUNTER_WAIT = "counter-wait"
PUT_ISSUE = "put-issue"
GET_ISSUE = "get-issue"
RMW = "rmw"
AMSEND = "amsend"

# -- protocol phases --------------------------------------------------------
PIPELINE_CHUNK = "pipeline-chunk"
SLOT_FILL = "slot-fill"
SLOT_DRAIN = "slot-drain"
SLOT_ANNOUNCE = "slot-announce"
SMP_REDUCE = "smp-reduce"
SMP_BARRIER = "smp-barrier"
EXCHANGE_ROUND = "exchange-round"
DISSEMINATION_ROUND = "dissemination-round"
STREAM_JOIN = "stream-join"
BLOCK_REGISTER = "block-register"
BLOCK_TRANSFER = "block-transfer"
RING_STEP = "ring-step"
SCAN_CHUNK = "scan-chunk"
DISPATCH = "dispatch"
#: Zero-duration marker opening a nonblocking/persistent request's progress
#: process; its detail names the owning request (``op#invocation@rank``) so
#: overlapped spans and wait attribution can be tied back to a request.
REQUEST = "request"

# -- flow kinds -------------------------------------------------------------
FLOW_PUT_COUNTER = "put-counter"
FLOW_PUT_COMPLETION = "put-completion"
FLOW_FLAG_WAKEUP = "flag-wakeup"
FLOW_RING_SIGNAL = "ring-signal"

# -- synthetic critical-path buckets ---------------------------------------
PUT_FLIGHT = "put-flight"
UNTRACKED = "(untracked)"

# -- wait-state taxonomy ----------------------------------------------------
#
# Every blocked interval (a closed span whose phase is in ``WAIT_PHASES``)
# is classified by :mod:`repro.obs.waits` into exactly one of these states:
#
# * ``late-sender`` — the waiter blocked before the releasing put/store was
#   even issued: the peer arrived late, not the fabric;
# * ``late-release`` — the release was issued before (or as) the wait began
#   but its delivery was delayed by transfer/fabric time;
# * ``bandwidth-contention`` — a late release whose in-flight window mostly
#   overlapped a saturated :class:`~repro.sim.resources.SharedBandwidth`
#   link shared by >= 2 transfers (the memory bus or a NIC direction), or a
#   linkless block spent under such saturation;
# * ``resource-queueing`` — blocked (mostly) while queued behind a
#   :class:`~repro.sim.resources.FifoResource` at capacity;
# * ``detection-only`` — the wait was satisfied on entry (or instantly):
#   the span covers only the spin-poll / yield detection tail;
# * ``unattributed`` — none of the above explains the block (kept explicit
#   so coverage is measurable: the verify quick grid must stay < 1% of the
#   makespan unattributed).
WAIT_LATE_SENDER = "late-sender"
WAIT_LATE_RELEASE = "late-release"
WAIT_BANDWIDTH_CONTENTION = "bandwidth-contention"
WAIT_RESOURCE_QUEUEING = "resource-queueing"
WAIT_DETECTION_ONLY = "detection-only"
WAIT_UNATTRIBUTED = "unattributed"

#: The closed vocabulary of wait-state classifications.
WAIT_STATES = frozenset(
    {
        WAIT_LATE_SENDER,
        WAIT_LATE_RELEASE,
        WAIT_BANDWIDTH_CONTENTION,
        WAIT_RESOURCE_QUEUEING,
        WAIT_DETECTION_ONLY,
        WAIT_UNATTRIBUTED,
    }
)

#: Phases whose time means "blocked on someone else": the critical-path
#: walker follows the releasing flow link out of these.
WAIT_PHASES = frozenset({FLAG_WAIT, COUNTER_WAIT, STREAM_JOIN})

#: The full phase vocabulary (for validation and docs).
ALL_PHASES = frozenset(
    {
        SHM_COPY,
        REDUCE_APPLY,
        FLAG_WAIT,
        FLAG_SET,
        COUNTER_WAIT,
        PUT_ISSUE,
        GET_ISSUE,
        RMW,
        AMSEND,
        PIPELINE_CHUNK,
        SLOT_FILL,
        SLOT_DRAIN,
        SLOT_ANNOUNCE,
        SMP_REDUCE,
        SMP_BARRIER,
        EXCHANGE_ROUND,
        DISSEMINATION_ROUND,
        STREAM_JOIN,
        BLOCK_REGISTER,
        BLOCK_TRANSFER,
        RING_STEP,
        SCAN_CHUNK,
        DISPATCH,
        REQUEST,
    }
)
