"""Wait-state attribution: *why* did a rank sit there?

The critical-path walker (:mod:`repro.obs.critical`) says which phases the
makespan is made of; this module explains the blocked ones.  Every closed
span whose phase is in :data:`~repro.obs.taxonomy.WAIT_PHASES` (``flag-wait``,
``counter-wait``, ``stream-join``) is one *blocked interval*, and
:func:`classify_waits` assigns each exactly one state from the taxonomy in
:mod:`repro.obs.taxonomy`:

* the **releasing flow link** (the put/store that woke the waiter) splits
  the interval into *issue lag* (waiting for the peer to even issue the
  release) and *transit* (the release in flight through the fabric);
  whichever dominates makes the interval ``late-sender`` or
  ``late-release``;
* a ``late-release`` whose in-flight window mostly overlapped a saturated
  :class:`~repro.sim.resources.SharedBandwidth` link (>= 2 sharers, rate
  fully consumed — per the resource timelines recorded by
  :class:`~repro.obs.monitor.ResourceMonitor`) is upgraded to
  ``bandwidth-contention`` and blames the most-contended resource;
* linkless blocks overlapping a queued :class:`~repro.sim.resources.FifoResource`
  become ``resource-queueing``; linkless blocks under bus/NIC saturation
  become ``bandwidth-contention``;
* an interval no longer than the spin-poll + yield detection tail is
  ``detection-only`` (the wait was satisfied on entry — nothing was late);
* whatever survives is ``unattributed``, kept explicit so coverage is a
  measurable number (the verify quick grid keeps it under 1% of the
  makespan; see ``tests/test_obs_waits.py``).

Classification is a pure read of recorded spans, flows, and timelines — it
never touches the simulation.
"""

from __future__ import annotations

import bisect
import typing
from dataclasses import dataclass

from repro.obs.taxonomy import (
    WAIT_BANDWIDTH_CONTENTION,
    WAIT_DETECTION_ONLY,
    WAIT_LATE_RELEASE,
    WAIT_LATE_SENDER,
    WAIT_PHASES,
    WAIT_RESOURCE_QUEUEING,
    WAIT_UNATTRIBUTED,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Machine
    from repro.obs.critical import CriticalPath
    from repro.obs.monitor import ResourceMonitor, ResourceTimeline
    from repro.obs.spans import FlowLink

__all__ = ["WaitInterval", "WaitReport", "classify_waits"]

#: A late release counts as bandwidth contention when at least this fraction
#: of its in-flight window overlapped a saturated shared link.
CONTENTION_THRESHOLD = 0.5


@dataclass(frozen=True)
class WaitInterval:
    """One classified blocked interval of one rank."""

    rank: int
    start: float
    end: float
    #: The wait phase that recorded the block (``flag-wait``, ...).
    phase: str
    #: The enclosing protocol phase (``ring-step``, ``pipeline-chunk``, ...)
    #: or ``"-"`` for a root-level wait.
    context: str
    #: The assigned wait state (see :data:`repro.obs.taxonomy.WAIT_STATES`).
    state: str
    #: The blamed resource (``bus[0]``, ``nic_in[2]``, ...) when the state
    #: involves one, else ``None``.
    resource: str | None
    #: True when the interval overlaps a critical-path wait segment of the
    #: same rank and phase.
    on_critical_path: bool
    #: Kind of the releasing flow link, when one was found.
    link_kind: str | None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def key(self) -> str:
        """The aggregation key used in snapshots: ``state|context|resource``."""
        return f"{self.state}|{self.context}|{self.resource or '-'}"


class WaitReport:
    """Every blocked interval of a window, classified."""

    def __init__(self, intervals: list[WaitInterval], start: float, end: float) -> None:
        self.intervals = intervals
        self.start = start
        self.end = end

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def total_blocked(self) -> float:
        """Summed blocked seconds across every rank (can exceed makespan)."""
        return sum(interval.duration for interval in self.intervals)

    def by_state(self, critical_only: bool = False) -> dict[str, float]:
        """Blocked seconds per wait state, largest first."""
        totals: dict[str, float] = {}
        for interval in self.intervals:
            if critical_only and not interval.on_critical_path:
                continue
            totals[interval.state] = totals.get(interval.state, 0.0) + interval.duration
        return dict(sorted(totals.items(), key=lambda item: (-item[1], item[0])))

    def by_key(self) -> dict[str, float]:
        """Blocked seconds per ``state|context|resource`` key, key-sorted."""
        totals: dict[str, float] = {}
        for interval in self.intervals:
            key = interval.key()
            totals[key] = totals.get(key, 0.0) + interval.duration
        return {key: totals[key] for key in sorted(totals)}

    def by_rank_state(self) -> dict[tuple[int, str], float]:
        """Blocked seconds per (rank, state)."""
        totals: dict[tuple[int, str], float] = {}
        for interval in self.intervals:
            key = (interval.rank, interval.state)
            totals[key] = totals.get(key, 0.0) + interval.duration
        return totals

    def unattributed_fraction(self) -> float:
        """Unattributed blocked seconds as a fraction of the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.by_state().get(WAIT_UNATTRIBUTED, 0.0) / self.makespan

    def summary_us(self) -> dict[str, float]:
        """``state|context|resource -> microseconds``, key-sorted (for
        snapshot cells; byte-stable across identical runs)."""
        return {key: seconds * 1e6 for key, seconds in self.by_key().items()}

    def to_dict(self) -> dict:
        """A JSON-ready summary (all maps key-sorted for byte stability)."""
        states = self.by_state()
        critical = self.by_state(critical_only=True)
        return {
            "window_us": self.makespan * 1e6,
            "intervals": len(self.intervals),
            "blocked_us": self.total_blocked * 1e6,
            "states_us": {name: states[name] * 1e6 for name in sorted(states)},
            "critical_states_us": {
                name: critical[name] * 1e6 for name in sorted(critical)
            },
            "detail_us": self.summary_us(),
            "unattributed_fraction": self.unattributed_fraction(),
        }

    def __repr__(self) -> str:
        return (
            f"<WaitReport {len(self.intervals)} intervals, "
            f"{self.total_blocked * 1e6:.1f}us blocked>"
        )


class _FlowsByRank:
    """Per-destination-rank flow lookup, sorted by arrival time."""

    def __init__(self, flows: list["FlowLink"]) -> None:
        self._links: dict[int, list["FlowLink"]] = {}
        self._times: dict[int, list[float]] = {}
        for link in sorted(flows, key=lambda f: f.dst_ts):
            self._links.setdefault(link.dst_rank, []).append(link)
        for rank, links in self._links.items():
            self._times[rank] = [link.dst_ts for link in links]

    def releasing(self, rank: int, start: float, end: float) -> "FlowLink | None":
        """The latest link into ``rank`` arriving within ``[start, end]``."""
        times = self._times.get(rank)
        if not times:
            return None
        index = bisect.bisect_right(times, end) - 1
        if index < 0 or times[index] < start:
            return None
        return self._links[rank][index]


def _node_bandwidth(
    monitor: "ResourceMonitor", nodes: typing.Iterable[int]
) -> list["ResourceTimeline"]:
    """The bandwidth timelines touching the given node indices."""
    timelines = []
    for node in dict.fromkeys(nodes):  # stable de-dup
        for name in (f"bus[{node}]", f"nic_in[{node}]", f"nic_out[{node}]"):
            timeline = monitor.get(name)
            if timeline is not None:
                timelines.append(timeline)
    return timelines


def _most_contended(
    timelines: typing.Iterable["ResourceTimeline"], start: float, end: float
) -> tuple["ResourceTimeline | None", float]:
    best, best_overlap = None, 0.0
    for timeline in timelines:
        overlap = timeline.contended_seconds(start, end)
        if overlap > best_overlap:
            best, best_overlap = timeline, overlap
    return best, best_overlap


def _most_queued(
    timelines: typing.Iterable["ResourceTimeline"], start: float, end: float
) -> tuple["ResourceTimeline | None", float]:
    best, best_overlap = None, 0.0
    for timeline in timelines:
        overlap = timeline.queued_seconds(start, end)
        if overlap > best_overlap:
            best, best_overlap = timeline, overlap
    return best, best_overlap


def classify_waits(
    machine: "Machine",
    start: float | None = None,
    end: float | None = None,
    critical: "CriticalPath | None" = None,
    contention_threshold: float = CONTENTION_THRESHOLD,
) -> WaitReport:
    """Classify every blocked interval recorded in ``[start, end]``.

    ``start`` / ``end`` default to the extent of the recorded spans (use the
    launch window for per-call attribution).  ``critical`` marks intervals
    that lie on the critical path when given.
    """
    recorder = machine.obs.recorder
    monitor = machine.obs.monitor
    spans = [span for span in recorder.spans if span.end is not None]
    if start is None:
        start = min((span.start for span in spans), default=0.0)
    if end is None:
        end = max((typing.cast(float, span.end) for span in spans), default=0.0)
    eps = 1e-12 * max(1.0, abs(end))

    # Critical-path wait segments per (rank, phase) for overlap marking.
    critical_segments: dict[tuple[int, str], list[tuple[float, float]]] = {}
    if critical is not None:
        for segment in critical.segments:
            if segment.phase in WAIT_PHASES:
                critical_segments.setdefault(
                    (segment.rank, segment.phase), []
                ).append((segment.start, segment.end))

    flows = _FlowsByRank(recorder.flows)
    cost = machine.cost
    detection_bound = cost.flag_poll_interval + cost.yield_cost + eps
    node_of = machine.spec.node_of

    intervals: list[WaitInterval] = []
    for span in spans:
        if span.name not in WAIT_PHASES:
            continue
        if span.end <= start + eps or span.start >= end - eps:
            continue
        s = max(span.start, start)
        e = min(typing.cast(float, span.end), end)
        if e - s <= 0:
            continue
        rank = span.rank
        context = "-"
        parent = span.parent
        while parent >= 0:
            parent_span = recorder.spans[parent]
            if parent_span.name not in WAIT_PHASES:
                context = parent_span.name
                break
            parent = parent_span.parent

        state = WAIT_UNATTRIBUTED
        resource: str | None = None
        link = flows.releasing(rank, s - eps, e + eps)
        if link is not None:
            arrival = min(link.dst_ts, e)
            issue_lag = max(0.0, min(link.src_ts, arrival) - s)
            transit = max(0.0, arrival - max(link.src_ts, s))
            if issue_lag <= eps and transit <= eps:
                state = WAIT_DETECTION_ONLY
            elif transit > issue_lag:
                state = WAIT_LATE_RELEASE
                if monitor is not None:
                    flight_start = max(link.src_ts, s)
                    candidates = _node_bandwidth(
                        monitor, (node_of(link.src_rank), node_of(rank))
                    )
                    best, overlap = _most_contended(candidates, flight_start, arrival)
                    if (
                        best is not None
                        and overlap >= contention_threshold * (arrival - flight_start)
                    ):
                        state = WAIT_BANDWIDTH_CONTENTION
                        resource = best.name
            else:
                state = WAIT_LATE_SENDER
        else:
            blocked = e - s
            if blocked <= detection_bound:
                state = WAIT_DETECTION_ONLY
            elif monitor is not None:
                fifo_best, fifo_overlap = _most_queued(
                    monitor.by_kind("fifo"), s, e
                )
                if fifo_best is not None and fifo_overlap >= contention_threshold * blocked:
                    state = WAIT_RESOURCE_QUEUEING
                    resource = fifo_best.name
                else:
                    candidates = _node_bandwidth(monitor, (node_of(rank),))
                    best, overlap = _most_contended(candidates, s, e)
                    if best is not None and overlap >= contention_threshold * blocked:
                        state = WAIT_BANDWIDTH_CONTENTION
                        resource = best.name

        on_critical = False
        for seg_start, seg_end in critical_segments.get((rank, span.name), ()):
            if min(seg_end, e) - max(seg_start, s) > eps:
                on_critical = True
                break

        intervals.append(
            WaitInterval(
                rank=rank,
                start=s,
                end=e,
                phase=span.name,
                context=context,
                state=state,
                resource=resource,
                on_critical_path=on_critical,
                link_kind=link.kind if link is not None else None,
            )
        )

    intervals.sort(key=lambda i: (i.start, i.rank, i.end, i.phase))
    return WaitReport(intervals, start, end)
