"""Nested phase spans and causal flow links, recorded against the sim clock.

A :class:`PhaseRecorder` hangs off the machine's observability hub and is fed
by every layer of the stack:

* protocols and substrates open **phases** with ``with task.phase(name):``
  around ``yield from`` blocks — entry and exit read the engine clock, so a
  span's extent is exactly the simulated time the block covered, including
  all suspensions inside it.  Phases nest per *simulated process*: a
  pipelined chunk phase contains the flag waits and copies it performs, and
  concurrent helper processes of the same rank (put deliveries, large-message
  forwarders, the Fig. 5 stage processes) get their own span stacks and
  their own export tracks, so sibling processes never mis-nest.
* substrates record **flow links** — put → remote counter increment,
  flag store → waiter wakeup — giving the cross-rank causal edges that the
  critical-path walker follows and that Perfetto draws as flow arrows.

Recording never touches the event queue and never advances the clock, so an
instrumented run is bit-identical to an uninstrumented one (asserted by
``tests/test_obs_invariance.py``).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.sim.engine import Engine

__all__ = ["PhaseSpan", "FlowLink", "PhaseRecorder"]


class PhaseSpan:
    """One annotated phase of one rank (possibly nested)."""

    __slots__ = ("index", "rank", "name", "start", "end", "depth", "parent", "track", "detail")

    def __init__(
        self,
        index: int,
        rank: int,
        name: str,
        start: float,
        depth: int,
        parent: int,
        track: int,
        detail: str = "",
    ) -> None:
        self.index = index
        self.rank = rank
        self.name = name
        self.start = start
        #: ``None`` while the phase is still open.
        self.end: float | None = None
        #: Nesting depth within this span's process (0 = outermost).
        self.depth = depth
        #: Index of the enclosing span, or -1 for a root span.
        self.parent = parent
        #: Per-rank sub-track: 0 for the first process that recorded a phase
        #: on this rank (the program generator), 1.. for helper processes.
        self.track = track
        #: Free-form attribute (e.g. the dispatch layer's ``op/variant``).
        self.detail = detail

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.6g}" if self.end is not None else "open"
        return (
            f"<PhaseSpan {self.name} rank={self.rank} track={self.track} "
            f"[{self.start:.6g}..{end}] depth={self.depth}>"
        )


@dataclass(frozen=True)
class FlowLink:
    """A causal edge from one rank's action to another rank's progress."""

    kind: str
    src_rank: int
    src_ts: float
    dst_rank: int
    dst_ts: float
    detail: str = ""


class _PhaseContext:
    """Context manager opening/closing one span around a ``yield from``."""

    __slots__ = ("_recorder", "_rank", "_name", "_detail", "_span")

    def __init__(
        self, recorder: "PhaseRecorder", rank: int, name: str, detail: str = ""
    ) -> None:
        self._recorder = recorder
        self._rank = rank
        self._name = name
        self._detail = detail
        self._span: PhaseSpan | None = None

    def __enter__(self) -> PhaseSpan:
        self._span = self._recorder._open_span(self._rank, self._name, self._detail)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        self._recorder._close_span(self._rank, self._span)
        return None


class _NullContext:
    """Shared no-op context for a disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class PhaseRecorder:
    """Phase spans + flow links for one machine."""

    def __init__(self, engine: "Engine", enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.spans: list[PhaseSpan] = []
        self.flows: list[FlowLink] = []
        #: Open-span stacks keyed by (rank, process identity).
        self._stacks: dict[tuple[int, int], list[PhaseSpan]] = {}
        #: Export sub-track per (rank, process identity).
        self._tracks: dict[tuple[int, int], int] = {}
        self._next_track: dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def _process_key(self, rank: int) -> tuple[int, int]:
        active = self.engine.active_process
        return (rank, id(active) if active is not None else 0)

    def phase(self, task: "Task", name: str, detail: str = "") -> typing.ContextManager:
        """A context manager recording one phase of ``task``."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _PhaseContext(self, task.rank, name, detail)

    def _open_span(self, rank: int, name: str, detail: str = "") -> PhaseSpan:
        key = self._process_key(rank)
        stack = self._stacks.get(key)
        if stack is None:
            stack = []
            self._stacks[key] = stack
        track = self._tracks.get(key)
        if track is None:
            track = self._next_track.get(rank, 0)
            self._next_track[rank] = track + 1
            self._tracks[key] = track
        parent = stack[-1].index if stack else -1
        span = PhaseSpan(
            index=len(self.spans),
            rank=rank,
            name=name,
            start=self.engine.now,
            depth=len(stack),
            parent=parent,
            track=track,
            detail=detail,
        )
        self.spans.append(span)
        stack.append(span)
        return span

    def _close_span(self, rank: int, span: PhaseSpan) -> None:
        span.end = self.engine.now
        key = self._process_key(rank)
        stack = self._stacks.get(key)
        if stack and stack[-1] is span:
            stack.pop()
            if not stack:
                del self._stacks[key]
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    def flow(
        self,
        kind: str,
        src_rank: int,
        src_ts: float,
        dst_rank: int,
        dst_ts: float,
        detail: str = "",
    ) -> None:
        """Record a causal edge (no-op when disabled)."""
        if not self.enabled:
            return
        self.flows.append(FlowLink(kind, src_rank, src_ts, dst_rank, dst_ts, detail))

    # -- queries -------------------------------------------------------------

    def closed_spans(self, start: float | None = None, end: float | None = None) -> list[PhaseSpan]:
        """Closed spans overlapping ``[start, end]`` (default: all closed)."""
        out = []
        for span in self.spans:
            if span.end is None:
                continue
            if start is not None and span.end < start:
                continue
            if end is not None and span.start > end:
                continue
            out.append(span)
        return out

    def ranks(self) -> list[int]:
        return sorted({span.rank for span in self.spans})

    def by_phase(self) -> dict[str, float]:
        """Total closed-span seconds per phase name (inclusive of children)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.end is None:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def clear(self) -> None:
        """Drop all recorded spans and flows (open stacks survive)."""
        self.spans = []
        self.flows = []

    def __repr__(self) -> str:
        return (
            f"<PhaseRecorder spans={len(self.spans)} flows={len(self.flows)} "
            f"enabled={self.enabled}>"
        )
