"""``repro.obs.calib`` — dispatch decision telemetry and cost-model calibration.

The dispatch layer (PR 3) made algorithm selection a first-class policy
decision; this module makes the *quality* of those decisions measurable,
following the predicted-vs-measured methodology of Barchet-Estefanel &
Mounié's intra-cluster tuning work (PAPERS.md).  Three instruments:

**Decision records** — every :class:`~repro.core.dispatch.Dispatcher`
selection emits a structured :class:`DecisionRecord` into the machine's
:class:`DecisionLog` (``machine.obs.decisions``): the selection environment,
*every* registered variant's predicted cost broken down per cost-model term
(``copy`` / ``wire`` / ``reduce`` / ``eager``, see
:data:`~repro.machine.costmodel.COST_TERMS`), the chosen variant, and
cache-hit accounting.  Recording is passive — one ``is None`` test when
observability is off, no metrics side effects, and the benchmark snapshots
stay byte-identical with recording live.

**Calibration** — :func:`collect_calibration` reuses the ``tune`` race
machinery to pair each candidate's *predicted* cost with its *measured*
latency across the bench grid, yielding

* per-(op, variant, size, nodes) model error (``log2(predicted/measured)``),
* per-term error attribution — a least-squares fit of measured latency
  against the predicted term columns names *which* term drifts
  ("the model overpredicts ``wire`` 2.3x for the ring allreduce"),
* selection regret — ``measured(chosen) − measured(best-in-hindsight)`` per
  cell per policy, and
* crossover checks of the paper's §2.4 switch points against the measured
  optimum.

**Policy scorecards** — :func:`run_calibrate` (behind ``python -m repro
calibrate``) compares the paper / cost-model / tuned / fixed policies on
total regret and mis-selection counts, writes a schema-v1
``repro-calibration-report`` JSON (byte-stable, identity-fingerprinted like
tune tables, deterministic at any ``--jobs``), and phrases the findings as
regress-gate-style headlines.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "CALIBRATION_KIND",
    "CALIBRATION_SCHEMA_VERSION",
    "DEFAULT_FIXED_CHOICES",
    "PAPER_SWITCH_POINTS",
    "QUICK_SIZES",
    "SCORECARD_POLICIES",
    "DecisionRecord",
    "DecisionLog",
    "collect_calibration",
    "load_calibration_report",
    "run_calibrate",
    "validate_calibration_report",
]

#: Document marker + schema version of the ``repro calibrate`` artifact.
CALIBRATION_KIND = "repro-calibration-report"
CALIBRATION_SCHEMA_VERSION = 1

#: The scorecard's policy line-up.  ``fixed`` is the no-switching strawman:
#: one always-applicable variant per operation, the ablation FixedPolicy.
SCORECARD_POLICIES = ("paper", "cost", "tuned", "fixed")

#: The fixed policy's choices: each operation's single variant that is
#: structurally applicable at every grid cell (no protocol switching at all).
DEFAULT_FIXED_CHOICES = {
    "broadcast": "pipelined",
    "reduce": "pipelined",
    "allreduce": "pipeline",
    "allgather": "gather-bcast",
}

#: The paper's §2.4 switch points as crossover claims: at ``SRMConfig``
#: field ``switch``, operation ``op`` changes from ``below`` to ``above``.
PAPER_SWITCH_POINTS = (
    ("broadcast", "pipeline_min", "small", "pipelined"),
    ("broadcast", "small_protocol_max", "pipelined", "large"),
    ("reduce", "pipeline_min", "small", "pipelined"),
    ("reduce", "small_protocol_max", "pipelined", "large"),
    ("allreduce", "allreduce_exchange_max", "exchange", "pipeline"),
    ("allgather", "allgather_ring_min", "gather-bcast", "ring"),
)

#: The ``--quick`` grid sizes: spans the 8 KB pipelining and 16 KB allreduce
#: switch points, so even the CI-sized pass performs §2.4 crossover checks.
QUICK_SIZES = (4096, 8192, 16384, 32768)

#: Term-drift factor below which a fit is considered calibrated (no headline).
_DRIFT_HEADLINE_FACTOR = 1.25

#: Regret below this (µs) is measurement-identical, not a mis-selection.
_REGRET_EPSILON = 1e-9


# ---------------------------------------------------------------------------
# decision telemetry (live records emitted by the Dispatcher)
# ---------------------------------------------------------------------------


@dataclass
class DecisionRecord:
    """One distinct dispatch selection, with its full prediction context.

    Emitted by :meth:`repro.core.dispatch.Dispatcher.decide` on every cache
    miss; cache hits bump :attr:`calls`/:attr:`cache_hits` on the existing
    record instead of re-predicting.
    """

    op: str
    nbytes: int
    nodes: int
    ppn: int
    #: The selecting policy's name (``paper`` / ``costmodel`` / ...).
    policy: str
    #: The variant that actually ran.
    chosen: str
    #: True when the policy's first choice was structurally inapplicable.
    fallback: bool = False
    #: The overridden first choice (None unless :attr:`fallback`).
    fallback_from: str | None = None
    #: Variant name -> ``{"applicable": bool, "total_us": float,
    #: "terms_us": {term: float}}`` for every registered variant of the op.
    predictions: dict[str, dict] = field(default_factory=dict)
    #: True once any persistent plan pinned this decision at init (amortized
    #: across its starts instead of re-resolved per call).
    persistent: bool = False
    #: Total dispatch calls resolved to this decision (cache hits included).
    calls: int = 1
    #: Calls served from the decision cache (``calls - 1`` distinct misses).
    cache_hits: int = 0

    def predicted_us(self, variant: str) -> float | None:
        """The recorded total prediction for ``variant`` in microseconds."""
        entry = self.predictions.get(variant)
        return None if entry is None else entry["total_us"]

    def to_dict(self) -> dict:
        """JSON-ready form (nested maps key-sorted for byte stability)."""
        return {
            "op": self.op,
            "nbytes": self.nbytes,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "policy": self.policy,
            "chosen": self.chosen,
            "fallback": self.fallback,
            "fallback_from": self.fallback_from,
            "persistent": self.persistent,
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "predictions": {
                name: {
                    "applicable": entry["applicable"],
                    "total_us": round(entry["total_us"], 4),
                    "terms_us": {
                        term: round(us, 4)
                        for term, us in sorted(entry["terms_us"].items())
                    },
                }
                for name, entry in sorted(self.predictions.items())
            },
        }


class DecisionLog:
    """The machine-lifetime list of dispatch decision records.

    Attached to the obs hub as ``machine.obs.decisions`` (``None`` when
    observability is disabled, so the dispatcher's entire recording cost is
    one ``is None`` test).  Pure passive telemetry: no metrics instruments,
    no simulated-time effects — snapshots and the regress gate are
    byte-identical with the log live.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[DecisionRecord] = []

    def record(self, record: DecisionRecord) -> DecisionRecord:
        self.records.append(record)
        return record

    def find(self, op: str, nbytes: int) -> DecisionRecord | None:
        """The first record matching ``(op, nbytes)``, if any."""
        for record in self.records:
            if record.op == op and record.nbytes == nbytes:
                return record
        return None

    def to_dicts(self) -> list[dict]:
        """Every record, JSON-ready, in emission order."""
        return [record.to_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<DecisionLog {len(self.records)} decisions>"


# ---------------------------------------------------------------------------
# calibration grid runner
# ---------------------------------------------------------------------------


def _calibration_worker(spec: tuple) -> float | None:
    """Spawn-safe worker: measure one (op, variant, size, nodes) candidate.

    Reuses the autotuner's probe exactly (fresh machine per candidate,
    ``tune_config``-evolved capacities, fallback-free forced variant), so a
    calibration pairs predictions with the same measurements ``tune`` races.
    """
    from repro.bench.tune import tune_cell

    operation, variant_name, nbytes, nodes, tasks_per_node, repeats = spec
    return tune_cell(
        operation, variant_name, nbytes, nodes,
        tasks_per_node=tasks_per_node, repeats=repeats,
    )


def _predicted_terms_us(
    entry: typing.Any, operation: str, nbytes: int, nodes: int, ppn: int
) -> tuple[dict[str, float], float]:
    """Predicted per-term microseconds for one candidate, under the same
    (``tune_config``-evolved) configuration the measurement runs with."""
    from repro.core import SRMConfig
    from repro.core.dispatch import SelectionEnv, predict_terms
    from repro.machine.costmodel import CostModel

    config = SRMConfig()
    if entry.tune_config is not None:
        config = entry.tune_config(config, nbytes)
    env = SelectionEnv(
        op=operation, nbytes=nbytes, nodes=nodes, ppn=ppn,
        config=config, cost=CostModel.ibm_sp_colony(),
    )
    terms_seconds, total_seconds = predict_terms(entry, env)
    return (
        {term: seconds * 1e6 for term, seconds in terms_seconds.items()},
        total_seconds * 1e6,
    )


def _term_scales(
    rows: list[tuple[dict[str, float], float]]
) -> dict[str, float] | None:
    """Least-squares per-term calibration factors for one variant group.

    Fits ``measured ≈ Σ_t scale_t · predicted_t`` over the group's cells
    (NumPy ``lstsq``, deterministic).  ``scale_t < 1`` means the model
    *over*predicts term ``t``; ``> 1`` underpredicts.  Returns ``None`` when
    the system is underdetermined (fewer cells than active terms).
    """
    import numpy as np

    terms = sorted(
        {term for predicted, _measured in rows for term, us in predicted.items() if us}
    )
    if not terms or len(rows) < len(terms):
        return None
    matrix = np.array(
        [[predicted.get(term, 0.0) for term in terms] for predicted, _ in rows]
    )
    target = np.array([measured for _predicted, measured in rows])
    scales, _residual, _rank, _sv = np.linalg.lstsq(matrix, target, rcond=None)
    return {term: float(scale) for term, scale in zip(terms, scales)}


def _drift(scale: float) -> tuple[str, float | None]:
    """(direction, factor) of one term's calibration scale.

    ``scale`` is what the predicted term must be multiplied by to match
    measurements: below 1 the model overpredicted by ``1/scale``; above 1 it
    underpredicted by ``scale``.  Non-positive scales (collinear fits) report
    an over-prediction of unquantifiable factor (``None``).
    """
    if scale <= 0:
        return "over", None
    if scale >= 1:
        return "under", scale
    return "over", 1.0 / scale


def _dominant_drift(scales: dict[str, float]) -> dict | None:
    """The worst-drifting term of one fit, or None when calibrated."""
    worst: dict | None = None
    worst_rank = 0.0
    for term, scale in sorted(scales.items()):
        direction, factor = _drift(scale)
        rank = math.inf if factor is None else factor
        if rank > worst_rank:
            worst_rank = rank
            worst = {
                "term": term,
                "direction": direction,
                "factor": None if factor is None else round(factor, 2),
            }
    if worst is None or (worst_rank != math.inf and worst_rank < _DRIFT_HEADLINE_FACTOR):
        return None
    return worst


def _emulated_selection(policy: typing.Any, paper: typing.Any, env: typing.Any) -> str:
    """What the dispatcher would run: the policy's pick, or the paper
    fallback when that pick is structurally inapplicable (mirrors
    :meth:`repro.core.dispatch.Dispatcher.decide`)."""
    from repro.core.dispatch import lookup_variant

    chosen = policy.select(env)
    if not lookup_variant(env.op, chosen).applicable(env):
        chosen = paper.select(env)
    return chosen


def _winners_table(cells: list[dict], label: str) -> dict:
    """A tuned-policy document built from this calibration's own winners
    (the best-in-hindsight table — its regret on this grid is zero by
    construction, which is exactly the property the scorecard states)."""
    from repro.core.dispatch import TUNED_TABLE_KIND, TUNED_TABLE_SCHEMA_VERSION

    table: dict[str, dict[str, list]] = {}
    for cell in cells:
        rows_by_nodes = table.setdefault(cell["operation"], {})
        rows = rows_by_nodes.setdefault(str(cell["nodes"]), [])
        rows.append([cell["nbytes"], cell["best"], cell["best_us"]])
    return {
        "kind": TUNED_TABLE_KIND,
        "schema_version": TUNED_TABLE_SCHEMA_VERSION,
        "label": label,
        "table": table,
    }


def collect_calibration(
    operations: typing.Sequence[str] | None = None,
    sizes: typing.Sequence[int] | None = None,
    nodes_axis: typing.Sequence[int] | None = None,
    tasks_per_node: int = 16,
    repeats: int = 2,
    label: str = "calibration",
    progress: typing.Callable[[str], None] | None = None,
    jobs: int = 1,
    tuned_document: typing.Mapping[str, typing.Any] | None = None,
) -> dict:
    """Race the grid, pair predictions with measurements, assemble the report.

    Every candidate probe runs on its own fresh machine (the ``tune``
    discipline), so the race fans out over ``jobs`` workers and the report is
    byte-identical at any ``jobs`` setting.  ``tuned_document`` scores an
    external decision table; by default the ``tuned`` scorecard row uses the
    best-in-hindsight table of this very grid (zero regret by construction).
    """
    from repro.bench.export import bench_identity, identity_fingerprint
    from repro.bench.pool import run_grid
    from repro.bench.snapshot import bench_nodes, bench_sizes
    from repro.bench.sweeps import full_grid
    from repro.bench.tune import TUNABLE_OPERATIONS
    from repro.core import SRMConfig
    from repro.core.dispatch import (
        CostModelPolicy,
        FixedPolicy,
        PaperPolicy,
        SelectionEnv,
        TunedPolicy,
        variants_for,
    )
    from repro.machine.costmodel import COST_TERMS, CostModel

    if operations is None:
        operations = TUNABLE_OPERATIONS
    for operation in operations:
        if operation not in TUNABLE_OPERATIONS:
            raise ConfigurationError(
                f"operation {operation!r} is not calibratable; "
                f"choose from {TUNABLE_OPERATIONS}"
            )
    if sizes is None:
        sizes = bench_sizes()
    if nodes_axis is None:
        nodes_axis = bench_nodes()
    sizes = sorted(sizes)

    probes: list[tuple] = []
    for operation in sorted(operations):
        for nodes in nodes_axis:
            for nbytes in sizes:
                for entry in variants_for(operation):
                    probes.append(
                        (operation, entry.name, nbytes, nodes, tasks_per_node, repeats)
                    )
    pool_progress = None
    if progress is not None:

        def pool_progress(spec: tuple, done: int, total: int) -> None:
            operation, variant_name, nbytes, nodes = spec[:4]
            progress(f"{operation}/{variant_name} {nbytes}B x{nodes} nodes")

    measured = run_grid(probes, _calibration_worker, jobs=jobs, progress=pool_progress)
    measured_by_probe = {probe[:4]: micros for probe, micros in zip(probes, measured)}

    default_config = SRMConfig()
    default_cost = CostModel.ibm_sp_colony()

    # -- cells: measured + predicted (per term) per candidate ---------------
    cells: list[dict] = []
    for operation in sorted(operations):
        for nodes in nodes_axis:
            for nbytes in sizes:
                variants: dict[str, dict] = {}
                for entry in variants_for(operation):
                    micros = measured_by_probe[(operation, entry.name, nbytes, nodes)]
                    terms_us, total_us = _predicted_terms_us(
                        entry, operation, nbytes, nodes, tasks_per_node
                    )
                    default_env = SelectionEnv(
                        op=operation, nbytes=nbytes, nodes=nodes,
                        ppn=tasks_per_node, config=default_config,
                        cost=default_cost,
                    )
                    log2_error = None
                    if micros is not None and micros > 0 and total_us > 0:
                        log2_error = round(math.log2(total_us / micros), 4)
                    variants[entry.name] = {
                        "applicable": bool(entry.applicable(default_env)),
                        "measured_us": None if micros is None else round(micros, 3),
                        "predicted_us": round(total_us, 3),
                        "predicted_terms_us": {
                            term: round(us, 4) for term, us in sorted(terms_us.items())
                        },
                        "log2_error": log2_error,
                    }
                timed = {
                    name: entry["measured_us"]
                    for name, entry in variants.items()
                    if entry["measured_us"] is not None
                }
                if not timed:
                    continue
                best = min(timed, key=lambda name: (timed[name], name))
                cells.append(
                    {
                        "operation": operation,
                        "nodes": nodes,
                        "nbytes": nbytes,
                        "best": best,
                        "best_us": timed[best],
                        "variants": variants,
                    }
                )

    # -- model error + per-term attribution ---------------------------------
    model_error: list[dict] = []
    for operation in sorted(operations):
        for nodes in nodes_axis:
            group = [
                cell for cell in cells
                if cell["operation"] == operation and cell["nodes"] == nodes
            ]
            if not group:
                continue
            errors: list[float] = []
            by_variant: dict[str, dict] = {}
            variant_names = sorted(
                {name for cell in group for name in cell["variants"]}
            )
            for name in variant_names:
                rows: list[tuple[dict[str, float], float]] = []
                variant_errors: list[float] = []
                for cell in group:
                    entry = cell["variants"].get(name)
                    if entry is None or entry["measured_us"] is None:
                        continue
                    rows.append((entry["predicted_terms_us"], entry["measured_us"]))
                    if entry["log2_error"] is not None:
                        variant_errors.append(abs(entry["log2_error"]))
                if not rows:
                    continue
                errors.extend(variant_errors)
                scales = _term_scales(rows)
                by_variant[name] = {
                    "cells": len(rows),
                    "mean_abs_log2_error": round(
                        sum(variant_errors) / len(variant_errors), 4
                    ) if variant_errors else None,
                    "term_scales": None if scales is None else {
                        term: round(scale, 4) for term, scale in sorted(scales.items())
                    },
                    "dominant_term_drift": None if scales is None
                    else _dominant_drift(scales),
                }
            if not by_variant:
                continue
            model_error.append(
                {
                    "operation": operation,
                    "nodes": nodes,
                    "cells": sum(entry["cells"] for entry in by_variant.values()),
                    "mean_abs_log2_error": round(sum(errors) / len(errors), 4)
                    if errors else None,
                    "by_variant": by_variant,
                }
            )

    # -- policy scorecard: selections + regret ------------------------------
    paper = PaperPolicy()
    tuned_source = tuned_document
    trained_on_grid = tuned_source is None
    if tuned_source is None:
        tuned_source = _winners_table(cells, label=f"{label}-winners")
    policies = {
        "paper": paper,
        "cost": CostModelPolicy(),
        "tuned": TunedPolicy(tuned_source, fallback=paper),
        "fixed": FixedPolicy(dict(DEFAULT_FIXED_CHOICES), fallback=paper),
    }
    regret: dict[str, dict] = {}
    per_op_nodes: dict[str, dict[tuple[str, int], dict]] = {
        name: {} for name in policies
    }
    for name in SCORECARD_POLICIES:
        policy = policies[name]
        total = 0.0
        mis = 0
        scored = 0
        worst: dict | None = None
        by_op: dict[str, dict] = {}
        for cell in cells:
            env = SelectionEnv(
                op=cell["operation"], nbytes=cell["nbytes"], nodes=cell["nodes"],
                ppn=tasks_per_node, config=default_config, cost=default_cost,
            )
            selected = _emulated_selection(policy, paper, env)
            cell.setdefault("selections", {})[name] = selected
            entry = cell["variants"].get(selected)
            if entry is None or entry["measured_us"] is None:
                continue
            scored += 1
            cell_regret = entry["measured_us"] - cell["best_us"]
            total += cell_regret
            op_stats = by_op.setdefault(
                cell["operation"], {"regret_us": 0.0, "mis_selections": 0}
            )
            op_stats["regret_us"] += cell_regret
            shape_stats = per_op_nodes[name].setdefault(
                (cell["operation"], cell["nodes"]),
                {"regret_us": 0.0, "mis_selections": 0, "sizes": []},
            )
            shape_stats["regret_us"] += cell_regret
            if cell_regret > _REGRET_EPSILON:
                mis += 1
                op_stats["mis_selections"] += 1
                shape_stats["mis_selections"] += 1
                shape_stats["sizes"].append(cell["nbytes"])
                if worst is None or cell_regret > worst["regret_us"]:
                    worst = {
                        "operation": cell["operation"],
                        "nodes": cell["nodes"],
                        "nbytes": cell["nbytes"],
                        "selected": selected,
                        "best": cell["best"],
                        "regret_us": cell_regret,
                    }
        entry = {
            "policy": name,
            "cells": scored,
            "mis_selections": mis,
            "total_regret_us": round(total, 3),
            "worst": None if worst is None else {
                **worst, "regret_us": round(worst["regret_us"], 3)
            },
            "by_op": {
                op: {
                    "regret_us": round(stats["regret_us"], 3),
                    "mis_selections": stats["mis_selections"],
                }
                for op, stats in sorted(by_op.items())
            },
        }
        if name == "tuned":
            entry["trained_on_grid"] = trained_on_grid
        regret[name] = entry

    # -- §2.4 crossover checks ----------------------------------------------
    crossovers: list[dict] = []
    for operation, switch, below, above in PAPER_SWITCH_POINTS:
        if operation not in operations:
            continue
        threshold = getattr(default_config, switch)
        for nodes in nodes_axis:
            group = {
                cell["nbytes"]: cell for cell in cells
                if cell["operation"] == operation and cell["nodes"] == nodes
            }
            if not group:
                continue
            comparable = sorted(
                nbytes for nbytes, cell in group.items()
                if cell["variants"].get(below, {}).get("measured_us") is not None
                and cell["variants"].get(above, {}).get("measured_us") is not None
            )
            if not comparable:
                continue
            spanned = comparable[0] <= threshold < comparable[-1]
            paper_first_above = next(
                (nbytes for nbytes in comparable if nbytes > threshold), None
            )
            measured_switch = next(
                (
                    nbytes for nbytes in comparable
                    if group[nbytes]["variants"][above]["measured_us"]
                    < group[nbytes]["variants"][below]["measured_us"]
                ),
                None,
            )
            agrees: bool | None = None
            error_octaves: float | None = None
            if spanned:
                agrees = measured_switch == paper_first_above
                if measured_switch is not None and paper_first_above is not None:
                    error_octaves = round(
                        math.log2(measured_switch / paper_first_above), 3
                    )
            crossovers.append(
                {
                    "operation": operation,
                    "nodes": nodes,
                    "switch": switch,
                    "paper_bytes": threshold,
                    "below": below,
                    "above": above,
                    "spanned": spanned,
                    "paper_first_above": paper_first_above,
                    "measured_switch": measured_switch,
                    "agrees": agrees,
                    "error_octaves": error_octaves,
                }
            )

    headlines = _headlines(cells, model_error, regret, crossovers, per_op_nodes)

    identity = bench_identity(tasks_per_node=tasks_per_node)
    return {
        "kind": CALIBRATION_KIND,
        "schema_version": CALIBRATION_SCHEMA_VERSION,
        "label": label,
        "identity": identity,
        "fingerprint": identity_fingerprint(identity),
        "grid": {
            "sizes": list(sizes),
            "nodes": list(nodes_axis),
            "operations": sorted(operations),
            "tasks_per_node": tasks_per_node,
            "repeats": repeats,
            "full": full_grid(),
        },
        "terms": list(COST_TERMS) + ["other"],
        "cells": cells,
        "model_error": model_error,
        "regret": regret,
        "crossovers": crossovers,
        "headlines": headlines,
    }


def _headlines(
    cells: list[dict],
    model_error: list[dict],
    regret: dict[str, dict],
    crossovers: list[dict],
    per_op_nodes: dict[str, dict[tuple[str, int], dict]],
) -> list[str]:
    """Regress-gate-style one-liners: the report's findings, phrased."""
    from repro.bench.report import format_bytes

    lines: list[str] = []
    scored = max((entry["cells"] for entry in regret.values()), default=0)
    lines.append(
        f"policy scorecard over {scored} cells: "
        + ", ".join(
            f"{name} +{regret[name]['total_regret_us']:.1f}us regret "
            f"({regret[name]['mis_selections']} mis-selections)"
            for name in SCORECARD_POLICIES
        )
    )
    cost_shapes = per_op_nodes.get("cost", {})
    for group in model_error:
        drifts = [
            (name, entry["dominant_term_drift"])
            for name, entry in sorted(group["by_variant"].items())
            if entry.get("dominant_term_drift")
        ]
        if not drifts:
            continue

        def _rank(drift: dict) -> float:
            return math.inf if drift["factor"] is None else drift["factor"]

        variant, drift = max(drifts, key=lambda pair: _rank(pair[1]))
        shape = cost_shapes.get((group["operation"], group["nodes"]), {})
        mis = shape.get("mis_selections", 0)
        shape_regret = shape.get("regret_us", 0.0)
        sizes = shape.get("sizes", [])
        factor = "" if drift["factor"] is None else f" {drift['factor']:.1f}x"
        line = (
            f"cost model {drift['direction']}predicts {drift['term']}{factor} "
            f"for {group['operation']} {variant}"
        )
        if mis and sizes:
            line += f" >= {format_bytes(min(sizes))}"
        line += f" on {group['nodes']} nodes -> "
        if mis:
            line += f"{mis} mis-selections, +{shape_regret:.1f}us total regret"
        else:
            line += "no mis-selections"
        lines.append(line)
    for check in crossovers:
        if check["agrees"] is False:
            measured = (
                "never inside the grid"
                if check["measured_switch"] is None
                else f"at {format_bytes(check['measured_switch'])}"
            )
            # The paper's thresholds are inclusive-below: a threshold-sized
            # message still runs the old variant, so the paper's first
            # switched grid size sits one step above the threshold.
            line = (
                f"measured {check['operation']} {check['below']}->{check['above']} "
                f"crossover {measured} vs paper's first {check['above']} size "
                f"{format_bytes(check['paper_first_above'])} "
                f"(switches above {format_bytes(check['paper_bytes'])}, "
                f"{check['switch']}) on {check['nodes']} nodes"
            )
            octaves = check["error_octaves"]
            if octaves is not None and octaves:
                line += f", {abs(octaves):.1f} octaves {'early' if octaves < 0 else 'late'}"
            lines.append(line)
    return lines


# ---------------------------------------------------------------------------
# report validation + IO
# ---------------------------------------------------------------------------


def validate_calibration_report(document: typing.Mapping[str, typing.Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a
    structurally valid schema-v1 calibration report (CI gates on this)."""
    if document.get("kind") != CALIBRATION_KIND:
        raise ConfigurationError(
            f"not a {CALIBRATION_KIND} document (kind={document.get('kind')!r})"
        )
    version = document.get("schema_version")
    if version != CALIBRATION_SCHEMA_VERSION:
        raise ConfigurationError(
            f"calibration-report schema mismatch: document v{version}, this "
            f"tool speaks v{CALIBRATION_SCHEMA_VERSION}"
        )
    for key in (
        "label", "identity", "fingerprint", "grid", "terms",
        "cells", "model_error", "regret", "crossovers", "headlines",
    ):
        if key not in document:
            raise ConfigurationError(f"calibration report is missing {key!r}")
    terms = set(document["terms"])
    if not document["cells"]:
        raise ConfigurationError("calibration report has no cells")
    for cell in document["cells"]:
        for key in ("operation", "nodes", "nbytes", "best", "best_us", "variants"):
            if key not in cell:
                raise ConfigurationError(f"calibration cell is missing {key!r}")
        for name, entry in cell["variants"].items():
            for key in ("applicable", "measured_us", "predicted_us", "predicted_terms_us"):
                if key not in entry:
                    raise ConfigurationError(
                        f"variant {cell['operation']}/{name} is missing {key!r}"
                    )
            unknown = set(entry["predicted_terms_us"]) - terms
            if unknown:
                raise ConfigurationError(
                    f"variant {cell['operation']}/{name} predicts unknown "
                    f"cost terms {sorted(unknown)}"
                )
    if not document["model_error"]:
        raise ConfigurationError("calibration report has no model_error groups")
    for group in document["model_error"]:
        for key in ("operation", "nodes", "cells", "mean_abs_log2_error", "by_variant"):
            if key not in group:
                raise ConfigurationError(f"model_error group is missing {key!r}")
    regret = document["regret"]
    for name in SCORECARD_POLICIES:
        entry = regret.get(name)
        if entry is None:
            raise ConfigurationError(f"regret scorecard is missing policy {name!r}")
        for key in ("cells", "mis_selections", "total_regret_us", "by_op"):
            if key not in entry:
                raise ConfigurationError(f"regret[{name!r}] is missing {key!r}")
        if not isinstance(entry["total_regret_us"], (int, float)):
            raise ConfigurationError(f"regret[{name!r}].total_regret_us is not numeric")
        if entry["total_regret_us"] < -_REGRET_EPSILON:
            raise ConfigurationError(
                f"regret[{name!r}] is negative ({entry['total_regret_us']}): "
                f"regret is measured-minus-best and cannot beat hindsight"
            )
    if not document["crossovers"]:
        raise ConfigurationError(
            "calibration report performed no §2.4 crossover checks — the "
            "grid must span at least one paper switch point"
        )
    for check in document["crossovers"]:
        for key in ("operation", "nodes", "switch", "paper_bytes", "below", "above"):
            if key not in check:
                raise ConfigurationError(f"crossover check is missing {key!r}")
    if not document["headlines"]:
        raise ConfigurationError("calibration report has no headlines")


def load_calibration_report(path: str) -> dict:
    """Load and validate a calibration report written by ``repro calibrate``."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_calibration_report(document)
    return document


def run_calibrate(
    out: str | None = "CALIB_report.json",
    quick: bool = False,
    operations: typing.Sequence[str] | None = None,
    label: str = "calibration",
    progress: typing.Callable[[str], None] | None = None,
    jobs: int = 1,
    tuned_table: str | None = None,
) -> dict:
    """Entry point behind ``python -m repro calibrate``.

    ``quick`` sweeps the CI-sized micro-grid (:data:`QUICK_SIZES` on the
    smallest multi-node shape, 4 tasks/node, one repeat) — small enough for
    a PR gate, wide enough to span the 8 KB and 16 KB §2.4 switch points.
    The report is validated against the schema before anything is written;
    a violation raises instead of producing a malformed artifact.
    """
    tuned_document = None
    if tuned_table is not None:
        import json

        with open(tuned_table, "r", encoding="utf-8") as handle:
            tuned_document = json.load(handle)
    if quick:
        from repro.bench.snapshot import bench_nodes

        document = collect_calibration(
            operations=operations,
            sizes=list(QUICK_SIZES),
            nodes_axis=[min(bench_nodes(), key=lambda n: (n == 1, n))],
            tasks_per_node=4,
            repeats=1,
            label=f"{label}-quick",
            progress=progress,
            jobs=jobs,
            tuned_document=tuned_document,
        )
    else:
        document = collect_calibration(
            operations=operations,
            label=label,
            progress=progress,
            jobs=jobs,
            tuned_document=tuned_document,
        )
    validate_calibration_report(document)
    if out is not None:
        from repro.bench.snapshot import write_snapshot

        write_snapshot(out, document)
    return document
