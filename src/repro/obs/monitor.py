"""Per-resource occupancy and queue-depth timelines.

A :class:`ResourceMonitor` hangs off the engine the same way the verifier and
fault plan do (``engine.monitor``): the contention resources in
:mod:`repro.sim.resources` consult it with one ``is None`` test and, when it
is attached, report every occupancy transition as a timestamped sample.
Recording is purely passive — no events are scheduled, no clocks advance —
so a monitored run is bit-identical to an unmonitored one (the same
contract as spans and metrics, asserted by ``tests/test_obs_invariance.py``).

Each resource gets one :class:`ResourceTimeline`, a piecewise-constant
signal of

* ``occupancy`` — active transfers on a :class:`~repro.sim.resources.SharedBandwidth`
  link, granted slots of a :class:`~repro.sim.resources.FifoResource`,
  open/closed state of a :class:`~repro.sim.resources.Gate`;
* ``queued`` — requests waiting behind a full FIFO resource, or processes
  parked on a closed gate;
* ``saturated`` — for bandwidth links: the water-filling allocation consumed
  the whole link rate (someone's share is being squeezed); for FIFO
  resources: every slot is granted.

The timelines answer the wait-state classifier's questions ("was the bus
oversubscribed while rank 3 sat in flag-wait?") through
:meth:`ResourceTimeline.seconds_matching`, and export as Perfetto counter
tracks through :func:`repro.obs.export.chrome_trace`.
"""

from __future__ import annotations

import bisect
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["ResourceSample", "ResourceTimeline", "ResourceMonitor"]


class ResourceSample(typing.NamedTuple):
    """One occupancy transition of one resource."""

    time: float
    occupancy: int
    queued: int
    saturated: bool


class ResourceTimeline:
    """The piecewise-constant occupancy history of one resource.

    Each sample holds from its timestamp until the next sample; the last
    sample holds forever.  Consecutive identical states are coalesced and a
    same-timestamp re-record replaces the previous sample, so the series is
    strictly increasing in time with no redundant points.
    """

    __slots__ = ("name", "kind", "_times", "_samples")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        #: ``"bandwidth"`` | ``"fifo"`` | ``"gate"``.
        self.kind = kind
        self._times: list[float] = []
        self._samples: list[ResourceSample] = []

    def record(
        self, time: float, occupancy: int, queued: int, saturated: bool = False
    ) -> None:
        """Append one transition (coalescing no-ops and same-time updates)."""
        samples = self._samples
        if samples:
            last = samples[-1]
            if (
                last.occupancy == occupancy
                and last.queued == queued
                and last.saturated == saturated
            ):
                return
            if last.time == time:
                samples[-1] = ResourceSample(time, occupancy, queued, saturated)
                return
        samples.append(ResourceSample(time, occupancy, queued, saturated))
        self._times.append(time)

    # -- queries -------------------------------------------------------------

    @property
    def samples(self) -> list[ResourceSample]:
        """The recorded transitions, chronologically."""
        return list(self._samples)

    def state_at(self, time: float) -> ResourceSample | None:
        """The sample in effect at ``time`` (None before the first sample)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return None
        return self._samples[index]

    def seconds_matching(
        self,
        start: float,
        end: float,
        predicate: typing.Callable[[ResourceSample], bool],
    ) -> float:
        """Total seconds in ``[start, end]`` whose sample satisfies ``predicate``.

        Time before the first sample counts as not matching (the resource
        did not exist / was idle).
        """
        if end <= start or not self._samples:
            return 0.0
        total = 0.0
        index = max(0, bisect.bisect_right(self._times, start) - 1)
        times, samples = self._times, self._samples
        count = len(samples)
        while index < count:
            sample = samples[index]
            seg_start = max(sample.time, start)
            seg_end = times[index + 1] if index + 1 < count else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start and predicate(sample):
                total += seg_end - seg_start
            if seg_end >= end:
                break
            index += 1
        return total

    def contended_seconds(self, start: float, end: float) -> float:
        """Seconds in the window with >= 2 sharers on a saturated resource."""
        return self.seconds_matching(
            start, end, lambda s: s.occupancy >= 2 and s.saturated
        )

    def queued_seconds(self, start: float, end: float) -> float:
        """Seconds in the window with at least one request queued."""
        return self.seconds_matching(start, end, lambda s: s.queued >= 1)

    def max_occupancy(self) -> int:
        return max((s.occupancy for s in self._samples), default=0)

    def max_queued(self) -> int:
        return max((s.queued for s in self._samples), default=0)

    def to_dict(self, until: float) -> dict:
        """Summary stats over ``[first sample, until]`` (JSON-ready)."""
        first = self._samples[0].time if self._samples else until
        return {
            "kind": self.kind,
            "samples": len(self._samples),
            "max_occupancy": self.max_occupancy(),
            "max_queued": self.max_queued(),
            "contended_seconds": self.contended_seconds(first, until),
            "queued_seconds": self.queued_seconds(first, until),
        }

    def __repr__(self) -> str:
        return (
            f"<ResourceTimeline {self.name!r} kind={self.kind} "
            f"samples={len(self._samples)}>"
        )


class ResourceMonitor:
    """The registry of every monitored resource on one engine."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Resource name -> its timeline, in registration order.
        self.timelines: dict[str, ResourceTimeline] = {}
        self._anonymous = 0

    def register(self, name: str | None, kind: str) -> ResourceTimeline:
        """Create (or fetch) the timeline for a resource.

        Unnamed resources get a stable synthetic name; a name collision
        reuses the existing timeline (resources are long-lived and uniquely
        named in practice — ``bus[i]``, ``nic_in[i]``, ...).
        """
        if name is None:
            name = f"{kind}#{self._anonymous}"
            self._anonymous += 1
        timeline = self.timelines.get(name)
        if timeline is None:
            timeline = ResourceTimeline(name, kind)
            self.timelines[name] = timeline
        return timeline

    def get(self, name: str) -> ResourceTimeline | None:
        return self.timelines.get(name)

    def by_kind(self, kind: str) -> list[ResourceTimeline]:
        return [t for t in self.timelines.values() if t.kind == kind]

    def to_dict(self) -> dict:
        """All timelines' summary stats, key-sorted (JSON-ready)."""
        now = self.engine.now
        return {
            name: self.timelines[name].to_dict(now)
            for name in sorted(self.timelines)
        }

    def __repr__(self) -> str:
        return f"<ResourceMonitor resources={len(self.timelines)}>"
