"""The always-on metrics registry: counters, gauges, histograms.

Replaces ad-hoc counter plumbing with named instruments that any layer can
create once and update on the hot path for the cost of an attribute add:

* :class:`Counter` — monotonically increasing totals (copies, puts, bytes);
* :class:`Gauge` — a sampled instantaneous value;
* :class:`Histogram` — value distributions over power-of-two buckets
  (put sizes, wait durations);
* :class:`TimeWeightedHistogram` — a value integrated over *simulated time*
  (in-flight put windows, queue depths): each observation closes the previous
  value's interval at the current clock, so ``time_average`` is exact for
  piecewise-constant signals.

A :class:`MetricsRegistry` hands out get-or-create instruments by name and
serializes everything with :meth:`MetricsRegistry.to_dict`.  The
:class:`NullRegistry` returns shared no-op instruments with the same API, so
instrumented code needs no ``if enabled`` branches — and tests can assert
that a machine built with a null registry simulates bit-identically.
"""

from __future__ import annotations

import math
import typing

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeWeightedHistogram",
    "MetricsRegistry",
    "NullRegistry",
]

Clock = typing.Callable[[], float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A sampled instantaneous value."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


def _bucket_index(value: float) -> int:
    """Power-of-two bucket: index i holds values in (2^(i-1), 2^i]; zero and
    negatives land in bucket 0."""
    if value <= 0:
        return 0
    return max(0, math.ceil(math.log2(value))) + 1


def _bucket_label(index: int) -> str:
    if index == 0:
        return "<=0"
    return f"<=2^{index - 1}"


def _bucket_bounds(index: int) -> tuple[float, float]:
    """The (lo, hi] value range of one bucket, for percentile interpolation."""
    if index == 0:
        return (0.0, 0.0)
    if index == 1:
        return (0.0, 1.0)
    return (2.0 ** (index - 2), 2.0 ** (index - 1))


def _bucket_percentile(
    buckets: dict[int, float],
    q: float,
    lo_clamp: float,
    hi_clamp: float,
) -> float:
    """The q-th percentile of a bucketed distribution.

    Linear interpolation within the crossing bucket, clamped to the observed
    ``[min, max]`` so the power-of-two bucket width never reports a value
    outside what was actually seen.
    """
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    total = sum(buckets.values())
    if total <= 0:
        return 0.0
    target = (q / 100.0) * total
    cumulative = 0.0
    for index in sorted(buckets):
        weight = buckets[index]
        if weight <= 0:
            continue
        if cumulative + weight >= target:
            lo, hi = _bucket_bounds(index)
            fraction = (target - cumulative) / weight
            value = lo + (hi - lo) * fraction
            return min(max(value, lo_clamp), hi_clamp)
        cumulative += weight
    return hi_clamp


class Histogram:
    """A value distribution over power-of-two buckets."""

    __slots__ = ("name", "help", "count", "total", "min", "max", "_buckets")

    kind = "histogram"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100), interpolated within its bucket."""
        if not self.count:
            return 0.0
        return _bucket_percentile(
            {i: float(n) for i, n in self._buckets.items()}, q, self.min, self.max
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {
                _bucket_label(i): n for i, n in sorted(self._buckets.items())
            },
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class TimeWeightedHistogram:
    """A piecewise-constant signal integrated over simulated time.

    ``observe(v)`` closes the previous value's interval at ``clock()`` and
    starts a new one at ``v``; statistics weight each value by how long it
    was held, so ``time_average`` is the true mean of the signal.
    """

    __slots__ = ("name", "help", "_clock", "_value", "_since", "weighted_sum",
                 "elapsed", "min", "max", "_bucket_seconds", "observations")

    kind = "time_histogram"

    def __init__(self, name: str, help: str = "", clock: Clock | None = None) -> None:
        self.name = name
        self.help = help
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._value: float | None = None
        self._since = 0.0
        self.weighted_sum = 0.0
        self.elapsed = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._bucket_seconds: dict[int, float] = {}
        self.observations = 0

    def _settle(self, now: float) -> None:
        if self._value is None:
            return
        held = now - self._since
        if held > 0:
            self.weighted_sum += self._value * held
            self.elapsed += held
            index = _bucket_index(self._value)
            self._bucket_seconds[index] = self._bucket_seconds.get(index, 0.0) + held

    def observe(self, value: float) -> None:
        now = self._clock()
        self._settle(now)
        self._value = float(value)
        self._since = now
        self.observations += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def current(self) -> float | None:
        return self._value

    @property
    def time_average(self) -> float:
        """The signal's time-weighted mean over all settled intervals."""
        now = self._clock()
        # Include the still-open interval without mutating state.
        weighted, elapsed = self.weighted_sum, self.elapsed
        if self._value is not None and now > self._since:
            weighted += self._value * (now - self._since)
            elapsed += now - self._since
        return weighted / elapsed if elapsed > 0 else 0.0

    def percentile(self, q: float) -> float:
        """The q-th *time-weighted* percentile: the signal level below which
        the signal sat for q% of the elapsed time (open interval included)."""
        if not self.observations:
            return 0.0
        buckets = dict(self._bucket_seconds)
        now = self._clock()
        if self._value is not None and now > self._since:
            index = _bucket_index(self._value)
            buckets[index] = buckets.get(index, 0.0) + (now - self._since)
        return _bucket_percentile(buckets, q, self.min, self.max)

    def to_dict(self) -> dict:
        return {
            "observations": self.observations,
            "time_average": self.time_average,
            "min": self.min if self.observations else None,
            "max": self.max if self.observations else None,
            "current": self._value,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "bucket_seconds": {
                _bucket_label(i): s for i, s in sorted(self._bucket_seconds.items())
            },
        }

    def __repr__(self) -> str:
        return f"<TimeWeightedHistogram {self.name} avg={self.time_average:.4g}>"


class MetricsRegistry:
    """Named get-or-create instruments plus one-call serialization."""

    enabled = True

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock
        self._instruments: dict[str, typing.Any] = {}

    def _get_or_create(self, name: str, factory: typing.Callable[[], typing.Any], kind: str):
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {kind}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, help), "histogram")

    def time_histogram(self, name: str, help: str = "") -> TimeWeightedHistogram:
        return self._get_or_create(
            name,
            lambda: TimeWeightedHistogram(name, help, clock=self._clock),
            "time_histogram",
        )

    def get(self, name: str) -> typing.Any | None:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def to_dict(self) -> dict:
        """All instruments as ``{name: {kind, help, ...stats}}``."""
        out = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry = {"kind": instrument.kind}
            if instrument.help:
                entry["help"] = instrument.help
            entry.update(instrument.to_dict())
            out[name] = entry
        return out

    def summary(self) -> dict[str, float]:
        """A flat ``{name: number}`` view for benchmark snapshots.

        Counters and gauges contribute their value under their own name;
        histograms contribute ``<name>.count``, ``<name>.sum`` and the
        ``<name>.p50/.p95/.p99`` percentiles; time-weighted histograms
        contribute ``<name>.observations``, ``<name>.time_average`` and the
        same (time-weighted) percentiles.  Keys are emitted in sorted order
        so the serialization is byte-stable across identical runs, which is
        what lets snapshot diffs flag real drift instead of dict-order noise.
        """
        out: dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.kind in ("counter", "gauge"):
                out[name] = instrument.value
            elif instrument.kind == "histogram":
                out[f"{name}.count"] = instrument.count
                out[f"{name}.sum"] = instrument.total
                out[f"{name}.p50"] = instrument.percentile(50)
                out[f"{name}.p95"] = instrument.percentile(95)
                out[f"{name}.p99"] = instrument.percentile(99)
            elif instrument.kind == "time_histogram":
                out[f"{name}.observations"] = instrument.observations
                out[f"{name}.time_average"] = instrument.time_average
                out[f"{name}.p50"] = instrument.percentile(50)
                out[f"{name}.p95"] = instrument.percentile(95)
                out[f"{name}.p99"] = instrument.percentile(99)
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """One shared do-nothing instrument standing in for every kind."""

    __slots__ = ()

    name = "(null)"
    help = ""
    kind = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    time_average = 0.0
    observations = 0
    current = None

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing — the off switch."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return typing.cast(Counter, _NULL)

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return typing.cast(Gauge, _NULL)

    def histogram(self, name: str, help: str = "") -> Histogram:  # type: ignore[override]
        return typing.cast(Histogram, _NULL)

    def time_histogram(self, name: str, help: str = "") -> TimeWeightedHistogram:  # type: ignore[override]
        return typing.cast(TimeWeightedHistogram, _NULL)

    def to_dict(self) -> dict:
        return {}
