"""Perfetto/Chrome trace and JSON metrics exports.

:func:`chrome_trace` merges three layers into one Trace Event JSON list that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* per-call collective spans from a :class:`~repro.bench.trace.Tracer`
  (category ``call``) — the outermost slices;
* nested phase spans from the machine's :class:`~repro.obs.spans.PhaseRecorder`
  (category ``phase``) — children of the call slices by time containment;
* flow events (``ph: s``/``f``) for every recorded causal link — Perfetto
  draws them as arrows from a put's issue slice to the remote counter-wait
  slice it released;
* counter tracks (``ph: C``, category ``resource``) for every
  :class:`~repro.obs.monitor.ResourceTimeline` sample — bus/NIC occupancy,
  FIFO queue depth, and saturation render as stacked area charts above the
  slice tracks, so "who was hogging node 0's memory bus during that
  flag-wait?" is answered by looking up.

Track layout: pid 0, tid ``rank * 64 + subtrack`` — subtrack 0 is the rank's
program process (where call slices also live), higher subtracks are helper
processes (put deliveries, large-message forwarders, Fig. 5 stages), so
overlapping concurrent spans of one rank never corrupt slice nesting.

Every event family is emitted in a deterministic sorted order — flows by
``(src_ts, src_rank, dst_ts, dst_rank, kind, detail)`` with ids assigned
after the sort, counter samples by ``(ts, resource name)`` — so two exports
of the same run are byte-identical artifacts (diffable in CI).

:func:`metrics_dump` serializes the metrics registry, resource-timeline
summaries, and per-task substrate stats as one JSON-ready dict.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Machine

__all__ = ["chrome_trace", "metrics_dump", "write_json", "TRACKS_PER_RANK"]

#: tid stride per rank: subtracks 0..63 per rank fit under one process row.
TRACKS_PER_RANK = 64


def _tid(rank: int, track: int) -> int:
    return rank * TRACKS_PER_RANK + min(track, TRACKS_PER_RANK - 1)


def chrome_trace(
    machine: "Machine",
    tracer: typing.Any | None = None,
    include_phases: bool = True,
    include_flows: bool = True,
    include_counters: bool = True,
) -> list[dict]:
    """The machine's recorded activity as Chrome Trace Event JSON."""
    events: list[dict] = []
    recorder = machine.obs.recorder
    ranks: set[int] = set(recorder.ranks())
    tracks_used: dict[int, int] = {}

    if tracer is not None:
        for span in tracer.spans:
            ranks.add(span.rank)
            events.append(
                {
                    "name": f"{span.operation}[{span.call_index}]",
                    "cat": "call",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": _tid(span.rank, 0),
                    "args": {
                        "copies": span.copies,
                        "bytes_copied": span.bytes_copied,
                        "reduce_ops": span.reduce_ops,
                        "puts": span.puts,
                        "mpi_sends": span.mpi_sends,
                        "interrupts": span.interrupts,
                        "yields": span.yields,
                    },
                }
            )

    if include_phases:
        now = machine.engine.now
        for span in recorder.spans:
            end = span.end if span.end is not None else now
            tracks_used[span.rank] = max(tracks_used.get(span.rank, 0), span.track)
            args: dict = {"depth": span.depth, "track": span.track}
            if span.detail:
                args["detail"] = span.detail
            events.append(
                {
                    "name": span.name,
                    "cat": "phase",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": 0,
                    "tid": _tid(span.rank, span.track),
                    "args": args,
                }
            )

    if include_flows:
        # Deterministic order: recorded order depends on scheduler internals
        # at equal timestamps, so sort by the links' own coordinates and
        # assign ids after the sort — the export is a byte-stable artifact.
        links = sorted(
            recorder.flows,
            key=lambda f: (f.src_ts, f.src_rank, f.dst_ts, f.dst_rank, f.kind, f.detail),
        )
        for index, link in enumerate(links):
            common = {"cat": "flow", "name": link.kind, "id": index, "pid": 0}
            events.append(
                {
                    **common,
                    "ph": "s",
                    "ts": link.src_ts * 1e6,
                    "tid": _tid(link.src_rank, 0),
                    "args": {"detail": link.detail},
                }
            )
            events.append(
                {
                    **common,
                    "ph": "f",
                    "bp": "e",
                    "ts": link.dst_ts * 1e6,
                    "tid": _tid(link.dst_rank, 0),
                }
            )

    if include_counters:
        events.extend(_counter_events(machine))

    # Human-readable track names (metadata events sort first in viewers).
    names: list[dict] = []
    for rank in sorted(ranks):
        names.append(_thread_name(rank, 0, f"rank {rank}"))
        for track in range(1, tracks_used.get(rank, 0) + 1):
            names.append(_thread_name(rank, track, f"rank {rank} helper {track}"))
    return names + events


def _counter_events(machine: "Machine") -> list[dict]:
    """Perfetto counter-track events from the resource monitor's timelines.

    One ``ph: "C"`` event per recorded sample, sorted by (timestamp, resource
    name) so the artifact is byte-stable.  Each resource gets its own named
    counter track (Perfetto keys counter tracks by event name).
    """
    monitor = getattr(machine.obs, "monitor", None)
    if monitor is None:
        return []
    points: list[tuple[float, str, dict]] = []
    for name in sorted(monitor.timelines):
        timeline = monitor.timelines[name]
        for sample in timeline.samples:
            points.append(
                (
                    sample.time,
                    name,
                    {
                        "occupancy": sample.occupancy,
                        "queued": sample.queued,
                        "saturated": 1 if sample.saturated else 0,
                    },
                )
            )
    points.sort(key=lambda p: (p[0], p[1]))
    return [
        {
            "name": f"resource:{name}",
            "cat": "resource",
            "ph": "C",
            "ts": ts * 1e6,
            "pid": 0,
            "args": args,
        }
        for ts, name, args in points
    ]


def _thread_name(rank: int, track: int, label: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": _tid(rank, track),
        "args": {"name": label},
    }


def metrics_dump(machine: "Machine", tracer: typing.Any | None = None) -> dict:
    """Registry metrics + per-task substrate stats as one JSON-ready dict."""
    tasks = {}
    for task in machine.tasks:
        tasks[task.rank] = {
            "copies": task.stats.copies,
            "bytes_copied": task.stats.bytes_copied,
            "reduce_ops": task.stats.reduce_ops,
            "bytes_reduced": task.stats.bytes_reduced,
            "yields": task.stats.yields,
            "interrupts": task.stats.interrupts,
            "lapi": {
                "puts": task.lapi.stats.puts,
                "gets": task.lapi.stats.gets,
                "amsends": task.lapi.stats.amsends,
                "rmws": task.lapi.stats.rmws,
                "bytes_put": task.lapi.stats.bytes_put,
                "bytes_got": task.lapi.stats.bytes_got,
                "stalled_deliveries": task.lapi.stats.stalled_deliveries,
            },
            "mpi": {"sends": task.mpi.stats.sends},
        }
    monitor = getattr(machine.obs, "monitor", None)
    out = {
        "simulated_time": machine.engine.now,
        "events_processed": machine.engine.events_processed,
        "metrics": machine.obs.metrics.to_dict(),
        "phase_totals": machine.obs.recorder.by_phase(),
        "flow_counts": _flow_counts(machine),
        "resources": monitor.to_dict() if monitor is not None else {},
        "tasks": tasks,
    }
    if tracer is not None:
        out["calls"] = [
            {
                "rank": span.rank,
                "operation": span.operation,
                "call_index": span.call_index,
                "start": span.start,
                "end": span.end,
            }
            for span in tracer.spans
        ]
    return out


def _flow_counts(machine: "Machine") -> dict[str, int]:
    counts: dict[str, int] = {}
    for link in machine.obs.recorder.flows:
        counts[link.kind] = counts.get(link.kind, 0) + 1
    return counts


def write_json(path: str, payload: typing.Any) -> None:
    """Dump ``payload`` as JSON to ``path`` ('-' writes to stdout)."""
    text = json.dumps(payload, indent=1)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
