"""The per-machine observability hub.

One :class:`Observability` is created by every
:class:`~repro.machine.cluster.Machine` and carries the two always-on
instruments of the ``repro.obs`` subsystem:

* :attr:`metrics` — the :class:`~repro.obs.metrics.MetricsRegistry` (a
  :class:`~repro.obs.metrics.NullRegistry` when observation is disabled);
* :attr:`recorder` — the :class:`~repro.obs.spans.PhaseRecorder` for nested
  phase spans and causal flow links.

Hot-path instruments (substrate counters and histograms) are pre-bound as
attributes at construction, so instrumented code pays one attribute access
and one add — with a null registry those calls hit shared no-op instruments
and the simulation is bit-identical either way.
"""

from __future__ import annotations

import typing

from repro.obs.calib import DecisionLog
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.monitor import ResourceMonitor
from repro.obs.spans import PhaseRecorder

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.sim.engine import Engine

__all__ = ["Observability"]


class Observability:
    """Metrics registry + phase recorder for one machine."""

    def __init__(self, engine: "Engine", enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.metrics: MetricsRegistry = (
            MetricsRegistry(clock=lambda: engine.now) if enabled else NullRegistry()
        )
        self.recorder = PhaseRecorder(engine, enabled=enabled)
        #: Resource occupancy/queue-depth timelines.  Attached to the engine
        #: (like the verifier and fault plan) so the contention resources in
        #: :mod:`repro.sim.resources` can report transitions with one
        #: ``is None`` test; ``None`` when observation is disabled.
        self.monitor: ResourceMonitor | None = (
            ResourceMonitor(engine) if enabled else None
        )
        engine.monitor = self.monitor
        #: Dispatch decision telemetry (:mod:`repro.obs.calib`): one
        #: :class:`~repro.obs.calib.DecisionRecord` per distinct selection,
        #: with every candidate's per-term predicted cost.  ``None`` when
        #: observation is disabled, so the dispatcher's recording cost is a
        #: single ``is None`` test.
        self.decisions: DecisionLog | None = DecisionLog() if enabled else None

        # Pre-bound hot-path instruments (shared no-ops when disabled).
        m = self.metrics
        self.copies = m.counter("task.copies", "timed shared-memory copies")
        self.bytes_copied = m.counter("task.bytes_copied", "bytes moved by shm copies")
        self.reduce_ops = m.counter("task.reduce_ops", "operator passes executed")
        self.bytes_reduced = m.counter("task.bytes_reduced", "bytes streamed through operators")
        self.yields = m.counter("task.yields", "spin waits that yielded the CPU")
        self.interrupts = m.counter("task.interrupts", "LAPI arrival interrupts taken")
        self.puts = m.counter("lapi.puts", "one-sided remote writes issued")
        self.gets = m.counter("lapi.gets", "one-sided remote reads issued")
        self.bytes_put = m.counter("lapi.bytes_put", "bytes injected by puts")
        self.flag_sets = m.counter("shmem.flag_sets", "timed shared-flag stores")
        self.flag_wait_seconds = m.histogram(
            "shmem.flag_wait_seconds", "simulated seconds blocked per flag wait"
        )
        self.counter_wait_seconds = m.histogram(
            "lapi.counter_wait_seconds", "simulated seconds blocked per counter wait"
        )
        self.put_sizes = m.histogram("lapi.put_bytes", "payload size per put")
        self.put_window_depth = m.time_histogram(
            "bcast.put_window_depth", "in-flight streamed puts per forwarder over time"
        )

    def phase(self, task: "Task", name: str, detail: str = "") -> typing.ContextManager:
        """Open a named phase span for ``task`` (see :class:`PhaseRecorder`)."""
        return self.recorder.phase(task, name, detail)

    def flow(
        self,
        kind: str,
        src_rank: int,
        src_ts: float,
        dst_rank: int,
        dst_ts: float,
        detail: str = "",
    ) -> None:
        """Record a causal edge between two ranks."""
        self.recorder.flow(kind, src_rank, src_ts, dst_rank, dst_ts, detail)

    def __repr__(self) -> str:
        return f"<Observability enabled={self.enabled} {self.recorder!r}>"
