"""``repro.obs`` — the observability subsystem.

Phase-level tracing, an always-on metrics registry, causal flow links, a
critical-path profiler, and Perfetto/JSON exports for the SRM collective
stack.  See ``docs/observability.md`` for the guide and
:mod:`repro.obs.taxonomy` for the phase vocabulary.
"""

from repro.obs.critical import CriticalPath, Segment, critical_path
from repro.obs.export import chrome_trace, metrics_dump, write_json
from repro.obs.hub import Observability
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeWeightedHistogram,
)
from repro.obs.spans import FlowLink, PhaseRecorder, PhaseSpan

__all__ = [
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeWeightedHistogram",
    "PhaseRecorder",
    "PhaseSpan",
    "FlowLink",
    "CriticalPath",
    "Segment",
    "critical_path",
    "chrome_trace",
    "metrics_dump",
    "write_json",
]
