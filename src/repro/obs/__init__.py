"""``repro.obs`` — the observability subsystem.

Phase-level tracing, an always-on metrics registry, causal flow links, a
critical-path profiler, resource-occupancy timelines, wait-state
attribution, differential trace analysis, and Perfetto/JSON exports for the
SRM collective stack.  See ``docs/observability.md`` for the guide and
:mod:`repro.obs.taxonomy` for the phase and wait-state vocabulary.
"""

from repro.obs.calib import (
    DecisionLog,
    DecisionRecord,
    run_calibrate,
    validate_calibration_report,
)
from repro.obs.critical import CriticalPath, Segment, critical_path
from repro.obs.diff import (
    PhaseDelta,
    TraceDiff,
    WaitDelta,
    capture_profile,
    diff_cells,
    diff_profiles,
    format_diff,
)
from repro.obs.export import chrome_trace, metrics_dump, write_json
from repro.obs.hub import Observability
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeWeightedHistogram,
)
from repro.obs.monitor import ResourceMonitor, ResourceSample, ResourceTimeline
from repro.obs.spans import FlowLink, PhaseRecorder, PhaseSpan
from repro.obs.waits import WaitInterval, WaitReport, classify_waits

__all__ = [
    "Observability",
    "DecisionLog",
    "DecisionRecord",
    "run_calibrate",
    "validate_calibration_report",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeWeightedHistogram",
    "PhaseRecorder",
    "PhaseSpan",
    "FlowLink",
    "CriticalPath",
    "Segment",
    "critical_path",
    "ResourceMonitor",
    "ResourceSample",
    "ResourceTimeline",
    "WaitInterval",
    "WaitReport",
    "classify_waits",
    "PhaseDelta",
    "WaitDelta",
    "TraceDiff",
    "capture_profile",
    "diff_cells",
    "diff_profiles",
    "format_diff",
    "chrome_trace",
    "metrics_dump",
    "write_json",
]
