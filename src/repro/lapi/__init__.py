"""RMA substrate: a LAPI-like one-sided communication interface.

Puts, gets, active messages, atomic read-modify-write, completion counters,
and interrupt management — the inter-node half of the SRM protocols
(paper §2.3).
"""

from repro.lapi.counters import LapiCounter
from repro.lapi.endpoint import LapiEndpoint

__all__ = ["LapiCounter", "LapiEndpoint"]
