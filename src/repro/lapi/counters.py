"""LAPI-style completion counters.

LAPI communicates progress through integer counters (paper §2.3): the
dispatcher increments a counter when a communication phase completes, and a
process can probe (``LAPI_Getcntr``), block (``LAPI_Waitcntr``), or reset
(``LAPI_Setcntr``).  ``LAPI_Waitcntr(cntr, val)`` blocks until the counter
reaches ``val`` and then *consumes* that amount — both semantics are
reproduced here because SRM's two-buffer flow control (Fig. 4, left) depends
on them.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["LapiCounter"]


class LapiCounter:
    """A monotonically incremented counter with threshold waiters."""

    def __init__(self, engine: Engine, initial: int = 0, name: str | None = None) -> None:
        if initial < 0:
            raise ProtocolError(f"counter cannot start negative: {initial}")
        self.engine = engine
        self.name = name
        self._value = int(initial)
        self._waiters: list[tuple[int, Event]] = []

    @property
    def value(self) -> int:
        """Current counter value (``LAPI_Getcntr``)."""
        return self._value

    def increment(self, amount: int = 1) -> None:
        """Dispatcher-side increment; wakes waiters whose threshold is met."""
        if amount < 1:
            raise ProtocolError(f"increment must be >= 1, got {amount}")
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_counter_increment(self, self._value, self._value + amount)
        self._value += amount
        self._wake()

    def set(self, value: int) -> None:
        """``LAPI_Setcntr``: overwrite the value (used between operations)."""
        if value < 0:
            raise ProtocolError(f"counter cannot be set negative: {value}")
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_counter_set(self, self._value, int(value), len(self._waiters))
        self._value = int(value)
        self._wake()

    def _wake(self) -> None:
        if not self._waiters:
            return
        still_waiting: list[tuple[int, Event]] = []
        for threshold, event in self._waiters:
            if self._value >= threshold:
                event.succeed(self._value)
            else:
                still_waiting.append((threshold, event))
        self._waiters = still_waiting

    def event_at(self, threshold: int) -> Event | None:
        """Event firing when the counter first reaches ``threshold``, or
        ``None`` if it already has.  Does not consume the counter."""
        if self._value >= threshold:
            return None
        event = Event(self.engine, name=f"cntr:{self.name}>={threshold}")
        self._waiters.append((threshold, event))
        return event

    def consume(self, amount: int) -> None:
        """Subtract ``amount`` after a satisfied wait (``LAPI_Waitcntr``)."""
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_counter_consume(self, self._value, amount)
        if amount > self._value:
            raise ProtocolError(
                f"cannot consume {amount} from counter {self.name!r}={self._value}"
            )
        self._value -= amount

    def __repr__(self) -> str:
        return f"<LapiCounter {self.name!r}={self._value} waiters={len(self._waiters)}>"
