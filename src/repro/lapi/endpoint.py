"""A LAPI-like RMA endpoint per task.

Implements the slice of LAPI (paper §2.3, ref [20]) that SRM is built on:

* ``put`` — one-sided remote write with **origin**, **target**, and
  **completion** counters, non-blocking at the origin;
* ``get`` — one-sided remote read;
* ``rmw`` — remote atomic fetch-and-add;
* ``amsend`` — active message with a target-side header handler;
* ``waitcntr`` / ``probe`` — blocking wait and explicit progress polling;
* interrupt management — ``set_interrupts(False)`` disables the receive
  interrupt; arriving data then stalls until the target enters a LAPI call
  (the "implicit cooperation of the destination task" of §2.3).  With
  interrupts enabled, data landing while the target is busy elsewhere pays
  :attr:`CostModel.interrupt_cost`.

Origin-counter semantics: this simulator snapshots the source buffer at
injection, so the origin counter fires once the origin-side overhead is paid
(the source buffer is logically reusable immediately after).  Target and
completion counters fire with full delivery timing, including the
cooperation rules above — those are the counters SRM's flow control uses.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ProtocolError
from repro.lapi.counters import LapiCounter
from repro.machine.memops import raw_copyto
from repro.machine.network import network_transfer
from repro.obs.taxonomy import (
    AMSEND,
    COUNTER_WAIT,
    FLOW_PUT_COMPLETION,
    FLOW_PUT_COUNTER,
    GET_ISSUE,
    PUT_ISSUE,
    RMW,
)
from repro.sim.process import Process, ProcessGenerator
from repro.sim.resources import Gate

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["LapiEndpoint"]


class LapiStats:
    """Per-endpoint communication counters for audits and tests."""

    __slots__ = ("puts", "gets", "amsends", "rmws", "bytes_put", "bytes_got", "stalled_deliveries")

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.amsends = 0
        self.rmws = 0
        self.bytes_put = 0
        self.bytes_got = 0
        self.stalled_deliveries = 0


class LapiEndpoint:
    """The RMA interface of one task."""

    def __init__(self, task: "Task") -> None:
        self.task = task
        self.engine = task.engine
        self.cost = task.cost
        self.obs = task.obs
        self.interrupts_enabled = True
        self.stats = LapiStats()
        self._call_depth = 0
        self._in_call = Gate(self.engine, open=False, name=f"lapi-call[{task.rank}]")

    # -- counters -------------------------------------------------------------

    def counter(self, initial: int = 0, name: str | None = None) -> LapiCounter:
        """Create a counter owned by this task."""
        return LapiCounter(self.engine, initial, name=name or f"cntr[{self.task.rank}]")

    # -- call/interrupt state ---------------------------------------------------

    @property
    def in_lapi_call(self) -> bool:
        """True while this task is blocked or polling inside a LAPI call."""
        return self._call_depth > 0

    def set_interrupts(self, enabled: bool) -> None:
        """Enable/disable the arrival interrupt (§2.3 interrupt management)."""
        self.interrupts_enabled = bool(enabled)
        if enabled:
            # Pending deliveries stalled on cooperation can now interrupt.
            self._in_call.open()
            if self._call_depth == 0:
                self._in_call.close()

    def _enter_call(self) -> None:
        self._call_depth += 1
        self._in_call.open()

    def _exit_call(self) -> None:
        self._call_depth -= 1
        if self._call_depth == 0:
            self._in_call.close()

    def waitcntr(self, counter: LapiCounter, value: int = 1) -> ProcessGenerator:
        """``LAPI_Waitcntr``: block until ``counter >= value``, then consume.

        While blocked the task counts as *inside a LAPI call*, so the
        dispatcher polls and incoming data completes without interrupts.
        """
        start = self.engine.now
        self._enter_call()
        try:
            with self.task.phase(COUNTER_WAIT):
                pending = counter.event_at(value)
                if pending is not None:
                    yield pending
            counter.consume(value)
        finally:
            self._exit_call()
        self.obs.counter_wait_seconds.observe(self.engine.now - start)

    def watch(self, counter: LapiCounter, threshold: int) -> ProcessGenerator:
        """Block until ``counter >= threshold`` *without* consuming it.

        Models a ``LAPI_Getcntr`` polling loop: the task counts as inside a
        LAPI call (so deliveries need no interrupt), and the cumulative value
        stays readable by other watchers — used by the streamed large-message
        protocols where one arrival counter feeds several consumers.
        """
        start = self.engine.now
        self._enter_call()
        try:
            with self.task.phase(COUNTER_WAIT):
                pending = counter.event_at(threshold)
                if pending is not None:
                    yield pending
        finally:
            self._exit_call()
        self.obs.counter_wait_seconds.observe(self.engine.now - start)

    def probe(self) -> ProcessGenerator:
        """One explicit progress poll (``LAPI_Probe``): releases any
        stalled deliveries targeting this task, costing one dispatch."""
        self._enter_call()
        try:
            yield self.engine.timeout(self.cost.rma_target_overhead)
        finally:
            self._exit_call()

    def _cooperate(self) -> ProcessGenerator:
        """Target-side delivery gate: free when polling, priced when
        interrupting, stalled when interrupts are off and nobody polls."""
        if self.in_lapi_call:
            return
        if self.interrupts_enabled:
            self.task.stats.interrupts += 1
            self.obs.interrupts.inc()
            yield self.engine.timeout(self.cost.interrupt_cost)
            return
        self.stats.stalled_deliveries += 1
        yield self._in_call.wait()

    # -- one-sided operations -----------------------------------------------

    def put(
        self,
        target_rank: int,
        dst: np.ndarray,
        src: np.ndarray,
        *,
        origin_counter: LapiCounter | None = None,
        target_counter: LapiCounter | None = None,
        completion_counter: LapiCounter | None = None,
    ) -> typing.Generator[typing.Any, typing.Any, Process]:
        """Non-blocking remote write of ``src`` into ``dst`` at ``target_rank``.

        Blocks the origin only for the injection overhead; returns the
        delivery :class:`Process` (joinable event) for callers that need full
        completion without a counter.
        """
        if dst.nbytes != src.nbytes:
            raise ProtocolError(
                f"put size mismatch: dst {dst.nbytes} B vs src {src.nbytes} B"
            )
        machine = self.task.machine
        target_task = machine.task(target_rank)
        nbytes = int(src.nbytes)
        snapshot = np.array(src, copy=True)
        trace = self.engine.trace
        if trace is not None:
            # Record at *issue* position with live views: the tape's order
            # reproduces the snapshot-at-injection semantics, because flow
            # control forbids source rewrites or destination reads between
            # a put's issue and its delivery.
            trace.record_copy(dst, src)
        issue_time = self.engine.now
        with self.task.phase(PUT_ISSUE):
            yield self.engine.timeout(self.cost.rma_origin_overhead)
        if origin_counter is not None:
            origin_counter.increment()
        self.stats.puts += 1
        self.stats.bytes_put += nbytes
        self.obs.puts.inc()
        self.obs.bytes_put.inc(nbytes)
        self.obs.put_sizes.observe(nbytes)

        def deliver() -> ProcessGenerator:
            faults = self.engine.faults
            if faults is not None:
                # Fault injection: jitter the delivery (dispatcher delay).
                jitter = faults.put_jitter()
                if jitter > 0.0:
                    yield self.engine.timeout(jitter)
            if target_task.node is self.task.node:
                # Intra-node put short-circuits through the memory bus.
                if nbytes > 0:
                    yield self.task.node.bus.transfer(nbytes)
            else:
                yield from network_transfer(self.task.node, target_task.node, nbytes)
                yield from target_task.lapi._cooperate()
                yield self.engine.timeout(self.cost.rma_target_overhead)
            raw_copyto(dst, snapshot)
            landed_time = self.engine.now
            if target_counter is not None:
                target_counter.increment()
                self.obs.flow(
                    FLOW_PUT_COUNTER,
                    self.task.rank,
                    issue_time,
                    target_rank,
                    self.engine.now,
                    detail=target_counter.name or "",
                )
                yield self.engine.timeout(self.cost.counter_update_cost)
            if completion_counter is not None:
                if target_task.node is not self.task.node:
                    # The completion ack rides back and needs the *origin's*
                    # cooperation to be dispatched.
                    yield self.engine.timeout(self.cost.net_latency)
                    yield from self._cooperate()
                completion_counter.increment()
                self.obs.flow(
                    FLOW_PUT_COMPLETION,
                    target_rank,
                    landed_time,
                    self.task.rank,
                    self.engine.now,
                    detail=completion_counter.name or "",
                )

        return self.engine.process(deliver(), name=f"put:{self.task.rank}->{target_rank}")

    def get(
        self,
        target_rank: int,
        dst: np.ndarray,
        src: np.ndarray,
        *,
        completion_counter: LapiCounter | None = None,
    ) -> typing.Generator[typing.Any, typing.Any, Process]:
        """Non-blocking remote read of ``src`` at ``target_rank`` into ``dst``."""
        if dst.nbytes != src.nbytes:
            raise ProtocolError(
                f"get size mismatch: dst {dst.nbytes} B vs src {src.nbytes} B"
            )
        machine = self.task.machine
        target_task = machine.task(target_rank)
        nbytes = int(dst.nbytes)
        issue_time = self.engine.now
        with self.task.phase(GET_ISSUE):
            yield self.engine.timeout(self.cost.rma_origin_overhead)
        self.stats.gets += 1
        self.stats.bytes_got += nbytes
        self.obs.gets.inc()

        def deliver() -> ProcessGenerator:
            if target_task.node is self.task.node:
                if nbytes > 0:
                    yield self.task.node.bus.transfer(nbytes)
            else:
                # Request travels out (latency only) ...
                yield self.engine.timeout(self.cost.net_latency)
                yield from target_task.lapi._cooperate()
                yield self.engine.timeout(self.cost.rma_target_overhead)
                # ... data streams back.
                yield from network_transfer(target_task.node, self.task.node, nbytes)
            raw_copyto(dst, src)
            trace = self.engine.trace
            if trace is not None:
                trace.record_copy(dst, src)
            if completion_counter is not None:
                completion_counter.increment()
                # The cause chain for a get leads back to the origin's own
                # issue (the target is passive in one-sided reads).
                self.obs.flow(
                    FLOW_PUT_COUNTER,
                    self.task.rank,
                    issue_time,
                    self.task.rank,
                    self.engine.now,
                    detail=completion_counter.name or "",
                )

        return self.engine.process(deliver(), name=f"get:{self.task.rank}<-{target_rank}")

    def rmw_add(
        self,
        target_rank: int,
        counter: LapiCounter,
        amount: int = 1,
    ) -> ProcessGenerator:
        """Blocking remote atomic fetch-and-add on a counter owned by
        ``target_rank``; returns the pre-update value."""
        machine = self.task.machine
        target_task = machine.task(target_rank)
        self.stats.rmws += 1
        with self.task.phase(RMW):
            yield self.engine.timeout(self.cost.rma_origin_overhead)
            if target_task.node is not self.task.node:
                yield self.engine.timeout(self.cost.net_latency)
                yield from target_task.lapi._cooperate()
                yield self.engine.timeout(self.cost.rma_target_overhead)
            old_value = counter.value
            counter.increment(amount)
            if target_task.node is not self.task.node:
                yield self.engine.timeout(self.cost.net_latency)
                yield from self._cooperate()
        return old_value

    def amsend(
        self,
        target_rank: int,
        handler: typing.Callable[["Task", typing.Any], None],
        payload: typing.Any = None,
        nbytes: int = 0,
    ) -> typing.Generator[typing.Any, typing.Any, Process]:
        """Active message: run ``handler(target_task, payload)`` at the target
        once the header (plus ``nbytes`` of payload timing) arrives."""
        machine = self.task.machine
        target_task = machine.task(target_rank)
        trace = self.engine.trace
        if trace is not None:
            # Handler side effects are arbitrary Python; the op tape cannot
            # represent them, so a window containing an amsend never caches.
            trace.record_opaque("amsend handler")
        with self.task.phase(AMSEND):
            yield self.engine.timeout(self.cost.rma_origin_overhead)
        self.stats.amsends += 1

        def deliver() -> ProcessGenerator:
            if target_task.node is self.task.node:
                if nbytes > 0:
                    yield self.task.node.bus.transfer(nbytes)
            else:
                yield from network_transfer(self.task.node, target_task.node, nbytes)
                yield from target_task.lapi._cooperate()
                yield self.engine.timeout(self.cost.rma_target_overhead)
            handler(target_task, payload)

        return self.engine.process(deliver(), name=f"am:{self.task.rank}->{target_rank}")
