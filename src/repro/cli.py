"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures [--fig N] [--full]``
    Regenerate the paper's evaluation figures as tables + ASCII charts.
``compare --op broadcast --bytes 16384 --nodes 8 --tasks 16``
    One data point across all three stacks.
``trace --op broadcast --bytes 8192 --nodes 2 --tasks 4 [--stack srm]``
    Run one collective and print the per-rank timeline
    (``--chrome-out FILE`` additionally writes a Perfetto-loadable trace;
    ``--policy`` swaps the SRM protocol-selection policy).
``profile --op allreduce --bytes 16384 --nodes 8 --tasks 16``
    Run one collective and print the critical-path phase breakdown plus the
    wait-state attribution table (late-sender / late-release /
    bandwidth-contention / resource-queueing, see ``repro.obs.waits``).
    ``--policy {paper,cost,tuned,fixed}`` selects the dispatch policy;
    ``--diff TARGET`` additionally runs a differential trace analysis
    against TARGET — another policy name, or a ``BENCH_*.json`` snapshot
    whose matching cell becomes the baseline.
``bench --json-out BENCH_head.json [--label head] [--full] [--jobs N]``
    Run the snapshot grid and write one schema-versioned telemetry snapshot
    (latencies + metrics + critical-path breakdown per cell).
``bench --self [--json-out KERNEL_selfbench.json]``
    Measure the simulator kernel's wall-clock throughput (events/second)
    and optionally record it as a JSON artifact.

Grid-shaped commands (``bench``, ``regress`` fresh runs, ``tune``,
``export``, ``figures``) accept ``--jobs N`` to fan their independent grid
cells over N worker processes (``--jobs 0`` = every core; default serial).
Artifacts are byte-identical at any ``--jobs`` setting.
``regress --baseline BENCH_seed.json [--candidate BENCH_head.json]
[--tolerance 0.05] [--update] [--diff-out DIFF.json] [--trace-out T.json]``
    Diff a candidate snapshot (or a fresh run) against the committed
    baseline; fail on unexplained regressions or figure-shape violations.
    Regressions are attributed down to the wait state and resource
    responsible ("+340 us of bandwidth-contention on bus[0] during
    ring-step"); ``--diff-out`` writes the full differential trace analysis
    and ``--trace-out`` a Perfetto trace of the worst regressed cell.
``tune [-o TUNED.json] [--dry-run] [--ops broadcast,allreduce]``
    Race every registered algorithm variant over the bench grid and write
    the per-cell winners as a ``TunedPolicy`` decision table
    (``SRM(machine, policy=TunedPolicy.load("TUNED.json"))``).
``calibrate [-o CALIB_report.json] [--quick] [--jobs N]``
    Pair every variant's analytic cost prediction with its measured latency
    across the grid (the ``tune`` race machinery), then score the
    paper/cost/tuned/fixed dispatch policies by selection regret vs
    best-in-hindsight.  Writes a schema-v1 ``repro-calibration-report``
    with per-term model-error attribution and §2.4 crossover checks, and
    prints the predicted-vs-measured scatter plus the headline findings
    (see ``repro.obs.calib``).
``verify [--schedules N] [--explorer random|dfs] [--quick] [--smoke]``
    Explore many legal event interleavings of every SRM collective on a
    small-config grid, checking protocol invariants (read-before-READY,
    in-use buffer overwrite, counter monotonicity), deadlock freedom, and
    schedule-invariance of the results; ``--smoke`` instead injects known
    synchronization bugs and asserts the harness reports them.
``info``
    Dump the calibrated cost model and the default SRM configuration.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import typing

from repro.bench import (
    build,
    format_bytes,
    format_us,
    measure,
    message_sizes,
    print_table,
    processor_configs,
    ratio_percent,
    small_message_sizes,
    time_operation,
)
from repro.bench.figures import ascii_chart
from repro.bench.trace import Tracer
from repro.core import SRMConfig
from repro.machine import ClusterSpec, CostModel

__all__ = ["main"]


def _cmd_info(_args: argparse.Namespace) -> int:
    print("Cost model (CostModel.ibm_sp_colony):")
    for field in dataclasses.fields(CostModel):
        value = getattr(CostModel.ibm_sp_colony(), field.name)
        print(f"  {field.name:28s} {value}")
    print("\nSRM configuration (SRMConfig defaults):")
    for field in dataclasses.fields(SRMConfig):
        print(f"  {field.name:28s} {getattr(SRMConfig(), field.name)}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = ClusterSpec(nodes=args.nodes, tasks_per_node=args.tasks)
    rows = []
    baseline = None
    for name in ("srm", "ibm", "mpich"):
        machine, stack = build(name, spec)
        seconds = time_operation(
            machine, stack, args.op, args.bytes, repeats=args.repeats
        ).seconds
        if baseline is None:
            baseline = seconds
        rows.append(
            [
                getattr(stack, "name", name),
                format_us(seconds),
                f"{100 * seconds / baseline:.1f}%",
            ]
        )
    print_table(
        f"{args.op} of {format_bytes(args.bytes)} on {spec}",
        ["stack", "time [us]", "vs SRM"],
        rows,
    )
    return 0


def _resolve_policy(args: argparse.Namespace, name: str | None = None):
    """A ``--policy`` name -> a dispatch :class:`SelectionPolicy` instance.

    ``tuned`` loads the decision table named by ``--tuned-table``; ``fixed``
    parses ``--fixed op=variant[,op=variant...]``.
    """
    from repro.core.dispatch import (
        CostModelPolicy,
        FixedPolicy,
        PaperPolicy,
        TunedPolicy,
    )

    if name is None:
        name = getattr(args, "policy", "paper")
    if name == "paper":
        return PaperPolicy()
    if name == "cost":
        return CostModelPolicy()
    if name == "tuned":
        return TunedPolicy.load(args.tuned_table)
    if name == "fixed":
        choices: dict[str, str] = {}
        for pair in (args.fixed or "").split(","):
            pair = pair.strip()
            if not pair:
                continue
            op, _, variant = pair.partition("=")
            choices[op.strip()] = variant.strip()
        if not choices:
            raise SystemExit("--policy fixed requires --fixed op=variant[,op=variant]")
        return FixedPolicy(choices)
    raise SystemExit(f"unknown policy {name!r}")


def _run_collective(args: argparse.Namespace, policy: typing.Any = None):
    """Build a machine + traced stack and run one collective call.

    Shared by ``trace`` and ``profile``; returns the machine, the tracer,
    and the :class:`~repro.machine.cluster.LaunchResult`.  ``policy``
    overrides the SRM dispatch policy (MPI stacks ignore it).
    """
    import numpy as np

    from repro.mpi.ops import SUM

    spec = ClusterSpec(nodes=args.nodes, tasks_per_node=args.tasks)
    machine, stack = build(args.stack, spec, policy=policy)
    tracer = Tracer(machine)
    traced = tracer.wrap(stack)
    total = spec.total_tasks
    count = max(1, args.bytes // 8)
    buffers = {r: np.zeros(max(1, args.bytes), np.uint8) for r in range(total)}
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(count) for r in range(total)}
    destination = np.zeros(count)

    def program(task):
        if args.op == "broadcast":
            yield from traced.broadcast(task, buffers[task.rank], root=0)
        elif args.op == "reduce":
            dst = destination if task.rank == 0 else None
            yield from traced.reduce(task, sources[task.rank], dst, SUM, root=0)
        elif args.op == "allreduce":
            yield from traced.allreduce(task, sources[task.rank], outs[task.rank], SUM)
        else:
            yield from traced.barrier(task)

    result = machine.launch(program)
    return machine, tracer, result


def _cmd_trace(args: argparse.Namespace) -> int:
    machine, tracer, _result = _run_collective(args, policy=_resolve_policy(args))
    print(tracer.timeline(args.op, width=args.width))
    totals = tracer.totals()
    print(
        f"\ntotals: {totals['copies']} copies ({format_bytes(totals['bytes_copied'])}), "
        f"{totals['reduce_ops']} operator passes, {totals['puts']} puts, "
        f"{totals['mpi_sends']} MPI sends, {totals['interrupts']} interrupts"
    )
    print(f"makespan: {format_us(tracer.makespan(args.op))} us")
    if args.chrome_out:
        from repro.obs.export import chrome_trace, write_json

        write_json(args.chrome_out, chrome_trace(machine, tracer))
        print(f"wrote Perfetto trace to {args.chrome_out}")
    return 0


def _profile_diff(args: argparse.Namespace, machine, result) -> int:
    """``profile --diff TARGET``: differential trace analysis.

    TARGET is another policy name (run the same collective under it and
    compare) or a ``BENCH_*.json`` snapshot path (its matching cell becomes
    the baseline and a fresh apples-to-apples capture the candidate).
    """
    import os

    from repro.obs.diff import capture_profile, diff_cells, diff_profiles, format_diff

    target = args.diff
    if os.path.exists(target) or target.endswith(".json"):
        from repro.bench.snapshot import capture_cell, cell_seed, load_snapshot

        snapshot = load_snapshot(target)
        key = (args.op, args.stack, args.bytes, args.nodes)
        cells = {
            (c["operation"], c["stack"], c["nbytes"], c["nodes"]): c
            for c in snapshot["cells"]
        }
        baseline = cells.get(key)
        if baseline is None:
            print(
                f"snapshot {target} has no cell {key}; it has "
                f"{len(cells)} cells over ops "
                f"{sorted({k[0] for k in cells})}",
                file=sys.stderr,
            )
            return 2
        candidate = capture_cell(
            args.stack, args.op, args.bytes, args.nodes,
            seed=cell_seed(args.op, args.stack, args.bytes, args.nodes),
        )
        diff = diff_cells(baseline, candidate)
        print(f"\ndifferential analysis vs {snapshot['label']!r} cell of {target}:")
    else:
        other_policy = _resolve_policy(args, name=target)
        other_machine, _tracer, other_result = _run_collective(args, policy=other_policy)
        baseline = capture_profile(
            other_machine,
            other_result.start_time,
            other_result.end_time,
            microseconds=other_result.elapsed * 1e6,
        )
        candidate = capture_profile(
            machine,
            result.start_time,
            result.end_time,
            microseconds=result.elapsed * 1e6,
        )
        diff = diff_profiles(
            baseline,
            candidate,
            label=f"{args.op} {args.stack}: policy {target} -> {args.policy}",
        )
        print(f"\ndifferential analysis, policy {target} (baseline) vs {args.policy}:")
    print(format_diff(diff))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.critical import critical_path
    from repro.obs.export import chrome_trace, metrics_dump, write_json
    from repro.obs.waits import classify_waits

    machine, tracer, result = _run_collective(args, policy=_resolve_policy(args))
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    rows = [
        [phase, format_us(seconds), f"{100 * seconds / path.total:.1f}%"]
        for phase, seconds in path.by_phase().items()
    ]
    print_table(
        f"critical path: {args.op} of {format_bytes(args.bytes)} on {machine.spec}",
        ["phase", "time [us]", "% of makespan"],
        rows,
    )
    print(
        f"makespan: {format_us(result.elapsed)} us, "
        f"attributed: {100 * path.attributed / path.total:.1f}% "
        f"({len(path.segments)} segments)"
    )

    waits = classify_waits(
        machine, start=result.start_time, end=result.end_time, critical=path
    )
    if waits.intervals:
        critical_by_key: dict[str, float] = {}
        for interval in waits.intervals:
            if interval.on_critical_path:
                key = interval.key()
                critical_by_key[key] = critical_by_key.get(key, 0.0) + interval.duration
        wait_rows = []
        for key, seconds in sorted(waits.by_key().items(), key=lambda kv: -kv[1]):
            state, context, resource = key.split("|")
            wait_rows.append(
                [
                    state,
                    context,
                    resource,
                    format_us(seconds),
                    format_us(critical_by_key.get(key, 0.0)),
                ]
            )
        print_table(
            f"wait states ({len(waits.intervals)} blocked intervals, "
            f"{format_us(waits.total_blocked)} us blocked across ranks)",
            ["state", "during", "resource", "blocked [us]", "critical [us]"],
            wait_rows,
        )

    summary = machine.obs.metrics.summary()
    dispatch_rows = []
    for key in sorted(summary):
        if key.startswith("dispatch.") and key != "dispatch.fallbacks":
            _prefix, op, variant = key.split(".", 2)
            dispatch_rows.append([op, variant, str(int(summary[key]))])
    if dispatch_rows:
        fallbacks = int(summary.get("dispatch.fallbacks", 0))
        print_table(
            f"dispatch selections ({fallbacks} fallbacks)",
            ["operation", "variant", "calls"],
            dispatch_rows,
        )

    print(f"\ntop {args.top} critical-path segments:")
    for segment in path.top(args.top):
        print(
            f"  rank {segment.rank:>4}  {segment.phase:<20} "
            f"{segment.start * 1e6:>10.2f} .. {segment.end * 1e6:<10.2f} "
            f"({format_us(segment.duration)} us)"
        )
    if args.chrome_out:
        write_json(args.chrome_out, chrome_trace(machine, tracer))
        print(f"\nwrote Perfetto trace to {args.chrome_out}")
    if args.json_out:
        write_json(args.json_out, metrics_dump(machine, tracer))
        print(f"wrote metrics dump to {args.json_out}")
    if args.diff:
        return _profile_diff(args, machine, result)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    if args.self_bench:
        return _cmd_bench_self(args)

    from repro.bench.snapshot import collect_snapshot, write_snapshot

    if args.full:
        os.environ["REPRO_BENCH_FULL"] = "1"
    json_out = args.json_out or "BENCH_head.json"
    operations = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    progress = None
    if not args.quiet and json_out != "-":
        progress = lambda text: print(f"  bench {text}", flush=True)  # noqa: E731
    snapshot = collect_snapshot(
        label=args.label, operations=operations, progress=progress,
        jobs=args.jobs,
    )
    write_snapshot(json_out, snapshot)
    if json_out != "-":
        print(
            f"wrote {len(snapshot['cells'])} cells to {json_out} "
            f"(schema v{snapshot['schema_version']}, identity {snapshot['fingerprint']})"
        )
    return 0


def _cmd_bench_self(args: argparse.Namespace) -> int:
    """``bench --self``: kernel events/second, tracked instead of folklore."""
    import json

    from repro.bench.selfbench import kernel_selfbench

    document = kernel_selfbench(compiled_replay=not args.no_replay)
    print(
        f"kernel throughput: {document['events_per_second']:,.0f} events/s "
        f"(best of {document['workload']['repeats']} runs, "
        f"{document['events']} events each)"
    )
    replay = document["persistent_replay"]
    print(
        f"persistent replay: {replay['replay_ns_per_start']:,.0f} ns/start vs "
        f"{replay['blocking_ns_per_start']:,.0f} ns blocking setup "
        f"({replay['amortization_speedup']:.1f}x amortization, "
        f"{replay['starts']} starts of {replay['nbytes']} B broadcasts)"
    )
    compiled = document["compiled_replay"]
    if compiled is None:
        print("compiled replay: skipped (--no-replay)")
    else:
        drift = "identical" if compiled["cells_identical"] else "DRIFT DETECTED"
        print(
            f"compiled replay: {compiled['events_per_second_effective']:,.0f} "
            f"effective events/s vs {compiled['events_per_second_slow']:,.0f} slow "
            f"({compiled['speedup']:.1f}x, {compiled['replay_hits']} hits / "
            f"{compiled['replay_misses']} misses, "
            f"{compiled['nbytes']} B allreduce windows, digests {drift})"
        )
    if args.json_out:
        text = json.dumps(document, indent=1, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote kernel self-benchmark to {args.json_out}")
    return 0


def _write_regression_trace(cell, path: str) -> None:
    """Re-run the worst regressed cell and write its Perfetto trace."""
    from repro.bench.runner import looped_program, operation_body
    from repro.bench.snapshot import cell_seed
    from repro.obs.export import chrome_trace, write_json

    spec = ClusterSpec(nodes=cell.nodes, tasks_per_node=16)
    machine, stack = build(
        cell.stack, spec,
        seed=cell_seed(cell.operation, cell.stack, cell.nbytes, cell.nodes),
    )
    body = operation_body(machine, stack, cell.operation, cell.nbytes)
    machine.launch(looped_program(body, 1))
    write_json(path, chrome_trace(machine))


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.bench.regress import compare_snapshots, diff_document, format_report
    from repro.bench.shapes import check_shapes, format_shape_results
    from repro.bench.snapshot import collect_snapshot, load_snapshot, write_snapshot
    from repro.obs.export import write_json

    baseline = load_snapshot(args.baseline)
    if args.candidate is not None:
        candidate = load_snapshot(args.candidate)
    else:
        print("no --candidate given; running the snapshot grid now", flush=True)
        candidate = collect_snapshot(label="head", jobs=args.jobs)
        if args.json_out:
            write_snapshot(args.json_out, candidate)
            print(f"wrote fresh candidate snapshot to {args.json_out}")

    report = compare_snapshots(baseline, candidate, tolerance=args.tolerance)
    print(format_report(report, verbose=args.verbose))
    shapes = check_shapes(candidate)
    print(format_shape_results(shapes))
    shapes_ok = all(result.ok for result in shapes)

    if args.diff_out:
        write_json(args.diff_out, diff_document(baseline, candidate, report))
        print(f"wrote differential trace analysis to {args.diff_out}")
    if args.trace_out:
        if report.regressions:
            worst = max(report.regressions, key=lambda cell: cell.ratio)
            _write_regression_trace(worst, args.trace_out)
            print(f"wrote Perfetto trace of worst regression ({worst.label}) to {args.trace_out}")
        else:
            print("no regressions; skipping --trace-out")

    if args.update:
        write_snapshot(args.baseline, candidate)
        print(f"updated baseline {args.baseline} from the candidate snapshot")
        return 0
    return 0 if report.ok and shapes_ok else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bench.tune import TUNABLE_OPERATIONS, run_tune

    operations = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    progress = None
    if not args.quiet:
        progress = lambda text: print(f"  tune {text}", flush=True)  # noqa: E731
    document = run_tune(
        out=args.out,
        dry_run=args.dry_run,
        operations=operations or TUNABLE_OPERATIONS,
        label=args.label,
        progress=progress,
        jobs=args.jobs,
    )
    decided = sum(
        len(rows)
        for rows_by_nodes in document["table"].values()
        for rows in rows_by_nodes.values()
    )
    if args.dry_run:
        print(
            f"dry run ok: {decided} decisions over the micro-grid, "
            f"document loads as a TunedPolicy (schema v{document['schema_version']})"
        )
    else:
        print(
            f"wrote {decided} decisions to {args.out} "
            f"(schema v{document['schema_version']}, identity {document['fingerprint']})"
        )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.bench.figures import calibration_scatter
    from repro.obs.calib import run_calibrate

    operations = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    progress = None
    if not args.quiet and args.out != "-":
        progress = lambda text: print(f"  calibrate {text}", flush=True)  # noqa: E731
    document = run_calibrate(
        out=args.out,
        quick=args.quick,
        operations=operations or None,
        label=args.label,
        progress=progress,
        jobs=args.jobs,
        tuned_table=args.tuned_table,
    )
    if args.out != "-":
        print(calibration_scatter(document))
        print()
        for line in document["headlines"]:
            print(f"  {line}")
        print(
            f"wrote calibration report to {args.out} "
            f"(schema v{document['schema_version']}, identity {document['fingerprint']})"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.verify import build_report, run_mutation_smoke, run_verify, write_report
    from repro.verify.runner import VERIFY_OPERATIONS, default_grid, quick_grid

    progress = None
    if not args.quiet:
        progress = lambda text: print(f"  verify {text}", flush=True)  # noqa: E731

    if args.smoke:
        body = run_mutation_smoke(seed=args.seed, progress=progress)
        report = build_report(body, label=args.label)
        if args.json_out:
            write_report(args.json_out, report)
            if args.json_out != "-":
                print(f"wrote mutation-smoke report to {args.json_out}")
        detected = sum(1 for result in body["mutations"] if result["detected"])
        print(
            f"mutation smoke: {detected}/{len(body['mutations'])} injected bugs "
            f"detected ({'ok' if body['ok'] else 'FAIL'})"
        )
        return 0 if body["ok"] else 1

    operations = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    for operation in operations:
        if operation not in VERIFY_OPERATIONS:
            print(f"unknown operation {operation!r}", file=sys.stderr)
            return 2
    if args.quick:
        cells = [cell for cell in quick_grid() if cell.operation in operations]
    else:
        node_counts = tuple(int(n) for n in args.nodes.split(",") if n.strip())
        proc_counts = tuple(int(p) for p in args.procs.split(",") if p.strip())
        cells = default_grid(
            node_counts=node_counts, proc_counts=proc_counts, operations=operations
        )
    metrics = MetricsRegistry()
    body = run_verify(
        cells,
        schedules=args.schedules,
        explorer=args.explorer,
        seed=args.seed,
        faults=not args.no_faults,
        srm_config=SRMConfig(compiled_replay=False) if args.no_replay else None,
        metrics=metrics,
        progress=progress,
    )
    report = build_report(body, label=args.label)
    if args.json_out:
        write_report(args.json_out, report)
        if args.json_out != "-":
            print(f"wrote verification report to {args.json_out}")
    totals = body["totals"]
    print(
        f"verify: {totals['cells_ok']}/{totals['cells']} cells ok, "
        f"{totals['schedules']} schedules explored, "
        f"{totals['violations']} violations, {totals['divergences']} divergences, "
        f"{totals['errors']} errors ({'ok' if body['ok'] else 'FAIL'})"
    )
    return 0 if body["ok"] else 1


_FIGURES: dict[int, str] = {
    6: "broadcast",
    7: "reduce",
    8: "allreduce",
    12: "barrier",
}


def _figure_absolute(number: int, operation: str) -> None:
    configs = processor_configs()
    sizes = message_sizes()
    series = []
    glyphs = "ox+*#"
    for index, nodes in enumerate(configs):
        data = [
            (float(nbytes), measure("srm", operation, nbytes, nodes).microseconds)
            for nbytes in sizes
        ]
        series.append((f"P={16 * nodes}", glyphs[index % len(glyphs)], data))
    print(ascii_chart(f"Fig. {number}: SRM {operation} time (log-log)", series))


def _figure_comparison(number: int, operation: str) -> None:
    nodes = processor_configs()[-1]
    series = []
    for name, glyph in (("srm", "s"), ("ibm", "i"), ("mpich", "m")):
        data = [
            (float(nbytes), measure(name, operation, nbytes, nodes).microseconds)
            for nbytes in small_message_sizes()
        ]
        series.append((name, glyph, data))
    print(
        ascii_chart(
            f"Fig. {number} (right): {operation} <=64KB at P={16 * nodes}", series
        )
    )


def _figure_barrier() -> None:
    series = []
    for name, glyph in (("srm", "s"), ("ibm", "i"), ("mpich", "m")):
        data = [
            (float(16 * nodes), measure(name, "barrier", 0, nodes).microseconds)
            for nodes in processor_configs()
        ]
        series.append((name, glyph, data))
    print(
        ascii_chart(
            "Fig. 12: barrier vs processors",
            series,
            log_x=False,
            log_y=False,
            x_label="procs",
        )
    )


def _figure_ratio(number: int, operation: str) -> None:
    nodes = processor_configs()[-1]
    rows = []
    for nbytes in message_sizes():
        srm = measure("srm", operation, nbytes, nodes)
        rows.append(
            [
                format_bytes(nbytes),
                f"{ratio_percent(srm, measure('ibm', operation, nbytes, nodes)):.1f}%",
                f"{ratio_percent(srm, measure('mpich', operation, nbytes, nodes)):.1f}%",
            ]
        )
    print_table(
        f"Fig. {number}: SRM {operation} ratio at P={16 * nodes} (lower is better)",
        ["size", "vs IBM MPI", "vs MPICH"],
        rows,
    )


def _figure_specs(wanted: typing.Sequence[int]) -> list[tuple]:
    """Every (stack, op, nbytes, nodes) point the chosen figures will plot."""
    specs: list[tuple] = []
    last = processor_configs()[-1]
    for number in wanted:
        if number in (6, 7, 8):
            operation = _FIGURES[number]
            for nodes in processor_configs():
                for nbytes in message_sizes():
                    specs.append(("srm", operation, nbytes, nodes))
            for stack in ("srm", "ibm", "mpich"):
                for nbytes in small_message_sizes():
                    specs.append((stack, operation, nbytes, last))
        elif number in (9, 10, 11):
            operation = _FIGURES[number - 3]
            for stack in ("srm", "ibm", "mpich"):
                for nbytes in message_sizes():
                    specs.append((stack, operation, nbytes, last))
        elif number == 12:
            for stack in ("srm", "ibm", "mpich"):
                for nodes in processor_configs():
                    specs.append((stack, "barrier", 0, nodes))
    return specs


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from repro.bench import warm_cache

    if args.full:
        os.environ["REPRO_BENCH_FULL"] = "1"
    wanted = [args.fig] if args.fig else [6, 7, 8, 9, 10, 11, 12]
    if args.jobs != 1:
        # Fan the figures' grid points over the pool first; the renderers
        # below then read the memoized measurements back serially, so the
        # printed charts are identical at any --jobs setting.
        warm_cache(_figure_specs(wanted), jobs=args.jobs)
    for number in wanted:
        if number in (6, 7, 8):
            _figure_absolute(number, _FIGURES[number])
            _figure_comparison(number, _FIGURES[number])
        elif number in (9, 10, 11):
            _figure_ratio(number, _FIGURES[number - 3])
        elif number == 12:
            _figure_barrier()
        else:
            print(f"unknown figure {number}", file=sys.stderr)
            return 2
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import os

    from repro.bench.export import collect_sweep, to_csv, to_json

    if args.full:
        os.environ["REPRO_BENCH_FULL"] = "1"
    operations = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    measurements = collect_sweep(operations=operations, jobs=args.jobs)
    text = to_csv(measurements) if args.format == "csv" else to_json(measurements)
    if args.out == "-":
        print(text, end="")
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(measurements)} measurements to {args.out}")
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SRM collectives reproduction (IPDPS 2003) — figure and tool runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_jobs(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan grid cells over N worker processes (0 = all cores; "
            "default 1 = serial; results are byte-identical either way)",
        )

    def _add_policy_args(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--policy", default="paper", choices=["paper", "cost", "tuned", "fixed"],
            help="SRM protocol-selection policy (MPI stacks ignore it): "
            "paper = the paper's size thresholds, cost = analytic cost "
            "model, tuned = measured decision table, fixed = forced variants",
        )
        subparser.add_argument(
            "--tuned-table", default="TUNED.json", metavar="FILE",
            help="decision table for --policy tuned (default TUNED.json)",
        )
        subparser.add_argument(
            "--fixed", default=None, metavar="OP=VARIANT[,..]",
            help="forced variants for --policy fixed, e.g. allreduce=ring",
        )

    figures = commands.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--fig", type=int, default=None, help="only this figure number")
    figures.add_argument("--full", action="store_true", help="use the full paper grid")
    add_jobs(figures)
    figures.set_defaults(handler=_cmd_figures)

    compare = commands.add_parser("compare", help="one data point across all stacks")
    compare.add_argument("--op", default="broadcast", choices=["broadcast", "reduce", "allreduce", "barrier"])
    compare.add_argument("--bytes", type=int, default=16384)
    compare.add_argument("--nodes", type=int, default=8)
    compare.add_argument("--tasks", type=int, default=16)
    compare.add_argument("--repeats", type=int, default=3)
    compare.set_defaults(handler=_cmd_compare)

    trace = commands.add_parser("trace", help="run one collective and print its timeline")
    trace.add_argument("--op", default="broadcast", choices=["broadcast", "reduce", "allreduce", "barrier"])
    trace.add_argument("--bytes", type=int, default=8192)
    trace.add_argument("--nodes", type=int, default=2)
    trace.add_argument("--tasks", type=int, default=4)
    trace.add_argument("--stack", default="srm", choices=["srm", "ibm", "mpich"])
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument(
        "--chrome-out", default=None, help="also write a Perfetto/Chrome trace JSON here"
    )
    _add_policy_args(trace)
    trace.set_defaults(handler=_cmd_trace)

    profile = commands.add_parser(
        "profile", help="run one collective and print its critical-path breakdown"
    )
    profile.add_argument("--op", default="allreduce", choices=["broadcast", "reduce", "allreduce", "barrier"])
    profile.add_argument("--bytes", type=int, default=16384)
    profile.add_argument("--nodes", type=int, default=8)
    profile.add_argument("--tasks", type=int, default=16)
    profile.add_argument("--stack", default="srm", choices=["srm", "ibm", "mpich"])
    profile.add_argument("--top", type=int, default=10, help="longest segments to list")
    profile.add_argument(
        "--chrome-out", default=None, help="write a Perfetto/Chrome trace JSON here"
    )
    profile.add_argument(
        "--json-out", default=None, help="write the JSON metrics dump here ('-' = stdout)"
    )
    _add_policy_args(profile)
    profile.add_argument(
        "--diff", default=None, metavar="TARGET",
        help="differential trace analysis against TARGET: another policy "
        "name (paper/cost/tuned/fixed) or a BENCH_*.json snapshot whose "
        "matching cell becomes the baseline",
    )
    profile.set_defaults(handler=_cmd_profile)

    bench = commands.add_parser(
        "bench", help="run the snapshot grid and write a telemetry snapshot"
    )
    bench.add_argument(
        "--json-out", default=None,
        help="output path ('-' = stdout; default BENCH_head.json, "
        "or nothing for --self)",
    )
    bench.add_argument("--label", default="head", help="label stored in the snapshot")
    bench.add_argument("--ops", default="broadcast,reduce,allreduce,barrier")
    bench.add_argument("--full", action="store_true", help="use the full paper grid")
    bench.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    bench.add_argument(
        "--self", dest="self_bench", action="store_true",
        help="measure kernel wall-clock throughput (events/second) instead "
        "of running the grid",
    )
    bench.add_argument(
        "--no-replay", dest="no_replay", action="store_true",
        help="escape hatch: skip the compiled-schedule replay scenario "
        "(with --self)",
    )
    add_jobs(bench)
    bench.set_defaults(handler=_cmd_bench)

    regress = commands.add_parser(
        "regress", help="gate a snapshot against a committed baseline"
    )
    regress.add_argument("--baseline", required=True, help="baseline snapshot path")
    regress.add_argument(
        "--candidate", default=None,
        help="candidate snapshot path (omit to run the grid now)",
    )
    regress.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative slowdown tolerated per cell (default 0.05 = 5%%)",
    )
    regress.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the candidate and exit 0",
    )
    regress.add_argument(
        "--json-out", default=None,
        help="also write a freshly-run candidate snapshot here",
    )
    regress.add_argument("--verbose", action="store_true", help="list every cell")
    regress.add_argument(
        "--diff-out", default=None,
        help="write the per-cell differential trace analysis (phases + wait "
        "states) as JSON here",
    )
    regress.add_argument(
        "--trace-out", default=None,
        help="write a Perfetto trace of the worst regressed cell here",
    )
    add_jobs(regress)
    regress.set_defaults(handler=_cmd_regress)

    tune = commands.add_parser(
        "tune", help="measure a TunedPolicy decision table over the bench grid"
    )
    tune.add_argument("-o", "--out", default="TUNED.json", help="decision-table path")
    tune.add_argument("--label", default="tuned", help="label stored in the table")
    tune.add_argument("--ops", default="broadcast,reduce,allreduce,allgather")
    tune.add_argument(
        "--dry-run", action="store_true",
        help="sweep a micro-grid, validate the document round-trips, write nothing",
    )
    tune.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    add_jobs(tune)
    tune.set_defaults(handler=_cmd_tune)

    calibrate = commands.add_parser(
        "calibrate",
        help="pair predicted vs measured costs; score dispatch policies by regret",
    )
    calibrate.add_argument(
        "-o", "--out", default="CALIB_report.json",
        help="calibration-report path ('-' = stdout)",
    )
    calibrate.add_argument("--label", default="calibration", help="label stored in the report")
    calibrate.add_argument("--ops", default="broadcast,reduce,allreduce,allgather")
    calibrate.add_argument(
        "--quick", action="store_true",
        help="CI-sized micro-grid that still spans the 8KB/16KB §2.4 switch points",
    )
    calibrate.add_argument(
        "--tuned-table", default=None, metavar="FILE",
        help="score this measured decision table as the 'tuned' policy "
        "(default: the grid's own best-in-hindsight winners)",
    )
    calibrate.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    add_jobs(calibrate)
    calibrate.set_defaults(handler=_cmd_calibrate)

    verify = commands.add_parser(
        "verify", help="explore schedules and check protocol invariants"
    )
    verify.add_argument(
        "--nodes", default="2,4", help="comma-separated node counts (default 2,4)"
    )
    verify.add_argument(
        "--procs", default="2,3",
        help="comma-separated tasks-per-node counts (default 2,3)",
    )
    verify.add_argument("--ops", default="broadcast,reduce,allreduce,barrier")
    verify.add_argument(
        "--schedules", type=int, default=56,
        help="distinct-schedule target per cell (default 56)",
    )
    verify.add_argument(
        "--explorer", default="random", choices=["random", "dfs"],
        help="tie-break exploration driver (default random)",
    )
    verify.add_argument("--seed", type=int, default=0, help="exploration base seed")
    verify.add_argument(
        "--no-faults", action="store_true",
        help="disable timing fault injection (jitter, wakeup reorder, stalls)",
    )
    verify.add_argument(
        "--quick", action="store_true",
        help="CI-sized subset: 2x2 shapes, small+pipelined regimes",
    )
    verify.add_argument(
        "--smoke", action="store_true",
        help="mutation smoke: inject known sync bugs, require detection",
    )
    verify.add_argument(
        "--json-out", default=None, help="write the JSON report here ('-' = stdout)"
    )
    verify.add_argument("--label", default="head", help="label stored in the report")
    verify.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    verify.add_argument(
        "--no-replay", dest="no_replay", action="store_true",
        help="escape hatch: disable compiled-schedule replay "
        "(SRMConfig.compiled_replay=False) for every cell",
    )
    verify.set_defaults(handler=_cmd_verify)

    info = commands.add_parser("info", help="dump cost model + SRM configuration")
    info.set_defaults(handler=_cmd_info)

    export = commands.add_parser("export", help="write the sweep grid as CSV/JSON")
    export.add_argument("--format", default="csv", choices=["csv", "json"])
    export.add_argument("--out", default="-", help="output path ('-' = stdout)")
    export.add_argument("--ops", default="broadcast,reduce,allreduce,barrier")
    export.add_argument("--full", action="store_true", help="use the full paper grid")
    add_jobs(export)
    export.set_defaults(handler=_cmd_export)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
