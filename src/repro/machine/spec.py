"""Cluster shape: nodes, tasks per node, and the rank↔node mapping.

Ranks are assigned block-wise, the way POE laid out MPI tasks on the IBM SP:
node 0 holds ranks ``0 .. p0-1``, node 1 the next ``p1`` ranks, and so on.
Non-uniform node sizes are supported because the paper explicitly discusses
the 15-of-16-CPUs configuration used to dodge system daemons (§2.1).
"""

from __future__ import annotations

import bisect
import math
import typing
from dataclasses import dataclass, field

from repro.errors import TopologyError

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a simulated SMP cluster.

    Parameters
    ----------
    nodes:
        Number of SMP nodes.
    tasks_per_node:
        Either one task count used for every node, or a sequence giving each
        node's task count.
    """

    nodes: int
    tasks_per_node: int | typing.Sequence[int] = 16
    _sizes: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _starts: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TopologyError(f"cluster needs >= 1 node, got {self.nodes}")
        if isinstance(self.tasks_per_node, int):
            sizes = (self.tasks_per_node,) * self.nodes
        else:
            sizes = tuple(int(size) for size in self.tasks_per_node)
            if len(sizes) != self.nodes:
                raise TopologyError(
                    f"tasks_per_node has {len(sizes)} entries for {self.nodes} nodes"
                )
        if any(size < 1 for size in sizes):
            raise TopologyError(f"every node needs >= 1 task, got sizes {sizes}")
        starts_list: list[int] = [0]
        for size in sizes[:-1]:
            starts_list.append(starts_list[-1] + size)
        object.__setattr__(self, "_sizes", sizes)
        object.__setattr__(self, "_starts", tuple(starts_list))

    # -- global properties --------------------------------------------------

    @property
    def total_tasks(self) -> int:
        """Total number of tasks (MPI ranks) across the cluster."""
        return self._starts[-1] + self._sizes[-1]

    @property
    def uniform(self) -> bool:
        """True when every node runs the same number of tasks."""
        return len(set(self._sizes)) == 1

    @property
    def node_sizes(self) -> tuple[int, ...]:
        """Per-node task counts."""
        return self._sizes

    def tree_height_bound(self) -> int:
        """``ceil(log2 P)`` — the binomial-tree height bound of paper eq. (1)."""
        return max(1, math.ceil(math.log2(self.total_tasks))) if self.total_tasks > 1 else 0

    # -- rank <-> node mapping ----------------------------------------------

    def check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.total_tasks:
            raise TopologyError(f"rank {rank} outside [0, {self.total_tasks})")
        return rank

    def check_node(self, node: int) -> int:
        if not 0 <= node < self.nodes:
            raise TopologyError(f"node {node} outside [0, {self.nodes})")
        return node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self.check_rank(rank)
        return bisect.bisect_right(self._starts, rank) - 1

    def local_index(self, rank: int) -> int:
        """Position of ``rank`` within its node (0 = first task on the node)."""
        return rank - self._starts[self.node_of(rank)]

    def node_size(self, node: int) -> int:
        """Number of tasks on ``node``."""
        return self._sizes[self.check_node(node)]

    def first_rank(self, node: int) -> int:
        """Lowest global rank on ``node``."""
        return self._starts[self.check_node(node)]

    def ranks_on_node(self, node: int) -> range:
        """All global ranks hosted on ``node``."""
        start = self.first_rank(node)
        return range(start, start + self._sizes[node])

    def rank_at(self, node: int, local_index: int) -> int:
        """Global rank of the ``local_index``-th task on ``node``."""
        if not 0 <= local_index < self.node_size(node):
            raise TopologyError(
                f"local index {local_index} outside node {node} of size {self.node_size(node)}"
            )
        return self._starts[node] + local_index

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when two ranks share an SMP node (can use shared memory)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def __str__(self) -> str:
        if self.uniform:
            return f"{self.nodes} nodes x {self._sizes[0]} tasks = {self.total_tasks} tasks"
        return f"{self.nodes} nodes, sizes {self._sizes} = {self.total_tasks} tasks"
