"""Raw byte-level memory operations shared by the data-moving substrates.

:func:`raw_copyto` is the single byte-moving primitive of the simulated
transports; :func:`apply_batch` replays a flat tape of such operations in one
tight pass — the vectorized kernel behind compiled-schedule replay
(:mod:`repro.core.replay`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["raw_copyto", "apply_batch"]


def raw_copyto(dst: np.ndarray, src: np.ndarray) -> None:
    """Copy ``src``'s bytes into ``dst`` regardless of dtype.

    Simulated transports move bytes between typed user buffers and untyped
    shared-memory/staging regions; a dtype-aware ``np.copyto`` would *cast*
    values instead.  Sizes must already match (callers validate).
    """
    if dst.dtype == src.dtype:
        np.copyto(dst, src)
    else:
        np.copyto(dst.reshape(-1).view(np.uint8), src.reshape(-1).view(np.uint8))


def apply_batch(ops) -> int:
    """Apply a flat tape of memory operations in capture order.

    Each entry is ``(kind, dst, a, b, op)`` with kind 0 = raw copy
    (``a`` → ``dst``), 1 = operator application (``op(dst, a)``), and
    2 = two-source combine (``op.combine_into(dst, a, b)``).  The tape is
    ordered, so overlapping extents resolve exactly as the recorded
    schedule resolved them.  Returns the number of operations applied.
    """
    for kind, dst, a, b, op in ops:
        if kind == 0:
            raw_copyto(dst, a)
        elif kind == 1:
            op(dst, a)
        else:
            op.combine_into(dst, a, b)
    return len(ops)
