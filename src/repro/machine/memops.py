"""Raw byte-level copy helper shared by the data-moving substrates."""

from __future__ import annotations

import numpy as np

__all__ = ["raw_copyto"]


def raw_copyto(dst: np.ndarray, src: np.ndarray) -> None:
    """Copy ``src``'s bytes into ``dst`` regardless of dtype.

    Simulated transports move bytes between typed user buffers and untyped
    shared-memory/staging regions; a dtype-aware ``np.copyto`` would *cast*
    values instead.  Sizes must already match (callers validate).
    """
    if dst.dtype == src.dtype:
        np.copyto(dst, src)
    else:
        np.copyto(dst.reshape(-1).view(np.uint8), src.reshape(-1).view(np.uint8))
