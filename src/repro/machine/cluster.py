"""The simulated machine: nodes, tasks, and program launching.

A :class:`Machine` instantiates the cluster described by a
:class:`~repro.machine.spec.ClusterSpec` under one discrete-event engine:

* each **node** gets a memory bus (fluid-flow shared bandwidth over which all
  intra-node copies and NIC DMA contend) and a pair of NIC links (in/out);
* each **task** (MPI rank) gets a LAPI endpoint (RMA substrate) and an MPI
  endpoint (point-to-point substrate), plus timed data-movement helpers that
  really move NumPy bytes when the simulated operation completes.

Programs are generators taking a :class:`Task`; :meth:`Machine.launch` runs
one program instance per rank and reports per-rank results and the makespan.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.machine.costmodel import CostModel
from repro.machine.memops import raw_copyto
from repro.machine.spec import ClusterSpec
from repro.obs import Observability
from repro.obs.taxonomy import REDUCE_APPLY, SHM_COPY
from repro.sim import Engine, SharedBandwidth
from repro.sim.process import ProcessGenerator

__all__ = ["Machine", "Node", "Task", "LaunchResult"]


class Node:
    """One SMP node: a memory bus, two NIC directions, and its task ranks."""

    def __init__(self, machine: "Machine", index: int) -> None:
        cost = machine.cost
        engine = machine.engine
        self.machine = machine
        self.index = index
        self.ranks = machine.spec.ranks_on_node(index)
        #: All intra-node copies, reductions, and NIC DMA share this bus.
        self.bus = SharedBandwidth(engine, cost.memory_bus_bandwidth, name=f"bus[{index}]")
        self.nic_out = SharedBandwidth(engine, cost.net_bandwidth, name=f"nic_out[{index}]")
        self.nic_in = SharedBandwidth(engine, cost.net_bandwidth, name=f"nic_in[{index}]")

    @property
    def size(self) -> int:
        """Number of tasks on this node."""
        return len(self.ranks)

    @property
    def master_rank(self) -> int:
        """The node's default master task (lowest rank, §2.3: one selected
        process per node communicates across the network)."""
        return self.ranks[0]

    def __repr__(self) -> str:
        return f"<Node {self.index} ranks={self.ranks.start}..{self.ranks.stop - 1}>"


class TaskStats:
    """Per-task audit counters (used by tests and the Fig. 2 analysis)."""

    __slots__ = ("copies", "bytes_copied", "reduce_ops", "bytes_reduced", "yields", "interrupts")

    def __init__(self) -> None:
        self.copies = 0
        self.bytes_copied = 0
        self.reduce_ops = 0
        self.bytes_reduced = 0
        self.yields = 0
        self.interrupts = 0


class Task:
    """One MPI rank: the execution context handed to simulated programs."""

    def __init__(self, machine: "Machine", rank: int) -> None:
        self.machine = machine
        self.rank = rank
        self.node: Node = machine.nodes[machine.spec.node_of(rank)]
        self.engine: Engine = machine.engine
        self.cost: CostModel = machine.cost
        self.spec: ClusterSpec = machine.spec
        self.obs: Observability = machine.obs
        self.stats = TaskStats()
        # Substrate endpoints are attached by Machine after all tasks exist
        # (they need the full task table for addressing).
        self.lapi: typing.Any = None
        self.mpi: typing.Any = None

    # -- identity helpers ---------------------------------------------------

    @property
    def local_index(self) -> int:
        """Index of this task within its node."""
        return self.spec.local_index(self.rank)

    @property
    def is_node_master(self) -> bool:
        """True if this task is its node's master."""
        return self.rank == self.node.master_rank

    def same_node(self, other_rank: int) -> bool:
        """True when ``other_rank`` shares this task's SMP node."""
        return self.spec.same_node(self.rank, other_rank)

    def phase(self, name: str, detail: str = "") -> typing.ContextManager:
        """Open a named observability phase span (``with task.phase(...)``)."""
        return self.obs.phase(self, name, detail)

    # -- timed data movement -------------------------------------------------

    def copy(
        self, dst: np.ndarray, src: np.ndarray
    ) -> ProcessGenerator:
        """Copy ``src`` into ``dst`` through shared memory (``yield from``).

        Costs one copy start-up plus the bus transfer (capped at one CPU's
        copy bandwidth); the bytes actually land in ``dst`` on completion, so
        correctness is observable, not assumed.
        """
        if dst.nbytes != src.nbytes:
            raise ProtocolError(
                f"copy size mismatch: dst {dst.nbytes} B vs src {src.nbytes} B"
            )
        nbytes = dst.nbytes
        with self.phase(SHM_COPY):
            yield self.engine.timeout(self.cost.sm_copy_latency)
            yield self.node.bus.transfer(nbytes, max_rate=self.cost.sm_copy_bandwidth)
        raw_copyto(dst, src)
        trace = self.engine.trace
        if trace is not None:
            trace.record_copy(dst, src)
        self.stats.copies += 1
        self.stats.bytes_copied += nbytes
        self.obs.copies.inc()
        self.obs.bytes_copied.inc(nbytes)

    def reduce_into(
        self,
        dst: np.ndarray,
        src: np.ndarray,
        op: typing.Callable[[np.ndarray, np.ndarray], None],
    ) -> ProcessGenerator:
        """Apply ``dst = op(dst, src)`` element-wise at reduce-op bandwidth.

        ``op`` is an in-place combiner such as those in :mod:`repro.mpi.ops`.
        """
        if dst.nbytes != src.nbytes:
            raise ProtocolError(
                f"reduce size mismatch: dst {dst.nbytes} B vs src {src.nbytes} B"
            )
        nbytes = dst.nbytes
        with self.phase(REDUCE_APPLY):
            yield self.engine.timeout(self.cost.sm_copy_latency)
            yield self.node.bus.transfer(nbytes, max_rate=self.cost.reduce_op_bandwidth)
        op(dst, src)
        trace = self.engine.trace
        if trace is not None:
            trace.record_reduce(dst, src, op)
        self.stats.reduce_ops += 1
        self.stats.bytes_reduced += nbytes
        self.obs.reduce_ops.inc()
        self.obs.bytes_reduced.inc(nbytes)

    def combine_into(
        self,
        dst: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        op: typing.Any,
    ) -> ProcessGenerator:
        """Apply ``dst = a OP b`` in one streaming pass (``dst`` may alias
        ``a``) — the zero-extra-copy combine the SRM reduce root uses."""
        if not (dst.nbytes == a.nbytes == b.nbytes):
            raise ProtocolError(
                f"combine size mismatch: {dst.nbytes}/{a.nbytes}/{b.nbytes} B"
            )
        nbytes = dst.nbytes
        with self.phase(REDUCE_APPLY):
            yield self.engine.timeout(self.cost.sm_copy_latency)
            yield self.node.bus.transfer(nbytes, max_rate=self.cost.reduce_op_bandwidth)
        op.combine_into(dst, a, b)
        trace = self.engine.trace
        if trace is not None:
            trace.record_combine(dst, a, b, op)
        self.stats.reduce_ops += 1
        self.stats.bytes_reduced += nbytes
        self.obs.reduce_ops.inc()
        self.obs.bytes_reduced.inc(nbytes)

    def compute(self, seconds: float) -> ProcessGenerator:
        """Model ``seconds`` of pure CPU work (no bus traffic)."""
        yield self.engine.timeout(seconds)

    def __repr__(self) -> str:
        return f"<Task rank={self.rank} node={self.node.index} local={self.local_index}>"


class LaunchResult:
    """Outcome of one :meth:`Machine.launch`: per-rank results + timing."""

    def __init__(
        self,
        results: dict[int, typing.Any],
        start_time: float,
        finish_times: dict[int, float],
    ) -> None:
        self.results = results
        self.start_time = start_time
        self.finish_times = finish_times
        self.end_time = max(finish_times.values())

    @property
    def elapsed(self) -> float:
        """Makespan: last rank's finish minus the common start."""
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        return f"<LaunchResult elapsed={self.elapsed:.6g}s ranks={len(self.results)}>"


class Machine:
    """A simulated SMP cluster ready to run collective programs."""

    def __init__(
        self,
        spec: ClusterSpec,
        cost: CostModel | None = None,
        seed: int = 0,
        observe: bool = True,
        scheduler: typing.Any = None,
    ) -> None:
        self.spec = spec
        self.cost = cost if cost is not None else CostModel.ibm_sp_colony()
        #: ``scheduler`` (a :class:`repro.sim.scheduler.Scheduler`) selects
        #: the engine's same-timestamp tie-break policy; ``None`` keeps the
        #: default deterministic order and the engine's fast paths.
        self.engine = Engine(scheduler=scheduler)
        #: Always-on metrics + phase recorder; ``observe=False`` swaps in
        #: no-op instruments (used to assert observation never perturbs
        #: simulated results).
        self.obs = Observability(self.engine, enabled=observe)
        self.rng = np.random.default_rng(seed)
        self.nodes = [Node(self, index) for index in range(spec.nodes)]
        self.tasks = [Task(self, rank) for rank in range(spec.total_tasks)]
        self._attach_endpoints()
        if self.cost.daemon_interval > 0:
            self._start_daemon_noise()

    def _attach_endpoints(self) -> None:
        # Imported here: the substrate modules type-reference Machine/Task.
        from repro.lapi.endpoint import LapiEndpoint
        from repro.mpi.p2p import MpiEndpoint

        for task in self.tasks:
            task.lapi = LapiEndpoint(task)
        for task in self.tasks:
            task.mpi = MpiEndpoint(task)

    def _start_daemon_noise(self) -> None:
        """Periodic per-node bus theft modelling AIX system daemons (§2.1)."""

        def daemon(node: Node) -> ProcessGenerator:
            steal_bytes = self.cost.daemon_duration * self.cost.memory_bus_bandwidth
            while True:
                interval = float(self.rng.exponential(self.cost.daemon_interval))
                yield self.engine.timeout(interval)
                yield node.bus.transfer(steal_bytes)

        for node in self.nodes:
            self.engine.process(daemon(node), name=f"daemon[{node.index}]")

    # -- convenience accessors -------------------------------------------

    def task(self, rank: int) -> Task:
        """The task object for ``rank``."""
        self.spec.check_rank(rank)
        return self.tasks[rank]

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    # -- running programs ---------------------------------------------------

    def launch(
        self,
        program: typing.Callable[[Task], ProcessGenerator],
        ranks: typing.Iterable[int] | None = None,
    ) -> LaunchResult:
        """Run one ``program(task)`` generator per rank to completion.

        All instances start at the current simulated time; the engine runs
        until every instance finishes.  The machine can be launched again
        afterwards — simulated time keeps advancing, which is how repeated
        (pipelined, buffer-alternating) calls are measured.
        """
        selected = list(ranks) if ranks is not None else list(range(self.spec.total_tasks))
        if not selected:
            raise ConfigurationError("launch() needs at least one rank")
        start_time = self.engine.now
        finish_times: dict[int, float] = {}
        results: dict[int, typing.Any] = {}

        def wrapped(task: Task) -> ProcessGenerator:
            outcome = yield from program(task)
            finish_times[task.rank] = self.engine.now
            results[task.rank] = outcome

        processes = [
            self.engine.process(wrapped(self.tasks[rank]), name=f"rank{rank}")
            for rank in selected
        ]
        self.engine.run(until=self.engine.all_of(processes))
        return LaunchResult(results, start_time, finish_times)

    def __repr__(self) -> str:
        return f"<Machine {self.spec} t={self.engine.now:.6g}>"
