"""The simulated SMP cluster: topology, cost model, nodes, and tasks."""

from repro.machine.cluster import LaunchResult, Machine, Node, Task
from repro.machine.costmodel import CostModel, EagerLimitTable
from repro.machine.network import network_transfer
from repro.machine.spec import ClusterSpec

__all__ = [
    "ClusterSpec",
    "CostModel",
    "EagerLimitTable",
    "Machine",
    "Node",
    "Task",
    "LaunchResult",
    "network_transfer",
]
