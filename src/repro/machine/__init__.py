"""The simulated SMP cluster: topology, cost model, nodes, and tasks."""

from repro.machine.cluster import LaunchResult, Machine, Node, Task
from repro.machine.costmodel import (
    COST_TERMS,
    CostModel,
    CostTerms,
    EagerLimitTable,
    TermProbe,
)
from repro.machine.network import network_transfer
from repro.machine.spec import ClusterSpec

__all__ = [
    "COST_TERMS",
    "ClusterSpec",
    "CostModel",
    "CostTerms",
    "EagerLimitTable",
    "TermProbe",
    "Machine",
    "Node",
    "Task",
    "LaunchResult",
    "network_transfer",
]
