"""The raw inter-node byte-moving primitive shared by LAPI and MPI.

One network message from node A to node B costs, in the fluid model:

* one one-way latency (:attr:`CostModel.net_latency`) — wire, adapters, and
  dispatch; then
* the payload streaming **concurrently** through three shared resources:
  A's NIC-out link, B's NIC-in link, and B's memory bus (the receiving DMA
  writes into node memory, contending with the SMP copies running there —
  the overlap the SRM pipelines exploit, paper §2.4).

An uncontended message therefore costs ``L + n/B`` (LogGP shape); contention
at either NIC or the destination bus stretches the bandwidth term.
Zero-byte control messages cost one latency.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Node

__all__ = ["network_transfer"]


def network_transfer(src_node: "Node", dst_node: "Node", nbytes: int) -> ProcessGenerator:
    """Move ``nbytes`` from ``src_node`` to ``dst_node`` (``yield from``).

    Only models time; the caller moves the actual bytes on completion.
    """
    if src_node is dst_node:
        raise ProtocolError(
            f"network_transfer within node {src_node.index}; use shared memory"
        )
    engine = src_node.machine.engine
    cost = src_node.machine.cost
    yield engine.timeout(cost.net_latency)
    if nbytes > 0:
        yield engine.all_of(
            [
                src_node.nic_out.transfer(nbytes),
                dst_node.nic_in.transfer(nbytes),
                dst_node.bus.transfer(nbytes),
            ]
        )
