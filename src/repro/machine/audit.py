"""Post-run invariant auditing for simulated machines.

After a collective program completes (and the engine drains), the machine
must be back in a steady state: no live transfers on any link, no posted or
unexpected MPI messages left behind, eager pools back at full credit, and no
process still blocked.  :func:`audit_machine` checks all of that and returns
a report; tests call it to catch protocol leaks that produce correct *data*
but would poison the next operation.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.machine.cluster import Machine

__all__ = ["AuditReport", "audit_machine"]


@dataclass
class AuditReport:
    """Findings of one machine audit; empty ``problems`` means clean."""

    problems: list[str] = field(default_factory=list)
    #: Aggregate counters for the curious (bytes moved, messages, ...).
    totals: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.problems

    def __str__(self) -> str:
        if self.clean:
            return "audit: clean"
        return "audit problems:\n  " + "\n  ".join(self.problems)


def audit_machine(machine: Machine, drain: bool = True) -> AuditReport:
    """Check the machine's steady-state invariants.

    ``drain`` first runs the engine to exhaustion so off-critical-path
    helpers (acknowledgement puts, deliveries) can finish — but stalled
    deliveries waiting on a disabled-interrupt gate cannot complete and are
    reported as problems.
    """
    report = AuditReport()
    if drain:
        machine.engine.run()

    for node in machine.nodes:
        for link, label in (
            (node.bus, f"bus[{node.index}]"),
            (node.nic_out, f"nic_out[{node.index}]"),
            (node.nic_in, f"nic_in[{node.index}]"),
        ):
            if link.active_transfers:
                report.problems.append(
                    f"{label} still has {link.active_transfers} active transfers"
                )

    for task in machine.tasks:
        endpoint = task.mpi
        posted, unexpected = endpoint.queues.depth
        if posted:
            report.problems.append(f"rank {task.rank}: {posted} receives still posted")
        if unexpected:
            report.problems.append(
                f"rank {task.rank}: {unexpected} unexpected messages never received"
            )
        if endpoint.eager_pool.free != endpoint.eager_pool.capacity:
            report.problems.append(
                f"rank {task.rank}: eager pool holds "
                f"{endpoint.eager_pool.capacity - endpoint.eager_pool.free} leaked bytes"
            )
        if task.lapi.in_lapi_call:
            report.problems.append(f"rank {task.rank}: still inside a LAPI call")
        if task.lapi.stats.stalled_deliveries and not task.lapi.interrupts_enabled:
            # Not necessarily a leak (counts historical stalls), but a task
            # left with interrupts off can strand future deliveries.
            report.problems.append(
                f"rank {task.rank}: interrupts left disabled after stalled deliveries"
            )

    report.totals = {
        "bytes_copied": sum(t.stats.bytes_copied for t in machine.tasks),
        "copies": sum(t.stats.copies for t in machine.tasks),
        "reduce_ops": sum(t.stats.reduce_ops for t in machine.tasks),
        "puts": sum(t.lapi.stats.puts for t in machine.tasks),
        "mpi_sends": sum(t.mpi.stats.sends for t in machine.tasks),
        "interrupts": sum(t.stats.interrupts for t in machine.tasks),
    }
    return report


def assert_clean(machine: Machine) -> None:
    """Raise ``AssertionError`` with the findings if the audit is not clean."""
    report = audit_machine(machine)
    assert report.clean, str(report)


if typing.TYPE_CHECKING:  # pragma: no cover
    __all__.append("assert_clean")
