"""Timing parameters for the simulated SMP cluster.

Every latency is in seconds, every bandwidth in bytes/second.  The defaults
(:meth:`CostModel.ibm_sp_colony`) are calibrated to the paper's platform —
IBM SP with 16-way Nighthawk-II SMP nodes (375 MHz POWER3) and the "Colony"
switch — using figures from the LAPI paper [20], the Colony switch
documentation, and the absolute microsecond scales visible in the paper's
Figures 6–8 and 12.  Absolute accuracy is not the goal (our substrate is a
simulator, not the authors' testbed); the parameters are chosen so that the
*relationships* the paper's argument rests on hold:

* shared-memory copy is an order of magnitude cheaper than a network hop;
* one LAPI put costs about the same as one MPI send/receive (paper §2.3:
  "Performance of LAPI RMA operations is similar to that of MPI
  send-receive") but carries no tag-matching, no eager-buffer copy, and no
  rendezvous handshake;
* the MPI eager limit shrinks with the task count (the buffer-memory
  trade-off of §2.3), pushing mid-size messages onto the slower rendezvous
  path at scale.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = [
    "COST_TERMS",
    "CostModel",
    "CostTerms",
    "EagerLimitTable",
    "TermProbe",
]


KB = 1024
MB = 1024 * 1024
US = 1e-6  # one microsecond in seconds

#: The canonical cost-term vocabulary of the breakdown API: every analytic
#: latency estimate decomposes into these buckets (plus ``other`` for
#: contributions a cost hook adds as plain floats).  ``copy`` is shared-memory
#: movement (:meth:`CostModel.copy_time`), ``wire`` is network transfer
#: (:meth:`CostModel.wire_time`), ``reduce`` is operator execution
#: (:meth:`CostModel.reduce_time`), ``eager`` is the §2.3 eager/rendezvous
#: protocol penalty (:meth:`CostModel.eager_time`).
COST_TERMS = ("copy", "wire", "reduce", "eager")


class CostTerms:
    """A latency estimate kept as a linear combination of named cost terms.

    :meth:`TermProbe.copy_time` and friends return ``CostTerms`` instead of
    plain floats; the arithmetic the dispatch cost hooks already perform
    (``depth * env.cost.wire_time(n) + smp_fanout``) then propagates the
    per-term attribution for free — scaling multiplies every term, addition
    merges term-wise.  ``float(terms)`` (or :attr:`total`) recovers the
    scalar estimate, so a breakdown always sums to exactly the number
    :class:`~repro.core.dispatch.CostModelPolicy` ranks variants by.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: typing.Mapping[str, float] | None = None) -> None:
        self.terms: dict[str, float] = dict(terms or {})

    @classmethod
    def coerce(cls, value: typing.Any) -> "CostTerms":
        """Lift a plain number (a hook that ignored the probe) into terms."""
        if isinstance(value, CostTerms):
            return value
        number = float(value)
        return cls({"other": number}) if number else cls()

    @property
    def total(self) -> float:
        """The scalar estimate in seconds (the sum of every term)."""
        return math.fsum(self.terms.values())

    def as_dict(self) -> dict[str, float]:
        """Term -> seconds, key-sorted (byte-stable serialization)."""
        return {term: self.terms[term] for term in sorted(self.terms)}

    # -- linear algebra over terms ---------------------------------------

    def __add__(self, other: typing.Any) -> "CostTerms":
        if isinstance(other, CostTerms):
            merged = dict(self.terms)
            for term, seconds in other.terms.items():
                merged[term] = merged.get(term, 0.0) + seconds
            return CostTerms(merged)
        if isinstance(other, (int, float)):
            if other == 0:
                return self
            merged = dict(self.terms)
            merged["other"] = merged.get("other", 0.0) + float(other)
            return CostTerms(merged)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, factor: typing.Any) -> "CostTerms":
        if isinstance(factor, (int, float)):
            return CostTerms(
                {term: seconds * factor for term, seconds in self.terms.items()}
            )
        return NotImplemented

    __rmul__ = __mul__

    def __float__(self) -> float:
        return self.total

    def _value(self, other: typing.Any) -> float:
        return other.total if isinstance(other, CostTerms) else float(other)

    def __lt__(self, other: typing.Any) -> bool:
        return self.total < self._value(other)

    def __le__(self, other: typing.Any) -> bool:
        return self.total <= self._value(other)

    def __gt__(self, other: typing.Any) -> bool:
        return self.total > self._value(other)

    def __ge__(self, other: typing.Any) -> bool:
        return self.total >= self._value(other)

    def __repr__(self) -> str:
        inside = ", ".join(
            f"{term}={seconds:.3g}" for term, seconds in sorted(self.terms.items())
        )
        return f"<CostTerms total={self.total:.3g} {inside}>"


class TermProbe:
    """A :class:`CostModel` facade whose time queries return :class:`CostTerms`.

    Hand one to a dispatch cost hook (``entry.cost(env)`` with
    ``env.cost = model.probe()``) and the returned estimate arrives broken
    down per cost-model term — no hook rewrite needed, because the hooks'
    arithmetic is linear in the probe's answers.  Everything else (constants,
    :meth:`CostModel.eager_limit`, presets) passes straight through to the
    wrapped model.
    """

    __slots__ = ("base",)

    def __init__(self, base: "CostModel") -> None:
        self.base = base

    def copy_time(self, nbytes: float) -> CostTerms:
        return CostTerms({"copy": self.base.copy_time(nbytes)})

    def reduce_time(self, nbytes: float) -> CostTerms:
        return CostTerms({"reduce": self.base.reduce_time(nbytes)})

    def wire_time(self, nbytes: float) -> CostTerms:
        return CostTerms({"wire": self.base.wire_time(nbytes)})

    def eager_time(self, nbytes: int, total_tasks: int) -> CostTerms:
        return CostTerms({"eager": self.base.eager_time(nbytes, total_tasks)})

    def __getattr__(self, name: str) -> typing.Any:
        return getattr(self.base, name)

    def __repr__(self) -> str:
        return f"<TermProbe over {self.base!r}>"


@dataclass(frozen=True)
class EagerLimitTable:
    """Task-count-dependent eager/rendezvous switch point.

    Mirrors the documented IBM POE ``MP_EAGER_LIMIT`` defaults, which halve
    the limit as the task count grows so that the per-task pool of ``P-1``
    eager buffers stays bounded — exactly the behaviour §2.3 of the paper
    blames for mid-size-message slowdowns at scale.

    ``thresholds`` maps a maximum task count to the eager limit used at or
    below it; task counts beyond the last threshold use ``floor_limit``.
    """

    thresholds: tuple[tuple[int, int], ...] = (
        (16, 32 * KB),
        (32, 16 * KB),
        (64, 8 * KB),
        (128, 4 * KB),
    )
    floor_limit: int = 4 * KB

    def limit_for(self, total_tasks: int) -> int:
        """Eager limit in bytes for a job of ``total_tasks`` tasks."""
        for max_tasks, limit in self.thresholds:
            if total_tasks <= max_tasks:
                return limit
        return self.floor_limit

    @classmethod
    def fixed(cls, limit: int) -> "EagerLimitTable":
        """A task-count-independent limit (MPICH-style)."""
        return cls(thresholds=(), floor_limit=limit)


@dataclass(frozen=True)
class CostModel:
    """All tunable hardware/protocol constants of the simulation."""

    # -- intra-node: shared memory ---------------------------------------
    #: Single-CPU memcpy streaming rate (one POWER3 copying through L2).
    sm_copy_bandwidth: float = 400.0 * MB
    #: Fixed software cost to start one shared-memory copy.
    sm_copy_latency: float = 0.4 * US
    #: Aggregate memory-bus bandwidth of one SMP node (all CPUs + NIC DMA).
    memory_bus_bandwidth: float = 1600.0 * MB
    #: Cost for a process to set a shared-memory flag (store + fence + the
    #: cache-line transfer to the spinning reader).
    flag_set_cost: float = 0.5 * US
    #: Polling granularity: delay between a flag changing and a spinning
    #: process observing the change (a cache-line round trip).
    flag_poll_interval: float = 0.8 * US
    #: Spins on a flag before the process yields its time slice (§2.4:
    #: required so the LAPI threads get CPU cycles).
    spin_yield_threshold: int = 100
    #: Cost of one sched_yield / time-slice donation.
    yield_cost: float = 10.0 * US

    # -- intra-node: computation ------------------------------------------
    #: Streaming rate of applying a reduction operator (sum of doubles),
    #: reading two operands and writing one result.
    reduce_op_bandwidth: float = 300.0 * MB

    # -- inter-node: network / RMA (LAPI over the Colony switch) ----------
    #: One-way network latency for any message (wire + adapters + dispatch).
    net_latency: float = 18.0 * US
    #: Unidirectional sustained NIC bandwidth per node.
    net_bandwidth: float = 350.0 * MB
    #: Origin-side CPU overhead to issue one put/get/active message.
    rma_origin_overhead: float = 2.0 * US
    #: Target-side dispatcher overhead to land one message.
    rma_target_overhead: float = 1.5 * US
    #: Cost of a LAPI counter update (origin, target, or completion).
    counter_update_cost: float = 0.3 * US
    #: Cost of taking an interrupt when data arrives while the target is not
    #: inside a LAPI call and interrupts are enabled (§2.3, "Management of
    #: LAPI Interrupts").
    interrupt_cost: float = 25.0 * US

    # -- MPI point-to-point protocol costs ---------------------------------
    #: Sender-side software overhead per send (descriptor, protocol choice).
    mpi_send_overhead: float = 3.0 * US
    #: Receiver-side overhead per receive: tag matching, queue management.
    mpi_recv_overhead: float = 2.5 * US
    #: Extra overhead when a message arrives before its receive is posted
    #: (unexpected-message queueing — one of the costs SRM avoids, §1).
    mpi_unexpected_overhead: float = 2.0 * US
    #: Wake-up cost charged when a network message completes a receive that
    #: was already blocked: the AIX-era progress engine put blocked
    #: receivers to sleep and woke them by interrupt/timeslice.  SRM's
    #: counter waits poll inside LAPI instead (§2.3) and avoid this — a core
    #: part of the paper's barrier and small-message advantage.
    mpi_blocked_recv_wakeup: float = 30.0 * US
    #: Same, for intra-node (shared-memory transport) messages: the blocked
    #: receiver polls the shm queue for a while before sleeping, so short
    #: waits resume much faster than a network interrupt.
    mpi_shm_wakeup: float = 5.0 * US
    #: Eager/rendezvous switch points as a function of task count.
    eager_limits: EagerLimitTable = field(default_factory=EagerLimitTable)
    #: Per-task memory budget for eager buffers; with P-1 peers the usable
    #: eager limit is also capped by pool_bytes / (P - 1)  (§2.3).
    eager_pool_bytes: int = 1 * MB
    #: Latency of one rendezvous control message (RTS or CTS). Control
    #: messages ride the network latency but are tiny.
    rendezvous_control_cost: float = 1.0 * US

    # -- measurement noise --------------------------------------------------
    #: Mean interval between system-daemon preemptions per node (0 = off).
    daemon_interval: float = 0.0
    #: Duration of one daemon preemption.
    daemon_duration: float = 200.0 * US

    def __post_init__(self) -> None:
        positive_fields = (
            "sm_copy_bandwidth",
            "memory_bus_bandwidth",
            "reduce_op_bandwidth",
            "net_bandwidth",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        nonnegative_fields = (
            "sm_copy_latency",
            "flag_set_cost",
            "flag_poll_interval",
            "yield_cost",
            "net_latency",
            "rma_origin_overhead",
            "rma_target_overhead",
            "counter_update_cost",
            "interrupt_cost",
            "mpi_send_overhead",
            "mpi_recv_overhead",
            "mpi_unexpected_overhead",
            "mpi_blocked_recv_wakeup",
            "mpi_shm_wakeup",
            "rendezvous_control_cost",
            "daemon_interval",
            "daemon_duration",
        )
        for name in nonnegative_fields:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.spin_yield_threshold < 1:
            raise ConfigurationError("spin_yield_threshold must be >= 1")
        if self.eager_pool_bytes < 0:
            raise ConfigurationError("eager_pool_bytes must be >= 0")

    # -- derived quantities -------------------------------------------------

    def eager_limit(self, total_tasks: int) -> int:
        """Effective eager limit: the protocol table capped by pool memory."""
        table_limit = self.eager_limits.limit_for(total_tasks)
        if total_tasks <= 1:
            return table_limit
        pool_limit = self.eager_pool_bytes // (total_tasks - 1)
        return min(table_limit, pool_limit)

    def copy_time(self, nbytes: int) -> float:
        """Uncontended duration of one shared-memory copy of ``nbytes``."""
        return self.sm_copy_latency + nbytes / self.sm_copy_bandwidth

    def reduce_time(self, nbytes: int) -> float:
        """Uncontended duration of applying a reduce op over ``nbytes``."""
        return self.sm_copy_latency + nbytes / self.reduce_op_bandwidth

    def wire_time(self, nbytes: int) -> float:
        """Uncontended duration of one network message of ``nbytes``."""
        return self.net_latency + nbytes / self.net_bandwidth

    def eager_time(self, nbytes: int, total_tasks: int) -> float:
        """The §2.3 eager/rendezvous protocol penalty for one MPI message.

        Zero while the payload fits the task-count-dependent eager limit;
        beyond it, the message pays the RTS/CTS rendezvous round trip (two
        control messages, each riding the network latency).  Analytic cost
        hooks for MPI-flavoured variants charge this through
        :meth:`TermProbe.eager_time` so calibration can attribute drift to
        the ``eager`` term separately from raw ``wire`` time.
        """
        if nbytes <= self.eager_limit(total_tasks):
            return 0.0
        return 2 * (self.rendezvous_control_cost + self.net_latency)

    def probe(self) -> TermProbe:
        """A :class:`TermProbe` over this model: time queries answer in
        :class:`CostTerms`, so any cost hook evaluated against the probe
        yields its per-term breakdown (see ``repro.core.dispatch.predict_terms``)."""
        return TermProbe(self)

    def evolve(self, **changes: typing.Any) -> "CostModel":
        """Return a copy with ``changes`` applied (for ablations/sweeps)."""
        return replace(self, **changes)

    # -- presets --------------------------------------------------------------

    @classmethod
    def ibm_sp_colony(cls) -> "CostModel":
        """The paper's platform: IBM SP, 16-way nodes, Colony switch."""
        return cls()

    @classmethod
    def commodity_cluster(cls) -> "CostModel":
        """A 2003-era commodity Linux cluster: faster CPUs/memory than the
        Nighthawk node, but higher-latency lower-bandwidth interconnect
        (Myrinet/VIA class) — the environment of the authors' earlier
        barrier paper [17]."""
        return cls(
            sm_copy_bandwidth=800.0 * MB,
            memory_bus_bandwidth=2400.0 * MB,
            reduce_op_bandwidth=600.0 * MB,
            net_latency=30.0 * US,
            net_bandwidth=150.0 * MB,
            interrupt_cost=35.0 * US,
        )

    @classmethod
    def fat_smp(cls) -> "CostModel":
        """A large shared-memory server (HP Superdome / Sun Fire class, §1):
        more memory bandwidth, slower relative network."""
        return cls(
            memory_bus_bandwidth=6400.0 * MB,
            sm_copy_bandwidth=600.0 * MB,
            net_latency=22.0 * US,
            net_bandwidth=250.0 * MB,
        )
