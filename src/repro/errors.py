"""Exception hierarchy for the SRM reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for violations of the discrete-event simulation protocol.

    Examples: a process yields something that is not an Event, an event is
    triggered twice, or the engine is asked to run backwards in time.
    """


class ConfigurationError(ReproError):
    """Raised for invalid machine, cost-model, or algorithm configuration."""


class TopologyError(ConfigurationError):
    """Raised for invalid cluster shapes (e.g. zero nodes, bad rank)."""


class ProtocolError(ReproError):
    """Raised when a communication substrate is used incorrectly.

    Examples: a LAPI put into a buffer that was never registered, an MPI
    receive into a buffer smaller than the matched message, a shared-memory
    flag wait that can never be satisfied.
    """


class TruncationError(ProtocolError):
    """Raised when a received message is larger than the posted buffer."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    The message names every still-blocked process and the event each one is
    waiting on, so schedule-exploration failures are diagnosable from the
    exception alone.
    """


class VerificationError(ReproError):
    """Raised by the verification harness (:mod:`repro.verify`).

    Covers strict-mode invariant violations (a protocol rule observably
    broken during a run) and harness misconfiguration (unknown mutation or
    explorer names).
    """
