"""Double-buffer structures for pipelined shared-memory protocols.

The SRM broadcast (paper §2.2, Fig. 3) uses **one pair of shared buffers per
node** (A and B) and **two banks of per-process READY flags** — one bank per
buffer.  The root fills a buffer, sets the READY flags of every other task;
each task copies the data out and clears *its own* flag; the root may refill
a buffer only once every flag for that buffer is clear again.  Consecutive
operations (and pipeline chunks) alternate between the two buffers so the
root's fill of one buffer overlaps the readers' drains of the other.

:class:`DoubleBuffer` packages exactly that: two data regions carved from a
:class:`~repro.shmem.segment.SharedSegment` plus two
:class:`~repro.shmem.flags.FlagArray` banks, and an alternation cursor that
persists across calls (the paper alternates buffers between *consecutive
broadcast operations* too, "to improve concurrency").
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ProtocolError
from repro.shmem.flags import FlagArray
from repro.shmem.segment import SharedSegment

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Node

__all__ = ["DoubleBuffer"]


class DoubleBuffer:
    """Two shared data buffers + per-task READY flag banks on one node."""

    def __init__(
        self,
        node: "Node",
        buffer_bytes: int,
        flags_per_buffer: int,
        name: str = "dbuf",
    ) -> None:
        if buffer_bytes < 1:
            raise ProtocolError(f"buffer size must be >= 1 B, got {buffer_bytes}")
        self.node = node
        self.buffer_bytes = buffer_bytes
        self.name = name
        segment = SharedSegment(node, 2 * buffer_bytes + 256, name=f"{name}-seg")
        self.buffers: tuple[np.ndarray, np.ndarray] = (
            segment.allocate(buffer_bytes),
            segment.allocate(buffer_bytes),
        )
        self.ready: tuple[FlagArray, FlagArray] = (
            FlagArray(node, flags_per_buffer, name=f"{name}-readyA", kind="ready"),
            FlagArray(node, flags_per_buffer, name=f"{name}-readyB", kind="ready"),
        )
        #: Number of buffer selections made so far; parity picks A or B.
        self.cursor = 0
        self.engine = node.machine.engine

    def next_slot(self) -> int:
        """Advance the alternation cursor and return the chosen slot (0/1)."""
        slot = self.cursor % 2
        self.cursor += 1
        return slot

    def peek_slot(self) -> int:
        """The slot the next :meth:`next_slot` call would return."""
        return self.cursor % 2

    def data(self, slot: int, nbytes: int) -> np.ndarray:
        """A view of the first ``nbytes`` of buffer ``slot``."""
        if slot not in (0, 1):
            raise ProtocolError(f"slot must be 0 or 1, got {slot}")
        if nbytes > self.buffer_bytes:
            raise ProtocolError(
                f"{nbytes} B does not fit the {self.buffer_bytes} B shared buffer"
            )
        return self.buffers[slot][:nbytes]

    def flags(self, slot: int) -> FlagArray:
        """The READY flag bank guarding buffer ``slot``."""
        if slot not in (0, 1):
            raise ProtocolError(f"slot must be 0 or 1, got {slot}")
        return self.ready[slot]

    # -- verification checkpoints -------------------------------------------
    #
    # Protocol code announces its intent just before touching a buffer; the
    # attached verifier (if any) checks the READY bank agrees.  Both calls
    # are single-attribute-test no-ops when verification is off.

    def check_fill(self, slot: int, writer_index: int | None = None) -> None:
        """About to (over)write buffer ``slot``: every reader's READY flag
        must be clear, else an in-use pipeline buffer is being clobbered."""
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_buffer_fill(self, slot, writer_index)

    def check_drain(self, slot: int, reader_index: int) -> None:
        """About to read buffer ``slot`` as reader ``reader_index``: that
        reader's READY flag must be set, else this is a read-before-ready."""
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_buffer_drain(self, slot, reader_index)

    def __repr__(self) -> str:
        return (
            f"<DoubleBuffer {self.name!r} node={self.node.index} "
            f"2x{self.buffer_bytes} B cursor={self.cursor}>"
        )
