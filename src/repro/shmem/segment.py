"""Shared-memory segments on an SMP node.

A :class:`SharedSegment` is a region of node memory visible to every task on
the node — the simulated analogue of a System-V/POSIX shared segment.  It is
backed by one real NumPy byte array; protocols carve typed views out of it,
so a timed copy into a view is immediately visible to every other task on the
node (the property SRM exploits to avoid re-copies, paper §2.4).

Remote (LAPI) puts also target views of these segments or of user buffers;
see :mod:`repro.lapi`.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ProtocolError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Node

__all__ = ["SharedSegment"]


class SharedSegment:
    """A named, byte-addressable shared region on one node."""

    def __init__(self, node: "Node", nbytes: int, name: str = "segment") -> None:
        if nbytes < 0:
            raise ProtocolError(f"segment size must be >= 0, got {nbytes}")
        self.node = node
        self.name = name
        self._data = np.zeros(nbytes, dtype=np.uint8)
        self._allocated = 0

    @property
    def nbytes(self) -> int:
        """Total capacity of the segment."""
        return self._data.nbytes

    @property
    def remaining(self) -> int:
        """Bytes not yet handed out by :meth:`allocate`."""
        return self.nbytes - self._allocated

    def allocate(self, nbytes: int, dtype: typing.Any = np.uint8) -> np.ndarray:
        """Carve the next ``nbytes`` out of the segment as a ``dtype`` view.

        Allocations are 64-byte aligned so that independently-allocated flags
        land on distinct cache lines (paper §2.2, shared-memory barrier).
        """
        aligned_start = (self._allocated + 63) & ~63
        if aligned_start + nbytes > self.nbytes:
            raise ProtocolError(
                f"segment {self.name!r} exhausted: need {nbytes} B at offset "
                f"{aligned_start}, capacity {self.nbytes} B"
            )
        view = self._data[aligned_start : aligned_start + nbytes].view(dtype)
        self._allocated = aligned_start + nbytes
        return view

    def view(self, offset: int, nbytes: int, dtype: typing.Any = np.uint8) -> np.ndarray:
        """A typed window at an explicit offset (for RMA-style addressing)."""
        if offset < 0 or offset + nbytes > self.nbytes:
            raise ProtocolError(
                f"view [{offset}, {offset + nbytes}) outside segment of {self.nbytes} B"
            )
        return self._data[offset : offset + nbytes].view(dtype)

    def __repr__(self) -> str:
        return (
            f"<SharedSegment {self.name!r} node={self.node.index} "
            f"{self._allocated}/{self.nbytes} B used>"
        )
