"""Shared-memory synchronization flags with a spin/yield cost model.

The paper's SMP protocols coordinate through flags in shared memory — one
READY flag per process per broadcast buffer (§2.2, Fig. 3), one check-in flag
per process for the barrier.  Waiting is *spinning*, and §2.4 adds the twist
that after a bounded number of unsuccessful spins a process must yield its
time slice so the LAPI threads can run.

The cost model here:

* **setting** a flag costs :attr:`CostModel.flag_set_cost` (store + fence);
* a waiter whose condition is already true pays one
  :attr:`CostModel.flag_poll_interval` to observe it;
* a waiter that blocked and was satisfied within
  ``spin_yield_threshold × flag_poll_interval`` pays one poll interval of
  detection delay (it was spinning when the flag flipped);
* a waiter that blocked longer has yielded the CPU: it pays
  :attr:`CostModel.yield_cost` of wake-up delay instead, and the yield is
  counted in :class:`~repro.machine.cluster.TaskStats` (this is what makes
  "spin forever" configurations measurably bad, the effect §2.4 describes).

Flags are single-writer in all SRM protocols (each flag has a well-defined
owner for each phase), so observing the value after the wake-up event is
race-free; the implementation still re-checks the predicate for safety.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.obs.taxonomy import FLAG_SET, FLAG_WAIT, FLOW_FLAG_WAKEUP
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Node, Task

__all__ = ["SharedFlag", "FlagArray"]

Predicate = typing.Callable[[int], bool]


class SharedFlag:
    """One integer flag in node shared memory (its own cache line).

    ``kind`` declares the flag's synchronization discipline so the
    verification harness (:mod:`repro.verify`) can apply the matching
    invariant checker; it is purely declarative and free when no verifier
    is attached to the engine:

    * ``"ready"`` — a READY handshake flag (0 = free, 1 = data available);
      the writer may only set 0→1 and the reader may only clear 1→0.
    * ``"checkin"`` — a barrier check-in flag with the same 0/1 pairing.
    * ``"sequence"`` — a cumulative chunk counter; values must be monotone
      non-decreasing.
    * ``None`` — no declared discipline (no checks).
    """

    def __init__(
        self,
        node: "Node",
        initial: int = 0,
        name: str | None = None,
        kind: str | None = None,
    ) -> None:
        self.node = node
        self.engine = node.machine.engine
        self.cost = node.machine.cost
        self.obs = node.machine.obs
        self.name = name
        self.kind = kind
        self._value = int(initial)
        self._waiters: list[tuple[Predicate, Event, int | None]] = []

    @property
    def value(self) -> int:
        """Current flag value (reading is free; waiting is not)."""
        return self._value

    # -- writer side --------------------------------------------------------

    def set(self, task: "Task", value: int) -> ProcessGenerator:
        """Timed store of ``value`` by ``task`` (``yield from``)."""
        if task.node is not self.node:
            raise ProtocolError(
                f"task {task.rank} on node {task.node.index} cannot touch flag "
                f"on node {self.node.index}: flags are node-local shared memory"
            )
        with task.phase(FLAG_SET):
            yield self.engine.timeout(self.cost.flag_set_cost)
        self.obs.flag_sets.inc()
        self.store(value, writer_rank=task.rank)

    def store(self, value: int, writer_rank: int | None = None) -> None:
        """Untimed store — used when the cost is accounted elsewhere (e.g. a
        LAPI put that lands data and flips a flag in one DMA).

        ``writer_rank`` attributes the resulting waiter wakeups to the
        storing task in the recorded flow links.
        """
        verifier = self.engine.verifier
        if verifier is not None:
            verifier.on_flag_store(self, self._value, int(value), writer_rank)
        self._value = int(value)
        if not self._waiters:
            return
        now = self.engine.now
        waiters = self._waiters
        faults = self.engine.faults
        if faults is not None:
            # Fault injection: release satisfied waiters in a perturbed
            # order (changes resume scheduling order, not who is released).
            waiters = faults.reorder_wakeups(waiters)
        still_waiting: list[tuple[Predicate, Event, int | None]] = []
        for predicate, event, waiter_rank in waiters:
            if predicate(self._value):
                event.succeed(self._value)
                if writer_rank is not None and waiter_rank is not None:
                    self.obs.flow(
                        FLOW_FLAG_WAKEUP,
                        writer_rank,
                        now,
                        waiter_rank,
                        now,
                        detail=self.name or "",
                    )
            else:
                still_waiting.append((predicate, event, waiter_rank))
        self._waiters = still_waiting

    # -- waiter side ---------------------------------------------------------

    def _event_when(self, predicate: Predicate, waiter_rank: int | None = None) -> Event | None:
        """Internal: event firing when ``predicate(value)`` becomes true, or
        ``None`` if it is already true.  No detection cost included."""
        if predicate(self._value):
            return None
        event = Event(self.engine, name=f"flag:{self.name}")
        self._waiters.append((predicate, event, waiter_rank))
        return event

    def wait_for(self, task: "Task", predicate: Predicate) -> ProcessGenerator:
        """Spin until ``predicate(value)`` holds; returns the observed value."""
        if task.node is not self.node:
            raise ProtocolError(
                f"task {task.rank} cannot spin on a flag of node {self.node.index}"
            )
        start = self.engine.now
        with task.phase(FLAG_WAIT):
            pending = self._event_when(predicate, waiter_rank=task.rank)
            if pending is not None:
                yield pending
            yield self.engine.timeout(self._detection_delay(task, start))
        self.obs.flag_wait_seconds.observe(self.engine.now - start)
        if not predicate(self._value):  # pragma: no cover - single-writer protocols
            raise ProtocolError(f"flag {self.name!r} changed under a waiter")
        return self._value

    def wait_value(self, task: "Task", value: int) -> ProcessGenerator:
        """Spin until the flag equals ``value``."""
        result = yield from self.wait_for(task, lambda v: v == value)
        return result

    def _detection_delay(self, task: "Task", wait_start: float) -> float:
        waited = self.engine.now - wait_start
        spin_window = self.cost.spin_yield_threshold * self.cost.flag_poll_interval
        if waited > spin_window:
            task.stats.yields += 1
            self.obs.yields.inc()
            return self.cost.yield_cost
        return self.cost.flag_poll_interval

    def __repr__(self) -> str:
        return f"<SharedFlag {self.name!r}={self._value} node={self.node.index}>"


class FlagArray:
    """A bank of per-task flags, each on its own cache line (paper §2.2)."""

    def __init__(
        self,
        node: "Node",
        count: int,
        initial: int = 0,
        name: str = "flags",
        kind: str | None = None,
    ) -> None:
        if count < 1:
            raise ProtocolError(f"FlagArray needs >= 1 flag, got {count}")
        self.node = node
        self.engine = node.machine.engine
        self.cost = node.machine.cost
        self.name = name
        self.kind = kind
        self.flags = [
            SharedFlag(node, initial, name=f"{name}[{i}]", kind=kind) for i in range(count)
        ]

    def __len__(self) -> int:
        return len(self.flags)

    def __getitem__(self, index: int) -> SharedFlag:
        return self.flags[index]

    def values(self) -> list[int]:
        """Snapshot of all flag values."""
        return [flag.value for flag in self.flags]

    def set_all(self, task: "Task", value: int, skip: int | None = None) -> ProcessGenerator:
        """Timed store of ``value`` into every flag (optionally skipping one).

        This is the barrier master's "reset the value of flags for all the
        other processes" step (§2.2): the master pays one store per flag.
        """
        indices = [i for i in range(len(self.flags)) if i != skip]
        with task.phase(FLAG_SET):
            yield task.engine.timeout(self.cost.flag_set_cost * len(indices))
        self.node.machine.obs.flag_sets.inc(len(indices))
        for index in indices:
            self.flags[index].store(value, writer_rank=task.rank)

    def wait_all(self, task: "Task", predicate: Predicate, skip: int | None = None) -> ProcessGenerator:
        """Spin until ``predicate`` holds on every flag (optionally skip one).

        Models the barrier master polling the whole flag bank: one detection
        delay total once the last flag satisfies the predicate.
        """
        start = self.engine.now
        with task.phase(FLAG_WAIT):
            pending = [
                event
                for index, flag in enumerate(self.flags)
                if index != skip
                for event in [flag._event_when(predicate, waiter_rank=task.rank)]
                if event is not None
            ]
            if pending:
                yield self.engine.all_of(pending)
            # Reuse the single-flag detection model for the final observation.
            yield self.engine.timeout(self.flags[0]._detection_delay(task, start))
        self.node.machine.obs.flag_wait_seconds.observe(self.engine.now - start)
