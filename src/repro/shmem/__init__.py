"""Shared-memory substrate: segments, flags, and double buffers.

The intra-node half of the SRM protocols (paper §2.2): real NumPy-backed
shared regions, spin/yield-costed synchronization flags, and the two-buffer
pipelining structure of Fig. 3.
"""

from repro.shmem.buffers import DoubleBuffer
from repro.shmem.flags import FlagArray, SharedFlag
from repro.shmem.segment import SharedSegment

__all__ = ["SharedSegment", "SharedFlag", "FlagArray", "DoubleBuffer"]
