"""Runtime protocol invariant checkers for the SRM synchronization layers.

A :class:`Verifier` attaches to an engine (``engine.verifier = Verifier()``)
and receives callbacks from the shared-memory and LAPI substrates at every
synchronization-relevant state change.  The hook sites are pre-wired in
:mod:`repro.shmem.flags`, :mod:`repro.shmem.buffers` and
:mod:`repro.lapi.counters`; each is a single ``is None`` attribute test when
no verifier is attached, so the default simulation path stays byte-identical.

The invariants encode the paper's hand-reasoned safety arguments:

==============================  ============================================
rule                            paper argument it mechanizes
==============================  ============================================
``flag-double-set``             READY/check-in flags are 0/1 handshakes with
``flag-redundant-clear``        one writer per phase (§2.2, Fig. 3): setting
                                an already-set flag means a buffer was
                                announced while a reader still held it;
                                clearing a clear flag means a reader drained
                                a slot it never owned.
``flag-nonbinary``              a READY/check-in flag only ever holds 0 or 1.
``sequence-decrease``           cumulative chunk-sequence flags are monotone
                                non-decreasing (the tree-relay and reduce
                                pipelines count chunks, never rewind).
``counter-decrease``            LAPI counters only move backwards through
                                explicit ``Setcntr``/``Waitcntr`` consume;
                                an increment may never lower the value.
``counter-reset-under-waiters``  resetting a counter below threshold while
                                processes wait on it can strand them (the
                                Fig. 4 flow control never does this).
``counter-over-consume``        ``Waitcntr`` consuming more than the counter
                                holds would drive it negative.
``buffer-overwrite-in-use``     the root may refill a pipeline buffer only
                                once every READY flag for it is clear (§2.2:
                                "check/wait on all the flags ... make sure
                                the buffer is free for reuse").
``read-before-ready``           a reader may copy a buffer out only after its
                                own READY flag was set for that slot.
==============================  ============================================

Violations are recorded (and optionally raised, ``strict=True``) with the
simulated timestamp, the subject's name, and a human-readable description.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import VerificationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.lapi.counters import LapiCounter
    from repro.shmem.buffers import DoubleBuffer
    from repro.shmem.flags import SharedFlag

__all__ = ["Violation", "Verifier"]

#: Flag kinds that follow the binary READY/check-in handshake discipline.
_HANDSHAKE_KINDS = frozenset({"ready", "checkin"})


@dataclasses.dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    rule: str
    subject: str
    time: float
    detail: str

    def as_dict(self) -> dict[str, typing.Any]:
        """JSON-ready representation (used by the verify report)."""
        return {
            "rule": self.rule,
            "subject": self.subject,
            "time": self.time,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject} @t={self.time:.6g}: {self.detail}"


class Verifier:
    """Collects (or raises on) protocol invariant violations.

    Parameters
    ----------
    strict:
        When true, the first violation raises :class:`VerificationError`
        at the exact simulated moment it occurs — useful in unit tests to
        get a traceback through the offending protocol code.
    max_violations:
        Recording cap; once reached further violations are counted in
        :attr:`dropped` but not stored (a badly mutated protocol can
        otherwise produce one violation per chunk per rank).
    counter:
        Optional metrics counter (``.inc()``-able, e.g. from
        :class:`repro.obs.metrics.MetricsRegistry`) bumped per violation.
    """

    def __init__(
        self,
        strict: bool = False,
        max_violations: int = 1000,
        counter: typing.Any = None,
    ) -> None:
        self.strict = strict
        self.max_violations = int(max_violations)
        self.counter = counter
        self.violations: list[Violation] = []
        self.dropped = 0

    # -- bookkeeping ---------------------------------------------------------

    def reset(self) -> None:
        """Clear recorded violations (the attached counter is not rewound)."""
        self.violations = []
        self.dropped = 0

    @property
    def clean(self) -> bool:
        """True when no violation has been observed."""
        return not self.violations and not self.dropped

    def _record(self, rule: str, subject: typing.Any, detail: str) -> None:
        violation = Violation(
            rule=rule,
            subject=getattr(subject, "name", None) or repr(subject),
            time=float(subject.engine.now),
            detail=detail,
        )
        if self.counter is not None:
            self.counter.inc()
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
        else:
            self.violations.append(violation)
        if self.strict:
            raise VerificationError(str(violation))

    # -- shared-memory flag hooks ---------------------------------------------

    def on_flag_store(
        self,
        flag: "SharedFlag",
        old: int,
        new: int,
        writer_rank: int | None,
    ) -> None:
        """Called by :meth:`SharedFlag.store` before the value changes."""
        kind = flag.kind
        if kind is None:
            return
        writer = f"rank {writer_rank}" if writer_rank is not None else "an untimed store"
        if kind in _HANDSHAKE_KINDS:
            if new not in (0, 1):
                self._record(
                    "flag-nonbinary",
                    flag,
                    f"{writer} stored {new} into a {kind} handshake flag",
                )
            elif old == 1 and new == 1:
                self._record(
                    "flag-double-set",
                    flag,
                    f"{writer} set a {kind} flag that was already set — the "
                    f"guarded buffer is still held by its reader",
                )
            elif old == 0 and new == 0:
                self._record(
                    "flag-redundant-clear",
                    flag,
                    f"{writer} cleared a {kind} flag that was already clear — "
                    f"a drain finished on a slot it never owned",
                )
        elif kind == "sequence":
            if new < old:
                self._record(
                    "sequence-decrease",
                    flag,
                    f"{writer} rewound a cumulative sequence flag {old} -> {new}",
                )

    # -- LAPI counter hooks ----------------------------------------------------

    def on_counter_increment(self, counter: "LapiCounter", old: int, new: int) -> None:
        """Called by :meth:`LapiCounter.increment` before the update."""
        if new <= old:
            self._record(
                "counter-decrease",
                counter,
                f"increment moved the counter {old} -> {new}",
            )

    def on_counter_set(
        self, counter: "LapiCounter", old: int, new: int, waiters: int
    ) -> None:
        """Called by :meth:`LapiCounter.set` before the overwrite."""
        if new < old and waiters > 0:
            self._record(
                "counter-reset-under-waiters",
                counter,
                f"Setcntr lowered the value {old} -> {new} while {waiters} "
                f"waiter(s) were blocked on it",
            )

    def on_counter_consume(self, counter: "LapiCounter", value: int, amount: int) -> None:
        """Called by :meth:`LapiCounter.consume` before the subtraction."""
        if amount > value:
            self._record(
                "counter-over-consume",
                counter,
                f"Waitcntr consumed {amount} from a counter holding {value}",
            )

    # -- pipeline buffer hooks --------------------------------------------------

    def on_buffer_fill(
        self, dbuf: "DoubleBuffer", slot: int, writer_index: int | None
    ) -> None:
        """Called by :meth:`DoubleBuffer.check_fill` just before a (re)fill."""
        held = [
            index
            for index, flag in enumerate(dbuf.flags(slot).flags)
            if index != writer_index and flag.value != 0
        ]
        if held:
            self._record(
                "buffer-overwrite-in-use",
                dbuf,
                f"slot {slot} refilled while reader index(es) {held} still "
                f"hold READY — in-flight data would be clobbered",
            )

    def on_buffer_drain(self, dbuf: "DoubleBuffer", slot: int, reader_index: int) -> None:
        """Called by :meth:`DoubleBuffer.check_drain` just before a copy-out."""
        if dbuf.flags(slot)[reader_index].value != 1:
            self._record(
                "read-before-ready",
                dbuf,
                f"reader index {reader_index} drained slot {slot} while its "
                f"READY flag was clear — read-before-ready",
            )

    def __repr__(self) -> str:
        return (
            f"<Verifier violations={len(self.violations)} dropped={self.dropped} "
            f"strict={self.strict}>"
        )
