"""Deterministic fault injection for schedule exploration.

A :class:`FaultPlan` attaches to an engine (``engine.faults = FaultPlan(...)``)
and perturbs *timing*, never *data*: every fault models a legal hardware or
OS behaviour the paper's protocols must tolerate —

* **put-delay jitter** (§2.3): the LAPI dispatcher delivers a put late, as
  when the completion handler runs behind other traffic;
* **reordered flag wakeups** (§2.4): after a flag store, satisfied spinners
  resume in an arbitrary order — the SMP hardware does not promise FIFO;
* **master stalls** (§4, "processor late arrivals and delays"): a node
  master enters the collective late, as when a daemon preempted it.

Faults are driven by a private seeded :class:`random.Random`, so a
``(plan seed, scheduler)`` pair replays exactly.  Like the verifier hooks,
every injection site is a single ``is None`` test when no plan is attached.
"""

from __future__ import annotations

import random
import typing

__all__ = ["FaultPlan"]


class FaultPlan:
    """Seeded timing perturbations injected into the substrates.

    Parameters
    ----------
    seed:
        Seed for the private RNG; two plans with equal parameters and seed
        inject identical faults.
    put_jitter_probability / put_jitter_max:
        Each LAPI put delivery is delayed by ``U(0, put_jitter_max)`` seconds
        with the given probability.
    reorder_probability:
        Each flag store shuffles the wakeup order of its satisfied waiters
        with the given probability.
    master_stall_probability / master_stall_max:
        Each rank's program start is delayed by ``U(0, master_stall_max)``
        seconds with the given probability (node masters and workers alike —
        a late master is simply the most damaging case).
    """

    def __init__(
        self,
        seed: int = 0,
        put_jitter_probability: float = 0.25,
        put_jitter_max: float = 5e-6,
        reorder_probability: float = 0.25,
        master_stall_probability: float = 0.25,
        master_stall_max: float = 20e-6,
    ) -> None:
        self.seed = int(seed)
        self.put_jitter_probability = float(put_jitter_probability)
        self.put_jitter_max = float(put_jitter_max)
        self.reorder_probability = float(reorder_probability)
        self.master_stall_probability = float(master_stall_probability)
        self.master_stall_max = float(master_stall_max)
        self.rng = random.Random(self.seed)
        #: Injection counts, keyed by fault family (reported per schedule).
        self.injected: dict[str, int] = {"put_jitter": 0, "wakeup_reorder": 0, "master_stall": 0}

    def reset(self) -> None:
        """Rewind the RNG and the injection counters for a fresh run."""
        self.rng = random.Random(self.seed)
        self.injected = {"put_jitter": 0, "wakeup_reorder": 0, "master_stall": 0}

    # -- injection sites -------------------------------------------------------

    def put_jitter(self) -> float:
        """Delay (seconds, possibly 0) to add to one put delivery."""
        if self.put_jitter_max <= 0.0 or self.rng.random() >= self.put_jitter_probability:
            return 0.0
        self.injected["put_jitter"] += 1
        return self.rng.uniform(0.0, self.put_jitter_max)

    def reorder_wakeups(self, waiters: list) -> list:
        """Possibly-shuffled copy of a flag's waiter list (never mutates)."""
        if len(waiters) < 2 or self.rng.random() >= self.reorder_probability:
            return waiters
        self.injected["wakeup_reorder"] += 1
        shuffled = list(waiters)
        self.rng.shuffle(shuffled)
        return shuffled

    def master_stall(self) -> float:
        """Delay (seconds, possibly 0) before one rank enters the collective."""
        if self.master_stall_max <= 0.0 or self.rng.random() >= self.master_stall_probability:
            return 0.0
        self.injected["master_stall"] += 1
        return self.rng.uniform(0.0, self.master_stall_max)

    def __repr__(self) -> str:
        return f"<FaultPlan seed={self.seed} injected={self.injected}>"
