"""Schema-versioned JSON reports for ``python -m repro verify``.

The report wraps the body produced by :mod:`repro.verify.runner` with the
same envelope conventions the benchmark snapshots use: a schema name, a
version, and sorted-key serialization so identical runs are byte-identical
(report diffs then show real behaviour changes, never dict-order noise).
"""

from __future__ import annotations

import json
import sys
import typing

from repro.errors import VerificationError

__all__ = ["REPORT_SCHEMA", "SCHEMA_VERSION", "build_report", "write_report", "load_report"]

#: Schema identifier stored in every report.
REPORT_SCHEMA = "repro-verify-report"

#: Bump on any incompatible change to the report layout.
#: v2: cell entries carry the ``overlap`` in-flight-collective mode.
SCHEMA_VERSION = 2

#: Top-level keys every report carries (the golden-report test pins these).
ENVELOPE_KEYS = ("schema", "schema_version", "label", "body")

#: Keys every ``verify``-mode body carries.
VERIFY_BODY_KEYS = (
    "mode",
    "explorer",
    "seed",
    "faults",
    "schedules_per_cell",
    "cells",
    "totals",
    "ok",
)

#: Keys every cell entry carries.
CELL_KEYS = (
    "cell",
    "nodes",
    "procs",
    "operation",
    "regime",
    "nbytes",
    "overlap",
    "explorer",
    "reference_digest",
    "reference_error",
    "schedules_explored",
    "distinct_signatures",
    "errors",
    "divergences",
    "violations",
    "violation_count",
    "faults_injected",
    "ok",
)


def build_report(body: dict[str, typing.Any], label: str = "head") -> dict[str, typing.Any]:
    """Wrap a runner body in the versioned envelope."""
    return {
        "schema": REPORT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "body": body,
    }


def write_report(path: str, report: dict[str, typing.Any]) -> None:
    """Serialize ``report`` to ``path`` (``-`` = stdout), byte-stably."""
    text = json.dumps(report, indent=1, sort_keys=True)
    if path == "-":
        sys.stdout.write(text + "\n")
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def load_report(path: str) -> dict[str, typing.Any]:
    """Load and envelope-check a report written by :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != REPORT_SCHEMA:
        raise VerificationError(
            f"{path}: schema {report.get('schema')!r} is not {REPORT_SCHEMA!r}"
        )
    if report.get("schema_version") != SCHEMA_VERSION:
        raise VerificationError(
            f"{path}: schema version {report.get('schema_version')!r} "
            f"is not {SCHEMA_VERSION}"
        )
    return report
