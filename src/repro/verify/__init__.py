"""Schedule-exploration verification harness for the SRM collectives.

The paper's correctness story rests on hand-reasoned synchronization —
per-process READY flags with spin/yield waits (Fig. 2-3), two-buffer
pipelining, and LAPI completion counters guarding remote puts (Fig. 4).  The
simulator normally executes exactly **one** interleaving per run; this
package checks the protocols under *many*:

* :mod:`repro.verify.invariants` — runtime protocol invariant checkers
  hooked into the shared-memory and LAPI layers (read-before-READY,
  in-use-buffer overwrite, flag pairing, counter monotonicity);
* :mod:`repro.verify.faults` — deterministic fault injection (put-delay
  jitter, reordered flag wakeups, stalled node masters);
* :mod:`repro.verify.explorer` — schedule exploration drivers over the
  pluggable engine tie-break scheduler (seeded-random and bounded-DFS);
* :mod:`repro.verify.mutations` — mutation smoke: flip one known
  synchronization line and prove the detectors fire;
* :mod:`repro.verify.runner` — the end-to-end grid (``python -m repro
  verify``): every collective's result must be byte-invariant across all
  explored schedules, with zero invariant violations on clean code.
"""

from repro.verify.explorer import ScheduleOutcome, dfs_choice_sequences, explore_cell
from repro.verify.faults import FaultPlan
from repro.verify.invariants import Verifier, Violation
from repro.verify.mutations import MUTATIONS, apply_mutation
from repro.verify.report import (
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    build_report,
    load_report,
    write_report,
)
from repro.verify.runner import (
    Cell,
    default_grid,
    quick_grid,
    run_mutation_smoke,
    run_verify,
)

__all__ = [
    "Verifier",
    "Violation",
    "FaultPlan",
    "ScheduleOutcome",
    "explore_cell",
    "dfs_choice_sequences",
    "MUTATIONS",
    "apply_mutation",
    "Cell",
    "default_grid",
    "quick_grid",
    "run_verify",
    "run_mutation_smoke",
    "REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "build_report",
    "load_report",
    "write_report",
]
