"""Mutation smoke: prove the detectors detect.

A verification harness that never fires is indistinguishable from one that
works.  Each mutation here re-introduces a classic synchronization bug into
the *live* protocol code (by patching a substrate class method for the
duration of a ``with`` block) and the smoke runner then asserts the harness
reports it:

* ``skip-ready-wait`` — a reader copies a pipeline buffer out **without**
  waiting for its READY flag (dropping the ``while !flag`` spin of Fig. 3).
  Detected by the ``read-before-ready`` buffer invariant (and usually a
  trailing ``flag-redundant-clear``).
* ``skip-ready-set`` — the buffer owner forgets to set one reader's READY
  flag (an off-by-one in the "set the flags of all other processes" loop of
  §2.2).  That reader spins forever: detected as a deadlock, with the
  blocked process named in the :class:`~repro.errors.DeadlockError`.
* ``alias-invocation-slot`` — the request layer's two overlap defenses are
  both dropped at once: sequence-window reservation stops advancing the
  cursor (every ``start()`` hands out the *same* slot window) and the
  per-rank started-order chain gate is skipped.  Harmless for blocking
  programs; with two invocations of one plan in flight the aliased slot is
  refilled while readers still hold it.  Detected on an overlap cell by the
  buffer invariants (overwrite-in-use / read-before-ready) or a deadlock.
* ``stale-compiled-schedule`` — ``PersistentCollective.invalidate`` becomes
  a no-op, so ``rebind()`` leaves the compiled-schedule replay cache
  (:mod:`repro.core.replay`) holding traces whose op tapes view the old
  buffers.  Post-rebind windows then hit the stale trace and move data into
  arrays nobody reads.  Detected on the ``replay-rebind`` verify cell by
  ``result-mismatch`` (the rebound buffers never receive the payload).

Patches target the **class methods** (``SharedFlag.wait_value``,
``FlagArray.set_all``) rather than module globals, so every call site —
including ``from ... import``-ed aliases — sees the mutant.  Both mutants
fire only on ``kind == "ready"`` flags, leaving barrier check-in and
sequence flags honest.
"""

from __future__ import annotations

import contextlib
import typing

from repro.errors import VerificationError
from repro.obs.taxonomy import FLAG_SET
from repro.shmem.flags import FlagArray, SharedFlag

__all__ = ["MUTATIONS", "apply_mutation"]


@contextlib.contextmanager
def _skip_ready_wait() -> typing.Iterator[None]:
    original = SharedFlag.wait_value

    def mutated(self: SharedFlag, task: typing.Any, value: int) -> typing.Any:
        if self.kind == "ready" and value == 1:
            # The bug: proceed straight to the copy, never spin.
            return self._value
            yield  # pragma: no cover - keeps this a generator function
        result = yield from original(self, task, value)
        return result

    SharedFlag.wait_value = mutated  # type: ignore[method-assign]
    try:
        yield
    finally:
        SharedFlag.wait_value = original  # type: ignore[method-assign]


@contextlib.contextmanager
def _skip_ready_set() -> typing.Iterator[None]:
    original = FlagArray.set_all

    def mutated(
        self: FlagArray, task: typing.Any, value: int, skip: int | None = None
    ) -> typing.Any:
        indices = [i for i in range(len(self.flags)) if i != skip]
        if self.kind == "ready" and value == 1 and indices:
            # The bug: the last reader's READY flag is never set.
            indices = indices[:-1]
        with task.phase(FLAG_SET):
            yield task.engine.timeout(self.cost.flag_set_cost * max(len(indices), 1))
        self.node.machine.obs.flag_sets.inc(len(indices))
        for index in indices:
            self.flags[index].store(value, writer_rank=task.rank)

    FlagArray.set_all = mutated  # type: ignore[method-assign]
    try:
        yield
    finally:
        FlagArray.set_all = original  # type: ignore[method-assign]


@contextlib.contextmanager
def _alias_invocation_slot() -> typing.Iterator[None]:
    from repro.core.context import NodeState
    from repro.core.requests import CollectiveRequest

    original_reserve = NodeState.reserve_bcast
    original_gate = CollectiveRequest._gate_on_predecessor

    def mutated_reserve(self: NodeState, local_index: int, count: int) -> int:
        # The bug: hand out the current window without claiming it — every
        # start() of the same rank aliases the same buffer slots.
        return self.bcast_seq[local_index]

    def mutated_gate(self: CollectiveRequest) -> typing.Any:
        # The bug: drop the per-rank started-order chain, letting the
        # aliased invocations actually run concurrently.
        self._predecessor = None
        return
        yield  # pragma: no cover - keeps this a generator function

    NodeState.reserve_bcast = mutated_reserve  # type: ignore[method-assign]
    CollectiveRequest._gate_on_predecessor = mutated_gate  # type: ignore[method-assign]
    try:
        yield
    finally:
        NodeState.reserve_bcast = original_reserve  # type: ignore[method-assign]
        CollectiveRequest._gate_on_predecessor = original_gate  # type: ignore[method-assign]


@contextlib.contextmanager
def _stale_compiled_schedule() -> typing.Iterator[None]:
    from repro.core.requests import PersistentCollective

    original = PersistentCollective.invalidate

    def mutated(self: PersistentCollective) -> None:
        # The bug: rebind() forgets to invalidate — the replay cache keeps
        # traces whose op tapes still hold views of the *old* buffers, so a
        # post-rebind cache hit replays data movement into arrays nobody
        # reads and the freshly bound buffers never change.
        return None

    PersistentCollective.invalidate = mutated  # type: ignore[method-assign]
    try:
        yield
    finally:
        PersistentCollective.invalidate = original  # type: ignore[method-assign]


#: name -> (expected detection, context-manager factory)
MUTATIONS: dict[str, tuple[str, typing.Callable[[], typing.ContextManager[None]]]] = {
    "skip-ready-wait": (
        "reader drains the shared buffer without waiting for READY "
        "(expect read-before-ready violations)",
        _skip_ready_wait,
    ),
    "skip-ready-set": (
        "owner forgets one reader's READY flag "
        "(expect a deadlock naming the starved rank)",
        _skip_ready_set,
    ),
    "alias-invocation-slot": (
        "overlapping starts share one slot window with no ordering chain "
        "(expect buffer overwrite/read violations or a deadlock)",
        _alias_invocation_slot,
    ),
    "stale-compiled-schedule": (
        "rebind() stops invalidating the compiled-schedule cache "
        "(expect result-mismatch on the replay-rebind cell)",
        _stale_compiled_schedule,
    ),
}


def apply_mutation(name: str) -> typing.ContextManager[None]:
    """Context manager installing mutation ``name`` for the block's duration."""
    try:
        return MUTATIONS[name][1]()
    except KeyError:
        raise VerificationError(
            f"unknown mutation {name!r} (known: {sorted(MUTATIONS)})"
        ) from None
