"""Schedule exploration drivers.

Both drivers perturb only the engine's **same-timestamp tie-break order**
(:mod:`repro.sim.scheduler`), so every explored execution is a legal timing
of the same protocol — what changes is which of the simultaneously-ready
events fires first, exactly the nondeterminism a real SMP exhibits.

* **random** — seeded-random tie-breaks (:class:`~repro.sim.scheduler.
  RandomScheduler`), one seed per attempt, deduplicated by schedule
  signature with bounded top-up until the distinct-schedule target is met;
* **dfs** — bounded systematic enumeration (DPOR-lite): replay a chosen
  prefix of tie-break decisions (:class:`~repro.sim.scheduler.
  ReplayScheduler`), observe the branching arity each execution actually
  had, and push every unexplored sibling choice as a new prefix.  Bounding
  the decision depth and branch fan-out keeps the tree finite; within those
  bounds the enumeration is exhaustive.

A driver receives ``run_one(scheduler, variant_seed)`` — a closure supplied
by :mod:`repro.verify.runner` that executes one full collective under the
given scheduler and returns a :class:`ScheduleOutcome`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import VerificationError
from repro.sim.scheduler import RandomScheduler, ReplayScheduler, Scheduler

__all__ = ["ScheduleOutcome", "explore_cell", "dfs_choice_sequences"]

RunOne = typing.Callable[[Scheduler, int], "ScheduleOutcome"]


@dataclasses.dataclass
class ScheduleOutcome:
    """Result of running one collective under one explored schedule."""

    explorer: str
    signature: str
    digest: str
    elapsed: float
    violations: list[dict]
    error: str | None = None
    injected: dict | None = None

    @property
    def clean(self) -> bool:
        """True when the schedule ran to completion with no violations."""
        return self.error is None and not self.violations

    def as_dict(self) -> dict[str, typing.Any]:
        return {
            "explorer": self.explorer,
            "signature": self.signature,
            "digest": self.digest,
            "elapsed": self.elapsed,
            "violations": self.violations,
            "error": self.error,
            "injected": self.injected or {},
        }


def explore_cell(
    run_one: RunOne,
    explorer: str = "random",
    schedules: int = 50,
    seed: int = 0,
    max_branch: int = 4,
    dfs_depth: int = 8,
    topup_factor: int = 4,
) -> list[ScheduleOutcome]:
    """Explore one grid cell; returns one outcome per **distinct** schedule.

    ``schedules`` is the distinct-schedule target.  The random driver runs
    up to ``topup_factor × schedules`` attempts to reach it (tiny configs may
    genuinely have fewer reachable schedules than the target — the caller
    sees however many exist).  The DFS driver stops at ``schedules`` distinct
    executions or when the bounded tree is exhausted, whichever comes first.
    """
    if explorer == "random":
        return _explore_random(run_one, schedules, seed, topup_factor)
    if explorer == "dfs":
        return dfs_choice_sequences(run_one, schedules, max_branch, dfs_depth)
    raise VerificationError(f"unknown explorer {explorer!r} (expected 'random' or 'dfs')")


def _explore_random(
    run_one: RunOne, schedules: int, seed: int, topup_factor: int
) -> list[ScheduleOutcome]:
    outcomes: list[ScheduleOutcome] = []
    seen: set[str] = set()
    attempts = max(1, schedules * max(1, topup_factor))
    for attempt in range(attempts):
        variant = seed + attempt
        outcome = run_one(RandomScheduler(seed=variant), variant)
        if outcome.signature not in seen:
            seen.add(outcome.signature)
            outcomes.append(outcome)
            if len(outcomes) >= schedules:
                break
    return outcomes


def dfs_choice_sequences(
    run_one: RunOne,
    schedules: int,
    max_branch: int = 4,
    max_depth: int = 8,
) -> list[ScheduleOutcome]:
    """Bounded-DFS enumeration over tie-break choice prefixes.

    Classic stateless-search loop: run a prefix (unspecified decisions
    default to choice 0), read back the decision arities the execution
    actually exposed, and push each unexplored sibling ``prefix[:d] + (c,)``
    for ``d < max_depth`` and ``1 <= c < arity(d)``.  Prefixes are explored
    LIFO (depth-first) and deduplicated by full-trace signature, since two
    prefixes can induce the same execution once the defaulted suffix is
    accounted for.
    """
    outcomes: list[ScheduleOutcome] = []
    seen: set[str] = set()
    explored_prefixes: set[tuple[int, ...]] = set()
    stack: list[tuple[int, ...]] = [()]
    while stack and len(outcomes) < schedules:
        prefix = stack.pop()
        if prefix in explored_prefixes:
            continue
        explored_prefixes.add(prefix)
        scheduler = ReplayScheduler(prefix, max_branch=max_branch)
        outcome = run_one(scheduler, 0)
        if outcome.signature not in seen:
            seen.add(outcome.signature)
            outcomes.append(outcome)
        depth_limit = min(len(scheduler.arities), max_depth)
        # Push siblings deepest-first so pops stay depth-first.
        for depth in range(len(prefix), depth_limit):
            for choice in range(1, scheduler.arities[depth]):
                sibling = tuple(scheduler.taken[:depth]) + (choice,)
                if sibling not in explored_prefixes:
                    stack.append(sibling)
    return outcomes
