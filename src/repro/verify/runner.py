"""End-to-end schedule-invariance verification of the SRM collectives.

For every cell of a small-config grid (nodes × tasks-per-node × operation ×
protocol regime), the runner:

1. executes one **reference** run under the default deterministic scheduler
   (``scheduler=None`` — the exact path every benchmark uses) and checks the
   result against an analytically computed truth (NumPy);
2. explores many **alternative schedules** (random or bounded-DFS tie-break
   orders, optionally with timing faults injected) and requires that every
   explored execution (a) trips no protocol invariant, (b) completes without
   deadlock, and (c) produces a result digest identical to the reference —
   the collective's outcome must be a pure function of its inputs, never of
   the interleaving.

Message sizes are chosen to land in each of the paper's three protocol
regimes under the default :class:`~repro.core.config.SRMConfig` thresholds
(small ≤ 8 KB, pipelined 8–64 KB, large > 64 KB).  Reductions use small
integer-valued float64 data so every association order produces bit-equal
sums (schedule invariance of the *digest* is then exact, not approximate).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

import numpy as np

from repro.core import SRM, SRMConfig
from repro.errors import ReproError, VerificationError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.mpi.ops import SUM
from repro.obs.metrics import MetricsRegistry
from repro.sim.scheduler import Scheduler
from repro.verify.explorer import ScheduleOutcome, explore_cell
from repro.verify.faults import FaultPlan
from repro.verify.invariants import Verifier
from repro.verify.mutations import MUTATIONS, apply_mutation

__all__ = [
    "Cell",
    "default_grid",
    "quick_grid",
    "run_cell",
    "run_verify",
    "run_mutation_smoke",
]

#: Operations covered by the verification grid (the paper's common set).
VERIFY_OPERATIONS = ("broadcast", "reduce", "allreduce", "barrier")

#: One representative size per protocol regime (see module docstring).
REGIME_SIZES: dict[str, int] = {"small": 2048, "pipelined": 16384, "large": 81920}

#: Calls per schedule — two back-to-back calls exercise the double-buffer
#: alternation and the cross-call pipelining the paper's §2.2 describes.
ITERATIONS = 2


@dataclasses.dataclass(frozen=True)
class Cell:
    """One verification grid cell."""

    nodes: int
    procs: int
    operation: str
    regime: str
    nbytes: int
    #: In-flight-collective mode: ``"none"`` runs the classic blocking
    #: program; ``"plan2"`` starts one persistent plan twice before waiting
    #: either (two outstanding invocations on one plan); ``"plans"`` holds an
    #: operation plan and a barrier plan in flight together on one group.
    overlap: str = "none"

    @property
    def cell_id(self) -> str:
        base = f"{self.operation}/n{self.nodes}xp{self.procs}/{self.regime}({self.nbytes}B)"
        if self.overlap != "none":
            base += f"/{self.overlap}"
        return base


def default_grid(
    node_counts: typing.Sequence[int] = (2, 4),
    proc_counts: typing.Sequence[int] = (2, 3),
    operations: typing.Sequence[str] = VERIFY_OPERATIONS,
    regimes: typing.Sequence[str] = ("small", "pipelined", "large"),
) -> list[Cell]:
    """The standard grid: 2–4 nodes × 2–4 procs × all ops × all regimes.

    Barrier moves no data, so it contributes one cell per shape regardless
    of the regime list.
    """
    cells: list[Cell] = []
    for nodes in node_counts:
        for procs in proc_counts:
            for operation in operations:
                if operation == "barrier":
                    cells.append(Cell(nodes, procs, "barrier", "none", 0))
                    continue
                for regime in regimes:
                    cells.append(Cell(nodes, procs, operation, regime, REGIME_SIZES[regime]))
    # Overlapping in-flight collectives (the request layer): one shape per
    # grid, every operation, both overlap modes — two outstanding invocations
    # of one persistent plan, and two plans in flight on one group.
    nodes, procs = node_counts[0], proc_counts[-1]
    for operation in operations:
        regime = "none" if operation == "barrier" else "small"
        nbytes = 0 if operation == "barrier" else REGIME_SIZES["small"]
        for overlap in ("plan2", "plans"):
            cells.append(Cell(nodes, procs, operation, regime, nbytes, overlap))
    # Compiled-replay windows (the trace cache): repeated persistent starts
    # driven from outside the engine, where the reference run replays the
    # recorded schedule while every explored schedule re-drives the slow
    # path — digest equality is the replay-vs-slow differential.  The
    # ``replay-rebind`` variant rebinds the plans to fresh buffers midway,
    # exercising trace invalidation (barrier has no buffers to rebind).
    for operation in operations:
        regime = "none" if operation == "barrier" else "small"
        nbytes = 0 if operation == "barrier" else REGIME_SIZES["small"]
        cells.append(Cell(nodes, procs, operation, regime, nbytes, "replay"))
        if operation != "barrier":
            cells.append(Cell(nodes, procs, operation, regime, nbytes, "replay-rebind"))
    return cells


def quick_grid() -> list[Cell]:
    """A minutes-not-hours subset for CI smoke and ``--quick``."""
    cells = default_grid(node_counts=(2,), proc_counts=(2,), regimes=("small", "pipelined"))
    # Trim the default grid's full overlap block to three representative
    # cells so the quick pass still covers both overlap modes.
    keep = {
        ("broadcast", "plan2"),
        ("broadcast", "plans"),
        ("allreduce", "plan2"),
        ("broadcast", "replay"),
        ("broadcast", "replay-rebind"),
        ("allreduce", "replay"),
    }
    return [
        cell for cell in cells
        if cell.overlap == "none" or (cell.operation, cell.overlap) in keep
    ]


# ---------------------------------------------------------------------------
# One run of one cell
# ---------------------------------------------------------------------------


def _expected_sum(total_tasks: int, count: int) -> np.ndarray:
    """Analytic truth for sum-reductions of ``full(count, rank + 1)``."""
    return np.full(count, float(total_tasks * (total_tasks + 1) // 2))


def _digest(arrays: typing.Iterable[np.ndarray]) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for array in arrays:
        hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


#: Windows per replay cell and the window index at which ``replay-rebind``
#: swaps every plan onto fresh buffers.  Six windows cover the record, the
#: self-healing re-record, and steady-state replays of both slot parities.
REPLAY_WINDOWS = 6
REPLAY_REBIND_AT = 3


def _run_replay_windows(
    cell: Cell,
    machine: Machine,
    srm: SRM,
    verifier: Verifier,
    scheduler: Scheduler | None,
    fault_plan: FaultPlan | None,
    total: int,
    count: int,
) -> ScheduleOutcome:
    """Drive a replay cell: repeated persistent windows from outside the engine.

    Unlike the launch-driven cells, each window issues every rank's
    ``start()`` while the engine is idle and then runs to quiescence — the
    shape under which the compiled-schedule cache engages.  The reference
    run (no scheduler, no faults) replays recorded traces; explored
    schedules re-drive the slow path, so the cell's digest-invariance check
    doubles as a replay-vs-slow-path differential.  ``replay-rebind``
    additionally rebinds every plan to fresh buffers mid-sequence, which
    must invalidate the cached traces (the ``stale-compiled-schedule``
    mutation breaks exactly that and must be caught here).
    """
    engine = machine.engine
    nbytes = max(1, cell.nbytes)

    def allocate() -> tuple[dict, dict, dict, np.ndarray]:
        buffers = {r: np.zeros(nbytes, dtype=np.uint8) for r in range(total)}
        sources = {r: np.full(count, float(r + 1)) for r in range(total)}
        destinations = {r: np.zeros(count) for r in range(total)}
        return buffers, sources, destinations, np.zeros(count)

    def build_plans(buffers, sources, destinations, reduce_dst) -> dict:
        plans = {}
        for rank in range(total):
            task = machine.task(rank)
            if cell.operation == "broadcast":
                plans[rank] = srm.plan_broadcast(task, buffers[rank], root=0)
            elif cell.operation == "reduce":
                dst = reduce_dst if rank == 0 else None
                plans[rank] = srm.plan_reduce(task, sources[rank], dst, SUM, root=0)
            elif cell.operation == "allreduce":
                plans[rank] = srm.plan_allreduce(
                    task, sources[rank], destinations[rank], SUM
                )
            elif cell.operation == "barrier":
                plans[rank] = srm.plan_barrier(task)
            else:
                raise VerificationError(f"unknown operation {cell.operation!r}")
        return plans

    def rebind_plans(plans, buffers, sources, destinations, reduce_dst) -> None:
        for rank in range(total):
            if cell.operation == "broadcast":
                plans[rank].rebind(buffers[rank])
            elif cell.operation == "reduce":
                plans[rank].rebind(sources[rank], reduce_dst if rank == 0 else None)
            elif cell.operation == "allreduce":
                plans[rank].rebind(sources[rank], destinations[rank])

    buffers, sources, destinations, reduce_dst = allocate()
    plans = build_plans(buffers, sources, destinations, reduce_dst)
    rebind_at = REPLAY_REBIND_AT if cell.overlap == "replay-rebind" else None

    error: str | None = None
    start = engine.now
    violations: list[dict] = []
    hasher = hashlib.blake2b(digest_size=16)
    try:
        for window in range(REPLAY_WINDOWS):
            if rebind_at is not None and window == rebind_at:
                buffers, sources, destinations, reduce_dst = allocate()
                rebind_plans(plans, buffers, sources, destinations, reduce_dst)
            fill = (7 + 31 * window) % 251
            if cell.operation == "broadcast":
                buffers[0][:] = fill
            elif cell.operation in ("reduce", "allreduce"):
                sources[0][:] = float(window + 1)
            requests = [plans[rank].start() for rank in range(total)]
            engine.run()
            for request in requests:
                if not request.completed:
                    raise VerificationError(
                        f"window {window}: {request.describe()} incomplete "
                        "after the engine drained"
                    )
            if cell.operation == "broadcast":
                results = [buffers[r] for r in range(total)]
                truth_ok = all(np.all(buf == fill) for buf in results)
            elif cell.operation == "reduce":
                expected = _expected_sum(total, count) + float(window)
                results = [reduce_dst]
                truth_ok = bool(np.array_equal(reduce_dst, expected))
            elif cell.operation == "allreduce":
                expected = _expected_sum(total, count) + float(window)
                results = [destinations[r] for r in range(total)]
                truth_ok = all(np.array_equal(dst, expected) for dst in results)
            else:  # barrier: completion is the result
                results = []
                truth_ok = True
            for array in results:
                hasher.update(np.ascontiguousarray(array).tobytes())
            if not truth_ok:
                violations.append(
                    {
                        "rule": "result-mismatch",
                        "subject": cell.cell_id,
                        "time": engine.now - start,
                        "detail": (
                            f"window {window} data disagrees with the analytic "
                            "truth"
                        ),
                    }
                )
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    elapsed = engine.now - start

    manager = engine.trace
    if (
        error is None
        and scheduler is None
        and fault_plan is None
        and srm.config.compiled_replay
        and (manager is None or manager.hit_count == 0)
    ):
        # A replay cell whose reference run never replayed is vacuous —
        # flag it rather than silently verifying only the slow path.
        violations.append(
            {
                "rule": "replay-not-engaged",
                "subject": cell.cell_id,
                "time": elapsed,
                "detail": "no compiled-schedule cache hit across the window sequence",
            }
        )
    violations.extend(violation.as_dict() for violation in verifier.violations)
    digest = hasher.hexdigest() if error is None and cell.operation != "barrier" else ""
    signature = scheduler.signature() if scheduler is not None else "default"
    return ScheduleOutcome(
        explorer=scheduler.name if scheduler is not None else "default",
        signature=signature,
        digest=digest,
        elapsed=elapsed,
        violations=violations,
        error=error,
        injected=dict(fault_plan.injected) if fault_plan is not None else None,
    )


def run_cell_once(
    cell: Cell,
    scheduler: Scheduler | None,
    fault_plan: FaultPlan | None = None,
    srm_config: SRMConfig | None = None,
) -> ScheduleOutcome:
    """Execute ``cell`` once under ``scheduler`` (+ optional faults).

    Returns the outcome: the schedule signature, the result digest, every
    invariant violation the attached :class:`Verifier` recorded, and — when
    the run ended in a deadlock or protocol error — the error text.  A
    ``result-mismatch`` pseudo-violation is appended when the final data
    disagrees with the analytic truth.
    """
    spec = ClusterSpec(nodes=cell.nodes, tasks_per_node=cell.procs)
    machine = Machine(spec, cost=CostModel.ibm_sp_colony(), seed=0, scheduler=scheduler)
    verifier = Verifier()
    machine.engine.verifier = verifier
    if fault_plan is not None:
        fault_plan.reset()
        machine.engine.faults = fault_plan
    srm = SRM(machine, config=srm_config)
    total = spec.total_tasks
    count = max(1, cell.nbytes // 8)

    if cell.overlap in ("replay", "replay-rebind"):
        return _run_replay_windows(
            cell, machine, srm, verifier, scheduler, fault_plan, total, count
        )

    bcast_buffers = {r: np.zeros(max(1, cell.nbytes), dtype=np.uint8) for r in range(total)}
    bcast_buffers[0][:] = 7
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    destinations = {r: np.zeros(count) for r in range(total)}
    reduce_dst = np.zeros(count)

    def body(task) -> typing.Any:
        if cell.operation == "broadcast":
            yield from srm.broadcast(task, bcast_buffers[task.rank], root=0)
        elif cell.operation == "reduce":
            dst = reduce_dst if task.rank == 0 else None
            yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)
        elif cell.operation == "allreduce":
            yield from srm.allreduce(task, sources[task.rank], destinations[task.rank], SUM)
        elif cell.operation == "barrier":
            yield from srm.barrier(task)
        else:
            raise VerificationError(f"unknown operation {cell.operation!r}")

    def make_plan(task) -> typing.Any:
        if cell.operation == "broadcast":
            return srm.plan_broadcast(task, bcast_buffers[task.rank], root=0)
        if cell.operation == "reduce":
            dst = reduce_dst if task.rank == 0 else None
            return srm.plan_reduce(task, sources[task.rank], dst, SUM, root=0)
        if cell.operation == "allreduce":
            return srm.plan_allreduce(task, sources[task.rank], destinations[task.rank], SUM)
        if cell.operation == "barrier":
            return srm.plan_barrier(task)
        raise VerificationError(f"unknown operation {cell.operation!r}")

    def overlapped(task) -> typing.Any:
        plan = make_plan(task)
        if cell.overlap == "plan2":
            # Two outstanding invocations of one plan before either wait.
            first, second = plan.start(), plan.start()
        elif cell.overlap == "plans":
            # Two plans in flight on one group: the operation + a barrier.
            first, second = plan.start(), srm.plan_barrier(task).start()
        else:
            raise VerificationError(f"unknown overlap mode {cell.overlap!r}")
        yield from first.wait()
        yield from second.wait()

    def program(task) -> typing.Any:
        if fault_plan is not None:
            stall = fault_plan.master_stall()
            if stall > 0.0:
                yield machine.engine.timeout(stall)
        if cell.overlap != "none":
            yield from overlapped(task)
            return
        for _ in range(ITERATIONS):
            yield from body(task)

    error: str | None = None
    start = machine.engine.now
    try:
        machine.launch(program)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    except RecursionError as exc:  # pragma: no cover - mutant safety net
        error = f"RecursionError: {exc}"
    elapsed = machine.engine.now - start

    violations = [violation.as_dict() for violation in verifier.violations]
    if verifier.dropped:
        violations.append(
            {
                "rule": "violations-truncated",
                "subject": "verifier",
                "time": elapsed,
                "detail": f"{verifier.dropped} further violation(s) not recorded",
            }
        )
    digest = ""
    if error is None:
        if cell.operation == "broadcast":
            results = [bcast_buffers[r] for r in range(total)]
            truth_ok = all(np.all(buf == 7) for buf in results)
        elif cell.operation == "reduce":
            results = [reduce_dst]
            truth_ok = bool(np.array_equal(reduce_dst, _expected_sum(total, count)))
        elif cell.operation == "allreduce":
            expected = _expected_sum(total, count)
            results = [destinations[r] for r in range(total)]
            truth_ok = all(np.array_equal(dst, expected) for dst in results)
        else:  # barrier: completion is the result
            results = []
            truth_ok = True
        digest = _digest(results)
        if not truth_ok:
            violations.append(
                {
                    "rule": "result-mismatch",
                    "subject": cell.cell_id,
                    "time": elapsed,
                    "detail": "final data disagrees with the analytic truth",
                }
            )
    signature = scheduler.signature() if scheduler is not None else "default"
    return ScheduleOutcome(
        explorer=scheduler.name if scheduler is not None else "default",
        signature=signature,
        digest=digest,
        elapsed=elapsed,
        violations=violations,
        error=error,
        injected=dict(fault_plan.injected) if fault_plan is not None else None,
    )


# ---------------------------------------------------------------------------
# Cell-level exploration + invariance check
# ---------------------------------------------------------------------------


def run_cell(
    cell: Cell,
    schedules: int = 56,
    explorer: str = "random",
    seed: int = 0,
    faults: bool = True,
    srm_config: SRMConfig | None = None,
) -> dict[str, typing.Any]:
    """Verify one cell; returns its JSON-ready report entry.

    The reference run (default scheduler, no faults) anchors the expected
    digest; every explored schedule must be clean and digest-equal.
    """
    reference = run_cell_once(cell, scheduler=None, srm_config=srm_config)

    def run_one(scheduler: Scheduler, variant_seed: int) -> ScheduleOutcome:
        plan = FaultPlan(seed=seed * 100003 + variant_seed) if faults else None
        return run_cell_once(cell, scheduler, fault_plan=plan, srm_config=srm_config)

    outcomes = explore_cell(run_one, explorer=explorer, schedules=schedules, seed=seed)

    divergences = 0
    errors = 0
    violations: list[dict] = list(reference.violations)
    for outcome in outcomes:
        violations.extend(outcome.violations)
        if outcome.error is not None:
            errors += 1
        elif cell.operation != "barrier" and outcome.digest != reference.digest:
            divergences += 1
            violations.append(
                {
                    "rule": "schedule-divergence",
                    "subject": cell.cell_id,
                    "time": outcome.elapsed,
                    "detail": (
                        f"schedule {outcome.signature} produced digest "
                        f"{outcome.digest} != reference {reference.digest}"
                    ),
                }
            )
    injected = {"put_jitter": 0, "wakeup_reorder": 0, "master_stall": 0}
    for outcome in outcomes:
        for family, count in (outcome.injected or {}).items():
            injected[family] = injected.get(family, 0) + count
    ok = (
        reference.error is None
        and not violations
        and errors == 0
        and divergences == 0
    )
    entry = {
        "cell": cell.cell_id,
        "nodes": cell.nodes,
        "procs": cell.procs,
        "operation": cell.operation,
        "regime": cell.regime,
        "nbytes": cell.nbytes,
        "overlap": cell.overlap,
        "explorer": explorer,
        "reference_digest": reference.digest,
        "reference_error": reference.error,
        "schedules_explored": len(outcomes),
        "distinct_signatures": len({o.signature for o in outcomes}),
        "errors": errors,
        "divergences": divergences,
        "violations": violations[:200],
        "violation_count": len(violations),
        "faults_injected": injected,
        "ok": ok,
    }
    return entry


# ---------------------------------------------------------------------------
# Grid driver + mutation smoke
# ---------------------------------------------------------------------------


def run_verify(
    cells: typing.Sequence[Cell] | None = None,
    schedules: int = 56,
    explorer: str = "random",
    seed: int = 0,
    faults: bool = True,
    srm_config: SRMConfig | None = None,
    metrics: MetricsRegistry | None = None,
    progress: typing.Callable[[str], None] | None = None,
) -> dict[str, typing.Any]:
    """Run the verification grid; returns the report body (see report.py).

    ``metrics`` (optional) receives the harness's observability counters:
    ``verify.schedules`` (explored schedules) and ``verify.violations``.
    """
    if cells is None:
        cells = default_grid()
    registry = metrics if metrics is not None else MetricsRegistry()
    schedules_counter = registry.counter("verify.schedules")
    violations_counter = registry.counter("verify.violations")
    entries: list[dict] = []
    for index, cell in enumerate(cells):
        entry = run_cell(
            cell,
            schedules=schedules,
            explorer=explorer,
            seed=seed,
            faults=faults,
            srm_config=srm_config,
        )
        schedules_counter.inc(entry["schedules_explored"])
        violations_counter.inc(entry["violation_count"])
        entries.append(entry)
        if progress is not None:
            status = "ok" if entry["ok"] else "FAIL"
            progress(
                f"[{index + 1}/{len(cells)}] {entry['cell']}: "
                f"{entry['schedules_explored']} schedules, "
                f"{entry['violation_count']} violations, "
                f"{entry['divergences']} divergences ({status})"
            )
    return {
        "mode": "verify",
        "explorer": explorer,
        "seed": seed,
        "faults": faults,
        "schedules_per_cell": schedules,
        "cells": entries,
        "totals": {
            "cells": len(entries),
            "cells_ok": sum(1 for e in entries if e["ok"]),
            "schedules": int(schedules_counter.value),
            "violations": int(violations_counter.value),
            "divergences": sum(e["divergences"] for e in entries),
            "errors": sum(e["errors"] for e in entries),
        },
        "ok": all(entry["ok"] for entry in entries),
    }


def run_mutation_smoke(
    mutations: typing.Sequence[str] | None = None,
    schedules: int = 8,
    seed: int = 0,
    progress: typing.Callable[[str], None] | None = None,
) -> dict[str, typing.Any]:
    """Prove the harness detects injected bugs (see :mod:`verify.mutations`).

    Each mutation is applied to the live protocol code and one small cell is
    explored; the mutation is **detected** when at least one schedule reports
    a violation or fails (deadlock / protocol error).  The smoke passes only
    if *every* mutation is detected.
    """
    names = list(mutations) if mutations is not None else sorted(MUTATIONS)
    cell = Cell(nodes=2, procs=3, operation="broadcast", regime="small", nbytes=2048)
    # Mutations that only bite under overlapping in-flight invocations get an
    # overlap cell; everything else smokes on the classic blocking cell.
    smoke_cells: dict[str, Cell] = {
        "alias-invocation-slot": dataclasses.replace(cell, overlap="plan2"),
        "stale-compiled-schedule": dataclasses.replace(cell, overlap="replay-rebind"),
    }
    results: list[dict] = []
    for name in names:
        target = smoke_cells.get(name, cell)
        with apply_mutation(name):
            entry = run_cell(target, schedules=schedules, seed=seed, faults=False)
        detected = entry["violation_count"] > 0 or entry["errors"] > 0
        results.append(
            {
                "mutation": name,
                "cell": target.cell_id,
                "expectation": MUTATIONS[name][0],
                "detected": detected,
                "violation_count": entry["violation_count"],
                "errors": entry["errors"],
                "rules_fired": sorted({v["rule"] for v in entry["violations"]}),
            }
        )
        if progress is not None:
            progress(
                f"mutation {name}: "
                f"{'DETECTED' if detected else 'MISSED'} "
                f"({entry['violation_count']} violations, {entry['errors']} errors)"
            )
    return {
        "mode": "mutation-smoke",
        "cell": cell.cell_id,
        "mutations": results,
        "ok": all(result["detected"] for result in results),
    }
