"""Persistent SRM state: per-node shared structures and per-root plans.

SRM's performance comes from *reusing* shared-memory buffers, flags, and
LAPI counters across calls (consecutive operations alternate between the two
buffers, §2.2), so this state lives in a context object created once per
machine, not per call:

* :class:`NodeState` — one per SMP node: the broadcast
  :class:`~repro.shmem.buffers.DoubleBuffer`, the per-task reduce slots with
  their sequence flags, and the barrier flag bank.
* Plan objects — cached per root: the SMP embedding (Fig. 1) plus the LAPI
  counters implementing the two-buffer inter-node flow control (Fig. 4).

Sequence bookkeeping: chunk flags hold *cumulative* chunk counts rather than
booleans, so no inter-call reset synchronization is ever needed — every task
executes the same sequence of collective calls, hence agrees on every
sequence number by construction.

With the request layer (:mod:`repro.core.requests`) several invocations of
one plan can be in flight at once, so the per-invocation cursors — broadcast
and reduce chunk sequences, streamed-chunk bases, per-edge send/receive
counts, the exchange call parity — are *reserved* synchronously at
``start()`` into an :class:`InvocationState` instead of being read and
advanced lazily mid-schedule.  Two in-flight invocations therefore never
alias a buffer slot: each owns a disjoint sequence window, and the
cumulative-counter discipline above keeps both sides of every edge in
agreement about slot parity without any extra synchronization.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SRMConfig
from repro.core.dispatch import Decision, Dispatcher, SelectionPolicy
from repro.errors import ConfigurationError
from repro.lapi.counters import LapiCounter
from repro.machine.cluster import Machine, Node
from repro.shmem.buffers import DoubleBuffer
from repro.shmem.flags import FlagArray, SharedFlag
from repro.shmem.segment import SharedSegment
from repro.trees.embedding import EmbeddedTrees, group_embedding

__all__ = [
    "SRMContext",
    "NodeState",
    "InvocationState",
    "BcastPlan",
    "ReducePlan",
    "AllreducePlan",
    "BarrierPlan",
]


@dataclass
class InvocationState:
    """The per-invocation mutable cursors of one collective call at one rank.

    Reserved synchronously when the invocation starts (a blocking call, an
    ``i*`` one-shot, or a persistent ``plan.start()``) by the ``reserve_*``
    helpers in :mod:`repro.core.internode`; the protocol bodies then compute
    every slot parity and counter threshold from these bases instead of
    reading and mutating the shared plan/node cursors mid-schedule.  The
    pipelined allreduce carries both its reduce-stage and broadcast-stage
    windows in one instance (the field sets are disjoint).
    """

    op: str
    root: int | None = None
    #: Per-rank invocation number (assigned by the request layer; orders the
    #: rank's requests and names them in deadlock reports).
    sequence: int = 0
    #: First SMP-broadcast chunk sequence of this invocation at this rank.
    bcast_base: int = 0
    #: First SMP-reduce chunk sequence of this invocation at this rank.
    reduce_base: int = 0
    #: Large-protocol broadcast: first streamed-chunk threshold at my node.
    stream_base: int = 0
    #: Reduce: first staging-slot sequence toward my inter-node parent.
    sent_base: int = 0
    #: Reduce: first staging-slot sequence per inter-node child rank.
    recv_base: dict[int, int] = field(default_factory=dict)
    #: Exchange allreduce: this master's call number (slot parity).
    call: int = 0


class NodeState:
    """All shared-memory structures of one node, reused by every operation.

    ``members`` restricts the structures to a task group's local members
    (the §5 arbitrary-task-group extension): flags, slots, and sequence
    counters are sized and indexed by the member list, so tasks outside the
    group never appear in any wait condition.
    """

    def __init__(
        self,
        node: Node,
        config: SRMConfig,
        members: typing.Sequence[int] | None = None,
    ) -> None:
        self.node = node
        self.config = config
        self.members: tuple[int, ...] = (
            tuple(members) if members is not None else tuple(node.ranks)
        )
        if not self.members:
            raise ConfigurationError(f"node {node.index} has no group members")
        self._index = {rank: position for position, rank in enumerate(self.members)}
        size = len(self.members)
        chunk = config.shared_buffer_bytes

        # Broadcast: the Fig. 3 structure — two buffers + per-task READY flags.
        self.bcast_buf = DoubleBuffer(node, chunk, flags_per_buffer=size, name=f"bcast[{node.index}]")
        #: Per-task count of chunks pushed through the broadcast buffers.
        self.bcast_seq = [0] * size

        # Reduce: two chunk slots per task + cumulative ready/consumed flags.
        segment = SharedSegment(node, (2 * size + 4) * chunk + 64 * (size + 8), name=f"reduce[{node.index}]")
        self.reduce_slots: list[tuple[np.ndarray, np.ndarray]] = [
            (segment.allocate(chunk), segment.allocate(chunk)) for _ in range(size)
        ]
        self.reduce_ready = FlagArray(node, size, name=f"rdy[{node.index}]", kind="sequence")
        self.reduce_consumed = FlagArray(node, size, name=f"cons[{node.index}]", kind="sequence")
        #: Per-task count of chunks this task has contributed to SMP reduces.
        self.reduce_seq = [0] * size
        #: Per task, per slot: the global sequence of the last write into that
        #: slot (None = never).  Guards slot reuse even when a task's tree
        #: role changes between calls (a reduce root writes no slot).
        self.reduce_last_write: list[list[int | None]] = [[None, None] for _ in range(size)]

        # Master-side node-partial buffers (put sources for inter-node reduce).
        self.partial = (segment.allocate(chunk), segment.allocate(chunk))

        # Barrier: one flag per task, own cache line (§2.2).
        self.barrier_flags = FlagArray(node, size, name=f"bar[{node.index}]", kind="checkin")

    @property
    def size(self) -> int:
        """Number of participating tasks on this node."""
        return len(self.members)

    @property
    def master_rank(self) -> int:
        """The node's group master (lowest member rank)."""
        return self.members[0]

    def index_of(self, task: typing.Any) -> int:
        """This task's slot/flag index within the node's member list."""
        return self.index_of_rank(task.rank)

    def index_of_rank(self, rank: int) -> int:
        try:
            return self._index[rank]
        except KeyError:
            raise ConfigurationError(
                f"rank {rank} is not a group member on node {self.node.index}"
            ) from None

    def is_master(self, task: typing.Any) -> bool:
        """True when this task is the node's group master."""
        return task.rank == self.members[0]

    def reserve_bcast(self, local_index: int, count: int) -> int:
        """Claim the next ``count`` SMP-broadcast chunk sequences; returns
        the first.  Reserving at start (instead of advancing lazily per
        chunk) is what keeps two in-flight invocations out of each other's
        buffer slots."""
        base = self.bcast_seq[local_index]
        self.bcast_seq[local_index] = base + count
        return base

    def reserve_reduce(self, local_index: int, count: int) -> int:
        """Claim the next ``count`` SMP-reduce chunk sequences; returns the
        first."""
        base = self.reduce_seq[local_index]
        self.reduce_seq[local_index] = base + count
        return base

    def reduce_slot(self, local_index: int, sequence: int, nbytes: int) -> np.ndarray:
        """The slot a task writes its ``sequence``-th reduce chunk into."""
        pair = self.reduce_slots[local_index]
        return pair[sequence % 2][:nbytes]

    def partial_buffer(self, sequence: int, nbytes: int) -> np.ndarray:
        """The master's node-partial buffer for a given chunk sequence."""
        return self.partial[sequence % 2][:nbytes]


class _EdgeCounters:
    """The Fig. 4 (left) flow-control counters of one inter-node tree edge.

    ``arrival[slot]`` lives at the child and counts parent puts landed in the
    child's shared buffer ``slot``; ``free[slot]`` lives at the parent,
    starts at 1 per slot (both buffers initially free), and is incremented by
    the child's zero-byte ack put once the SMP fan-out drained the slot.
    """

    def __init__(self, machine: Machine, parent_rank: int, child_rank: int) -> None:
        child = machine.task(child_rank).lapi
        parent = machine.task(parent_rank).lapi
        self.arrival = (child.counter(name=f"arr0:{child_rank}"), child.counter(name=f"arr1:{child_rank}"))
        self.free = (
            parent.counter(initial=1, name=f"free0:{parent_rank}->{child_rank}"),
            parent.counter(initial=1, name=f"free1:{parent_rank}->{child_rank}"),
        )


@dataclass
class BcastPlan:
    """Everything a broadcast from one root needs."""

    root: int
    trees: EmbeddedTrees
    #: Flow-control counters per child node (small protocol).
    edges: dict[int, _EdgeCounters]
    #: Large protocol: per node, the count of streamed chunks landed.
    stream_arrival: dict[int, LapiCounter]
    #: Large protocol: address-exchange counters at each parent, per child.
    address_arrival: dict[int, LapiCounter]
    #: Large protocol: the per-call registry of each node's user buffer,
    #: filled by the address-exchange puts (the simulated "address").
    user_buffers: dict[int, np.ndarray] = field(default_factory=dict)
    #: Cumulative streamed-chunk counts per node (stream_arrival counters are
    #: watched, never consumed, so thresholds are absolute across calls).
    stream_base: dict[int, int] = field(default_factory=dict)

    def reserve_stream(self, node: int, count: int) -> int:
        """Claim ``count`` streamed-chunk thresholds at ``node``; returns the
        first (absolute across calls — the arrival counter is never reset)."""
        base = self.stream_base.get(node, 0)
        self.stream_base[node] = base + count
        return base

    def inter_children(self, rank: int) -> list[int]:
        """Inter-node children of ``rank`` (empty for non-representatives)."""
        if rank in self.trees.inter.parent:
            return self.trees.inter.children_of(rank)
        return []

    def inter_parent(self, rank: int) -> int | None:
        """Inter-node parent of ``rank`` (None for the root / non-reps)."""
        if rank in self.trees.inter.parent:
            return self.trees.inter.parent_of(rank)
        return None


@dataclass
class ReducePlan:
    """Everything a reduce toward one root needs.

    The tree is the same embedding as broadcast, walked leaf→root.  Each
    edge gets two chunk-sized staging buffers *at the parent's node* plus
    arrival counters (at the parent) and free counters (at the child).
    """

    root: int
    trees: EmbeddedTrees
    #: child rank -> (staging buffer pair at parent, counters).
    staging: dict[int, tuple[np.ndarray, np.ndarray]]
    arrival: dict[int, tuple[LapiCounter, LapiCounter]]
    free: dict[int, tuple[LapiCounter, LapiCounter]]
    #: Cumulative chunk counts per edge: the child's send count and the
    #: parent's receive count advance identically, so both sides agree on
    #: the staging slot parity without synchronization.
    sent_seq: dict[int, int] = field(default_factory=dict)
    recv_seq: dict[int, int] = field(default_factory=dict)

    def reserve_sent(self, rank: int, count: int) -> int:
        """Claim ``count`` staging-slot sequences toward ``rank``'s parent."""
        base = self.sent_seq.get(rank, 0)
        self.sent_seq[rank] = base + count
        return base

    def reserve_recv(self, child_rank: int, count: int) -> int:
        """Claim ``count`` staging-slot sequences on the ``child_rank`` edge."""
        base = self.recv_seq.get(child_rank, 0)
        self.recv_seq[child_rank] = base + count
        return base

    def inter_children(self, rank: int) -> list[int]:
        if rank in self.trees.inter.parent:
            return self.trees.inter.children_of(rank)
        return []

    def inter_parent(self, rank: int) -> int | None:
        if rank in self.trees.inter.parent:
            return self.trees.inter.parent_of(rank)
        return None


@dataclass
class AllreducePlan:
    """Recursive-doubling pairwise exchange among node masters (§2.2, §3).

    For ``k`` participating nodes, the first ``2^floor(log2 k)`` positions
    (in ``node_order``) do the exchange; the excess nodes fold their
    contribution into a partner first and receive the result back at the end
    (the standard non-power-of-two fix-up).  All indexing is by *position in
    the group's node order*, so arbitrary task groups work unchanged.
    """

    rounds: int
    #: Participating node indices in exchange order.
    node_order: list[int]
    #: node index -> position in node_order.
    position: dict[int, int]
    #: node index -> that node's group master rank.
    masters: dict[int, int]
    fold_partner: dict[int, int]  # excess node index -> partner node index
    #: Per node: one staging buffer pair per round (slot = call parity).
    exchange: dict[int, list[tuple[np.ndarray, np.ndarray]]]
    arrival: dict[int, list[LapiCounter]]
    #: Fold staging (pre-phase) at the partner; fold-back uses bcast-style puts.
    fold_staging: dict[int, tuple[np.ndarray, np.ndarray]]
    fold_arrival: dict[int, LapiCounter]
    fold_result_arrival: dict[int, LapiCounter]
    #: Per-master call count (slot parity agreement across calls).
    call_seq: dict[int, int]

    def reserve_call(self, rank: int) -> int:
        """Claim this master's next exchange call number (slot parity)."""
        call = self.call_seq[rank]
        self.call_seq[rank] = call + 1
        return call

    @property
    def group_size(self) -> int:
        """Size of the power-of-two exchange group."""
        return 1 << self.rounds


@dataclass
class BarrierPlan:
    """Dissemination-pattern inter-node barrier counters ([17], [22])."""

    rounds: int
    #: Participating node indices in dissemination order.
    node_order: list[int]
    position: dict[int, int]
    masters: dict[int, int]
    #: Per node, per round: the arrival counter at that node's master.
    counters: dict[int, list[LapiCounter]]


class SRMContext:
    """Shared state for all SRM collectives on one machine.

    ``members`` restricts the context to an arbitrary task group (an MPI
    sub-communicator) — the paper's §5 open problem.  The default is the
    whole machine (MPI_COMM_WORLD).
    """

    def __init__(
        self,
        machine: Machine,
        config: SRMConfig | None = None,
        members: typing.Iterable[int] | None = None,
        policy: "SelectionPolicy | None" = None,
    ) -> None:
        self.machine = machine
        self.config = config if config is not None else SRMConfig()
        if members is None:
            member_list = list(range(machine.spec.total_tasks))
        else:
            member_list = sorted(set(members))
            if not member_list:
                raise ConfigurationError("a task group needs at least one member")
            for rank in member_list:
                machine.spec.check_rank(rank)
        self.members: tuple[int, ...] = tuple(member_list)
        self.member_set = frozenset(member_list)
        members_by_node: dict[int, list[int]] = {}
        for rank in member_list:
            members_by_node.setdefault(machine.spec.node_of(rank), []).append(rank)
        #: Participating node index -> its NodeState (group-sized).
        self.nodes: dict[int, NodeState] = {
            node: NodeState(machine.nodes[node], self.config, node_members)
            for node, node_members in members_by_node.items()
        }
        self._bcast_plans: dict[int, BcastPlan] = {}
        self._reduce_plans: dict[int, ReducePlan] = {}
        self._allreduce_plan: AllreducePlan | None = None
        self._barrier_plan: BarrierPlan | None = None
        #: Protocol-dispatch layer: every algorithm choice routes through
        #: here (the default policy reproduces the paper's §2.4 thresholds).
        self.dispatcher = Dispatcher(self, policy)
        #: Per-rank tail of the request chain: within one context a rank's
        #: collectives run in started order (MPI's per-communicator ordering
        #: guarantee); overlap comes from cross-rank skew and from other
        #: contexts.  Maintained by :mod:`repro.core.requests`.
        self._request_tail: dict[int, typing.Any] = {}
        #: Per-rank invocation numbering (names requests in reports).
        self._invocation_seq: dict[int, int] = {}

    def next_invocation(self, rank: int) -> int:
        """This rank's next invocation number (0, 1, 2, ... per context)."""
        sequence = self._invocation_seq.get(rank, 0)
        self._invocation_seq[rank] = sequence + 1
        return sequence

    @property
    def group_root(self) -> int:
        """Default root for rootless compositions: the lowest member."""
        return self.members[0]

    def check_member(self, rank: int) -> int:
        if rank not in self.member_set:
            raise ConfigurationError(f"rank {rank} is not a member of this group")
        return rank

    def node_state(self, task: typing.Any) -> NodeState:
        """The NodeState of ``task``'s node."""
        try:
            return self.nodes[task.node.index]
        except KeyError:
            raise ConfigurationError(
                f"task {task.rank}'s node hosts no members of this group"
            ) from None

    # -- validation (the single choke point for every entry path) -----------

    def validate(self, op: str, nbytes: int, rank: int, root: int | None = None) -> None:
        """Validate one collective call's arguments, synchronously.

        Every entry path — blocking facades, ``i*`` one-shots, persistent
        plan construction, and the direct ``srm_*`` generators — routes
        through here, so membership/root/size errors raise at ``start()``
        (or plan init), never from inside a half-started schedule.
        """
        self.check_member(rank)
        if root is not None:
            self.check_member(root)
        if nbytes < 0:
            raise ConfigurationError(f"{op}: message size must be >= 0, got {nbytes}")

    # -- dispatch ------------------------------------------------------------

    def dispatch(
        self, op: str, nbytes: int, task: typing.Any = None, persistent: bool = False
    ) -> Decision:
        """Resolve the algorithm variant for one collective call.

        ``persistent`` marks the decision telemetry record as pinned by a
        persistent plan (dispatched once at init, then amortized over every
        ``start()``).
        """
        return self.dispatcher.decide(op, nbytes, task, persistent=persistent)

    # -- plan construction (cached per root) --------------------------------

    def bcast_plan(self, root: int) -> BcastPlan:
        self.check_member(root)
        if root not in self._bcast_plans:
            spec = self.machine.spec
            trees = group_embedding(
                spec,
                self.members,
                root,
                inter_family=self.dispatcher.tree_family("inter-tree"),
            )
            edges: dict[int, _EdgeCounters] = {}
            stream_arrival: dict[int, LapiCounter] = {}
            address_arrival: dict[int, LapiCounter] = {}
            for child_rank in trees.inter.ranks:
                parent_rank = trees.inter.parent_of(child_rank)
                node = spec.node_of(child_rank)
                if parent_rank is None:
                    continue
                edges[node] = _EdgeCounters(self.machine, parent_rank, child_rank)
                stream_arrival[node] = self.machine.task(child_rank).lapi.counter(
                    name=f"stream:{child_rank}"
                )
                address_arrival[node] = self.machine.task(parent_rank).lapi.counter(
                    name=f"addr:{parent_rank}<-{child_rank}"
                )
            self._bcast_plans[root] = BcastPlan(
                root=root,
                trees=trees,
                edges=edges,
                stream_arrival=stream_arrival,
                address_arrival=address_arrival,
            )
        return self._bcast_plans[root]

    def reduce_plan(self, root: int) -> ReducePlan:
        self.check_member(root)
        if root not in self._reduce_plans:
            spec = self.machine.spec
            trees = group_embedding(
                spec,
                self.members,
                root,
                inter_family=self.dispatcher.tree_family("inter-tree"),
                intra_family=self.dispatcher.tree_family("intra-reduce-tree"),
            )
            chunk = self.config.shared_buffer_bytes
            staging: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            arrival: dict[int, tuple[LapiCounter, LapiCounter]] = {}
            free: dict[int, tuple[LapiCounter, LapiCounter]] = {}
            for child_rank in trees.inter.ranks:
                parent_rank = trees.inter.parent_of(child_rank)
                if parent_rank is None:
                    continue
                parent_node = self.machine.task(parent_rank).node
                segment = SharedSegment(parent_node, 2 * chunk + 128, name=f"stage<-{child_rank}")
                staging[child_rank] = (segment.allocate(chunk), segment.allocate(chunk))
                parent_lapi = self.machine.task(parent_rank).lapi
                child_lapi = self.machine.task(child_rank).lapi
                arrival[child_rank] = (
                    parent_lapi.counter(name=f"rarr0<-{child_rank}"),
                    parent_lapi.counter(name=f"rarr1<-{child_rank}"),
                )
                free[child_rank] = (
                    child_lapi.counter(initial=1, name=f"rfree0:{child_rank}"),
                    child_lapi.counter(initial=1, name=f"rfree1:{child_rank}"),
                )
            self._reduce_plans[root] = ReducePlan(
                root=root, trees=trees, staging=staging, arrival=arrival, free=free
            )
        return self._reduce_plans[root]

    def allreduce_plan(self) -> AllreducePlan:
        if self._allreduce_plan is None:
            node_order = sorted(self.nodes)
            position = {node: index for index, node in enumerate(node_order)}
            masters = {node: self.nodes[node].master_rank for node in node_order}
            k = len(node_order)
            group = 1 << (k.bit_length() - 1)
            if group > k:
                group >>= 1
            rounds = group.bit_length() - 1
            chunk = max(self.config.allreduce_exchange_max, 1)
            exchange: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
            arrival: dict[int, list[LapiCounter]] = {}
            fold_partner: dict[int, int] = {}
            fold_staging: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            fold_arrival: dict[int, LapiCounter] = {}
            fold_result_arrival: dict[int, LapiCounter] = {}
            call_seq: dict[int, int] = {}
            for node in node_order:
                master = masters[node]
                call_seq[master] = 0
                machine_node = self.machine.nodes[node]
                lapi = self.machine.task(master).lapi
                if position[node] < group:
                    segment = SharedSegment(
                        machine_node,
                        rounds * 2 * chunk + 128 * (rounds + 1),
                        name=f"rd[{node}]",
                    )
                    exchange[node] = [
                        (segment.allocate(chunk), segment.allocate(chunk))
                        for _ in range(rounds)
                    ]
                    arrival[node] = [lapi.counter(name=f"rd{r}:{node}") for r in range(rounds)]
                else:
                    partner = node_order[position[node] - group]
                    fold_partner[node] = partner
                    partner_node = self.machine.nodes[partner]
                    partner_lapi = self.machine.task(masters[partner]).lapi
                    segment = SharedSegment(partner_node, 2 * chunk + 128, name=f"fold[{node}]")
                    fold_staging[node] = (segment.allocate(chunk), segment.allocate(chunk))
                    fold_arrival[node] = partner_lapi.counter(name=f"fold:{node}->{partner}")
                    fold_result_arrival[node] = lapi.counter(name=f"foldback:{partner}->{node}")
            self._allreduce_plan = AllreducePlan(
                rounds=rounds,
                node_order=node_order,
                position=position,
                masters=masters,
                fold_partner=fold_partner,
                exchange=exchange,
                arrival=arrival,
                fold_staging=fold_staging,
                fold_arrival=fold_arrival,
                fold_result_arrival=fold_result_arrival,
                call_seq=call_seq,
            )
        return self._allreduce_plan

    def barrier_plan(self) -> BarrierPlan:
        if self._barrier_plan is None:
            node_order = sorted(self.nodes)
            position = {node: index for index, node in enumerate(node_order)}
            masters = {node: self.nodes[node].master_rank for node in node_order}
            rounds = (len(node_order) - 1).bit_length()
            counters = {
                node: [
                    self.machine.task(masters[node]).lapi.counter(name=f"bar{r}:{node}")
                    for r in range(rounds)
                ]
                for node in node_order
            }
            self._barrier_plan = BarrierPlan(
                rounds=rounds,
                node_order=node_order,
                position=position,
                masters=masters,
                counters=counters,
            )
        return self._barrier_plan

    def validate_message(self, nbytes: int) -> None:
        """Size-only guard (kept for compatibility; prefer :meth:`validate`)."""
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0, got {nbytes}")
