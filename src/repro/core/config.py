"""SRM tuning parameters (the paper's protocol switch points, §2.4).

Defaults follow the paper exactly where it gives numbers:

* broadcast switches from the shared-buffer ("small") protocol to the
  direct-to-user-buffer ("large") protocol at **64 KB**;
* small-protocol messages above **8 KB** are split into **4 KB** chunks and
  pipelined through the two shared buffers;
* allreduce uses recursive-doubling pairwise exchange up to **16 KB** and
  the pipelined reduce+broadcast beyond it (Fig. 5).

The large-message streaming chunk and the put window are implementation
parameters (the paper tunes them implicitly through LAPI); both are exposed
for the pipeline ablation (bench A4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["SRMConfig"]

KB = 1024


@dataclass(frozen=True)
class SRMConfig:
    """All knobs of the SRM collectives."""

    #: Broadcast small→large protocol switch (bytes).  Paper: 64 KB.
    small_protocol_max: int = 64 * KB
    #: Small-protocol messages above this are chunked and pipelined. Paper: 8 KB.
    pipeline_min: int = 8 * KB
    #: Chunk size for small-protocol pipelining.  Paper: 4 KB.
    pipeline_chunk: int = 4 * KB
    #: Chunk size for large-message streaming (network + SMP pipelining).
    large_chunk: int = 64 * KB
    #: In-flight put window per inter-node child for streamed large messages.
    put_window: int = 4
    #: Allreduce recursive-doubling cutoff.  Paper: 16 KB.
    allreduce_exchange_max: int = 16 * KB
    #: Allgather (extension op) switches from gather+broadcast (latency-
    #: optimal) to the hierarchical master ring (bandwidth-optimal) once the
    #: concatenated result exceeds this many bytes.
    allgather_ring_min: int = 64 * KB
    #: Large-message allreduce algorithm: "pipeline" (the paper's Fig. 5
    #: reduce+broadcast overlap) or "ring" (hierarchical reduce-scatter +
    #: allgather over the masters — a future-work alternative; see
    #: bench_abl_ring_allreduce.py for the trade-off).
    allreduce_algorithm: str = "pipeline"
    #: Tree family between node masters (§2.1 found binomial best).
    inter_family: str = "binomial"
    #: Tree family for the intra-node reduce.
    intra_reduce_family: str = "binomial"
    #: Disable LAPI interrupts while inside a small-message collective (§2.3).
    manage_interrupts: bool = True
    #: Record persistent-plan windows as compiled schedules and replay
    #: repeated (plan, parity) windows with the vectorized kernel
    #: (:mod:`repro.core.replay`).  ``False`` (the ``--no-replay`` escape
    #: hatch) always re-drives the engine's processes and generators.
    compiled_replay: bool = True

    def __post_init__(self) -> None:
        if self.pipeline_chunk < 1 or self.large_chunk < 1:
            raise ConfigurationError("chunk sizes must be >= 1 byte")
        if self.pipeline_min < self.pipeline_chunk:
            raise ConfigurationError(
                "pipeline_min must be >= pipeline_chunk "
                f"({self.pipeline_min} < {self.pipeline_chunk})"
            )
        if self.small_protocol_max < self.pipeline_min:
            raise ConfigurationError("small_protocol_max must be >= pipeline_min")
        if self.put_window < 1:
            raise ConfigurationError("put_window must be >= 1")
        if self.allreduce_exchange_max < 0:
            raise ConfigurationError("allreduce_exchange_max must be >= 0")
        if self.allgather_ring_min < 0:
            raise ConfigurationError("allgather_ring_min must be >= 0")
        if self.allreduce_algorithm not in ("pipeline", "ring"):
            raise ConfigurationError(
                f"allreduce_algorithm must be 'pipeline' or 'ring', "
                f"got {self.allreduce_algorithm!r}"
            )
        # Tree families are consumed by repro.trees at plan-build time;
        # reject bad names here so misconfiguration fails at construction
        # with the field name, not deep inside the embedding builder.
        from repro.trees.embedding import TREE_FAMILIES

        for field_name in ("inter_family", "intra_reduce_family"):
            family = getattr(self, field_name)
            if family not in TREE_FAMILIES:
                raise ConfigurationError(
                    f"{field_name} must be one of {sorted(TREE_FAMILIES)}, "
                    f"got {family!r}"
                )

    @property
    def shared_buffer_bytes(self) -> int:
        """Size of each shared buffer: must hold the largest single chunk."""
        return max(
            self.large_chunk, self.pipeline_min, self.allreduce_exchange_max, self.pipeline_chunk
        )

    def evolve(self, **changes) -> "SRMConfig":
        """Copy with ``changes`` applied (for ablations)."""
        return replace(self, **changes)

    # -- chunking rules ------------------------------------------------------

    def is_large(self, nbytes: int) -> bool:
        """True when the direct-to-user-buffer broadcast protocol applies."""
        return nbytes > self.small_protocol_max

    def chunks(self, nbytes: int) -> list[tuple[int, int]]:
        """Split a message into ``(offset, size)`` pipeline chunks.

        * ``<= pipeline_min`` — one chunk (no pipelining, §2.2);
        * ``<= small_protocol_max`` — 4 KB chunks through shared buffers;
        * larger — streaming chunks of ``large_chunk``.

        Both thresholds are **inclusive**: exactly ``pipeline_min`` bytes is
        still one chunk, and exactly ``small_protocol_max`` bytes still uses
        ``pipeline_chunk`` tiles; one byte beyond each threshold switches
        regime.  Offsets always tile ``[0, nbytes)`` exactly — contiguous,
        non-overlapping, sizes summing to ``nbytes``, with only the final
        chunk allowed to be short.  Zero bytes yields the single sentinel
        chunk ``(0, 0)`` so control-flow-only collectives still run their
        signalling round.  (Boundary behavior is pinned down by the
        exhaustive tiling tests in ``tests/test_core_config.py``.)
        """
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0, got {nbytes}")
        if nbytes == 0:
            return [(0, 0)]
        if nbytes <= self.pipeline_min:
            return [(0, nbytes)]
        chunk = self.large_chunk if self.is_large(nbytes) else self.pipeline_chunk
        return [
            (offset, min(chunk, nbytes - offset)) for offset in range(0, nbytes, chunk)
        ]
