"""The paper's contribution: SRM (Shared-Remote-Memory) collectives."""

from repro.core.config import SRMConfig
from repro.core.context import SRMContext
from repro.core.dispatch import (
    CostModelPolicy,
    Dispatcher,
    FixedPolicy,
    PaperPolicy,
    SelectionPolicy,
    TunedPolicy,
)
from repro.core.requests import CollectiveRequest, PersistentCollective
from repro.core.srm import SRM

__all__ = [
    "SRM",
    "SRMConfig",
    "SRMContext",
    "CollectiveRequest",
    "PersistentCollective",
    "SelectionPolicy",
    "PaperPolicy",
    "CostModelPolicy",
    "TunedPolicy",
    "FixedPolicy",
    "Dispatcher",
]
