"""The paper's contribution: SRM (Shared-Remote-Memory) collectives."""

from repro.core.config import SRMConfig
from repro.core.context import SRMContext
from repro.core.srm import SRM

__all__ = ["SRM", "SRMConfig", "SRMContext"]
