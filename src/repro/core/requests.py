"""Request-based nonblocking and persistent collectives.

The blocking facade re-resolves its dispatch decision and re-derives its
chunking on every call, even though the paper's design (§2.2) is built on
*reusing* shared buffers, flags, and counters across calls.  This module
factors one collective invocation into three phases so the first two can be
hoisted out of the per-call path:

1. **prepare** — validate arguments, look up the cached plan/node state, and
   resolve the dispatch :class:`~repro.core.dispatch.Decision` (chunking,
   variant, interrupt management).  A persistent plan does this exactly once,
   at init, with ``persistent=True`` recorded in the decision telemetry.
2. **reserve** — synchronously claim the invocation's sequence windows (an
   :class:`~repro.core.context.InvocationState`): broadcast/reduce chunk
   sequences, streamed-chunk thresholds, per-edge staging parities, the
   exchange call number.  Reservation at ``start()`` is what lets several
   invocations of one plan be in flight without aliasing a buffer slot.
3. **run the body** — the protocol generator, parameterized by the reserved
   window, executing inside either the caller (blocking) or a spawned
   progress process (nonblocking/persistent).

Ordering guarantees (the MPI persistent/nonblocking collective contract):
within one context (communicator), one rank's requests run in *started*
order — request *k+1*'s body is gated on request *k*'s completion at that
rank — and every rank must start a context's collectives in the same order.
Across contexts there is no ordering: requests on disjoint groups progress
concurrently.  Overlap within one context comes from cross-rank skew (rank 0
can be two invocations ahead of rank 7's wait).

A blocking call is an *inline* request: ``start()`` reserves, ``wait()``
runs the body in the calling process via ``yield from`` — zero extra events,
so the blocking operations are byte-identical to the pre-request code paths.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import InvocationState, SRMContext
from repro.core.internode.allreduce import allreduce_body, reserve_allreduce
from repro.core.internode.barrier import barrier_body
from repro.core.internode.broadcast import broadcast_body, reserve_broadcast
from repro.core.internode.reduce import reduce_body, reserve_reduce
from repro.core.replay import manager_for
from repro.obs.taxonomy import REQUEST
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.dispatch import Decision
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = [
    "CollectiveRequest",
    "PersistentCollective",
    "start_broadcast",
    "start_reduce",
    "start_allreduce",
    "start_barrier",
    "persistent_broadcast",
    "persistent_reduce",
    "persistent_allreduce",
    "persistent_barrier",
]

#: A prepare result: the pinned decision plus the reserve/body closures.
Prepared = tuple[
    "Decision | None",
    typing.Callable[[], InvocationState],
    typing.Callable[[InvocationState], ProcessGenerator],
]


class CollectiveRequest:
    """One rank's handle on one started collective invocation.

    Mirrors an MPI request: :meth:`test` polls completion, :meth:`wait`
    blocks (``yield from request.wait()`` inside a simulated program) and
    returns the operation's value.  Requests of one rank within one context
    are chained in started order; the chain gate is skipped when the
    predecessor already completed — which is always the case for purely
    blocking programs, keeping them byte-identical to the legacy path.
    """

    __slots__ = (
        "ctx",
        "task",
        "op",
        "root",
        "invocation",
        "_body",
        "_process",
        "_predecessor",
        "_completion",
        "_done",
        "_value",
        "_inline",
    )

    def __init__(
        self,
        ctx: SRMContext,
        task: "Task",
        op: str,
        root: int | None,
        invocation: InvocationState,
        body: ProcessGenerator,
        inline: bool,
        deferred: bool = False,
    ) -> None:
        self.ctx = ctx
        self.task = task
        self.op = op
        self.root = root
        self.invocation = invocation
        self._body = body
        self._inline = inline
        self._process = None
        self._completion: Event | None = None
        self._done = False
        self._value: typing.Any = None
        self._predecessor: CollectiveRequest | None = ctx._request_tail.get(task.rank)
        ctx._request_tail[task.rank] = self
        if not inline and not deferred:
            self._spawn()

    def _spawn(self) -> None:
        """Materialize the progress process (idempotent).

        Deferred starts (:mod:`repro.core.replay`) spawn at the next run
        flush when their window cannot replay from a compiled schedule.
        """
        if self._process is not None or self._done:
            return
        self._process = self.task.engine.process(
            self._run(),
            name=f"req:{self.op}[{self.task.rank}]#{self.invocation.sequence}",
        )

    def _replay_complete(self, value: typing.Any) -> None:
        """Complete this request from a compiled-schedule replay."""
        self._done = True
        self._value = value
        if self._completion is not None:
            self._completion.succeed(value)

    # -- state ---------------------------------------------------------------

    @property
    def completed(self) -> bool:
        """True once the operation finished at this rank."""
        process = self._process
        if process is not None:
            return process.triggered
        return self._done

    def test(self) -> bool:
        """Nonblocking completion poll (MPI_Test without the blocking arm)."""
        return self.completed

    def describe(self) -> str:
        """Human-readable identity for deadlock reports and logs."""
        root = "" if self.root is None else f"root={self.root}"
        return f"{self.op}({root})#{self.invocation.sequence} at rank {self.task.rank}"

    def __repr__(self) -> str:
        state = "done" if self.completed else "in-flight"
        return f"<CollectiveRequest {self.describe()} {state}>"

    # -- progress ------------------------------------------------------------

    def _completion_event(self) -> Event:
        """An event firing at this request's completion (for successors)."""
        if self._process is not None:
            return typing.cast(Event, self._process)
        # Inline requests and deferred (replayable) requests complete via an
        # explicit event: wait()'s inline arm or _replay_complete fires it.
        if self._completion is None:
            self._completion = Event(
                self.task.engine, name=f"req-done:{self.op}[{self.task.rank}]"
            )
        return self._completion

    def _gate_on_predecessor(self) -> ProcessGenerator:
        """Block until the previous request of this rank completed.

        The per-rank, per-context started-order chain — MPI's ordering
        guarantee for collectives on one communicator.  A no-op (no events)
        when the predecessor already finished, so blocking programs pay
        nothing.
        """
        predecessor = self._predecessor
        if predecessor is not None and not predecessor.completed:
            yield predecessor._completion_event()
        self._predecessor = None

    def _run(self) -> ProcessGenerator:
        """Progress-process body for nonblocking/persistent requests."""
        yield from self._gate_on_predecessor()
        # Zero-duration marker attributing this process's spans to the
        # owning request (same precedent as the DISPATCH marker).
        with self.task.phase(REQUEST, detail=self.describe()):
            pass
        value = yield from self._body
        self._done = True
        self._value = value
        return value

    def wait(self) -> ProcessGenerator:
        """Complete the request; yields from inside a simulated program.

        Inline (blocking-facade) requests run their body in the calling
        process; process-mode requests join their progress process.  Returns
        the operation's value; waiting an already-completed request returns
        immediately.
        """
        if self._inline:
            if self._done:
                return self._value
            yield from self._gate_on_predecessor()
            value = yield from self._body
            self._done = True
            self._value = value
            if self._completion is not None:
                self._completion.succeed(value)
            return value
        if self._process is None:
            # Deferred start: replayed windows are already done; a wait that
            # somehow precedes the run flush materializes the slow path.
            if self._done:
                return self._value
            self._spawn()
        process = self.task.engine.active_process
        if process is not None:
            process.waiting_request = self
        try:
            value = yield self._process
        finally:
            if process is not None:
                process.waiting_request = None
        return value


class PersistentCollective:
    """A reusable collective plan: bindings pinned at init, started freely.

    The MPI ``MPI_Bcast_init`` shape: arguments are validated, the dispatch
    decision resolved (``persistent=True`` in the decision telemetry), and
    the tree/counter/buffer bindings captured once; every :meth:`start`
    afterwards only reserves an invocation window and spawns the progress
    process — the per-call setup cost is amortized across all starts.
    """

    def __init__(
        self,
        ctx: SRMContext,
        task: "Task",
        op: str,
        root: int | None,
        decision: "Decision | None",
        reserve: typing.Callable[[], InvocationState],
        body: typing.Callable[[InvocationState], ProcessGenerator],
        rebuild: typing.Callable[..., Prepared] | None = None,
    ) -> None:
        self.ctx = ctx
        self.task = task
        self.op = op
        self.root = root
        #: The dispatch decision pinned at init (None for barrier's
        #: decision-light path — only interrupt management is pinned).
        self.decision = decision
        self._reserve = reserve
        self._body = body
        self._rebuild = rebuild
        #: Number of times this plan has been started.
        self.starts = 0
        #: Bumped by :meth:`invalidate`; part of every compiled-schedule key,
        #: so stale traces can never match a rebound plan.
        self._generation = 0

    def prepare_start(self) -> tuple[InvocationState, ProcessGenerator]:
        """The per-start work minus process spawn: reserve a window and
        build the body generator.  Exposed so the selfbench can time the
        setup path without running a simulation."""
        invocation = self._reserve()
        invocation.sequence = self.ctx.next_invocation(self.task.rank)
        return invocation, self._body(invocation)

    def start(self) -> CollectiveRequest:
        """Begin one invocation; returns its request handle.

        When compiled replay is enabled (:attr:`SRMConfig.compiled_replay`)
        and the engine is idle, the start is *deferred*: the next plain
        ``engine.run()`` either replays a cached :class:`CompiledSchedule`
        for the whole window of deferred starts or materializes (and
        records) the slow path.  Starts issued from inside a running
        process always spawn immediately, exactly as before.
        """
        invocation, body = self.prepare_start()
        self.starts += 1
        if self.ctx.config.compiled_replay:
            manager = manager_for(self.task.engine)
            if manager.accepts(self):
                request = CollectiveRequest(
                    self.ctx, self.task, self.op, self.root, invocation, body,
                    inline=False, deferred=True,
                )
                manager.defer(self, invocation, request)
                return request
        return CollectiveRequest(
            self.ctx, self.task, self.op, self.root, invocation, body, inline=False
        )

    def invalidate(self) -> None:
        """Drop every compiled schedule recorded against this plan.

        Must be called (and is called by :meth:`rebind`) whenever the plan's
        buffer bindings change; a replay against stale bindings would move
        the wrong bytes.
        """
        self._generation += 1
        trace = self.task.engine.trace
        if trace is not None:
            trace.invalidate_plan(self)

    def rebind(self, *args: typing.Any, **kwargs: typing.Any) -> "PersistentCollective":
        """Re-prepare this plan against new buffer arguments (in place).

        Arguments mirror the plan's ``persistent_*`` constructor (minus
        ``ctx``/``task``/``root``).  Cached compiled schedules are
        invalidated; the next start re-records.
        """
        if self._rebuild is None:
            raise TypeError(f"persistent {self.op} plan does not support rebind")
        decision, reserve, body = self._rebuild(*args, **kwargs)
        self.decision = decision
        self._reserve = reserve
        self._body = body
        self.invalidate()
        return self

    def __repr__(self) -> str:
        return (
            f"<PersistentCollective {self.op} rank {self.task.rank} "
            f"starts={self.starts}>"
        )


# ---------------------------------------------------------------------------
# per-operation prepare (validate + plan lookup + dispatch + closures)
# ---------------------------------------------------------------------------


def prepare_broadcast(
    ctx: SRMContext,
    task: "Task",
    buffer: np.ndarray,
    root: int = 0,
    persistent: bool = False,
) -> Prepared:
    ctx.validate("broadcast", buffer.nbytes, task.rank, root=root)
    plan = ctx.bcast_plan(root)
    state = ctx.node_state(task)
    decision = ctx.dispatch("broadcast", buffer.nbytes, task, persistent=persistent)
    chunks = list(decision.chunks)
    large = decision.variant == "large"

    def reserve() -> InvocationState:
        return reserve_broadcast(plan, state, task, chunks, large)

    def body(invocation: InvocationState) -> ProcessGenerator:
        return broadcast_body(
            ctx, plan, state, task, buffer, chunks, large,
            decision.manage_interrupts, invocation,
        )

    return decision, reserve, body


def prepare_reduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray | None,
    op: "ReduceOp",
    root: int = 0,
    persistent: bool = False,
) -> Prepared:
    ctx.validate("reduce", src.nbytes, task.rank, root=root)
    plan = ctx.reduce_plan(root)
    state = ctx.node_state(task)
    if task.rank == root and dst is None:
        raise ValueError("the reduce root needs a destination buffer")
    decision = ctx.dispatch("reduce", src.nbytes, task, persistent=persistent)
    chunks = list(decision.chunks)

    def reserve() -> InvocationState:
        return reserve_reduce(plan, state, task, chunks)

    def body(invocation: InvocationState) -> ProcessGenerator:
        return reduce_body(
            ctx, plan, state, task, src, dst, op, chunks, None, invocation
        )

    def managed_body(invocation: InvocationState) -> ProcessGenerator:
        if not decision.manage_interrupts:
            yield from body(invocation)
            return
        task.lapi.set_interrupts(False)
        try:
            yield from body(invocation)
        finally:
            task.lapi.set_interrupts(True)

    return decision, reserve, managed_body


def prepare_allreduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    persistent: bool = False,
) -> Prepared:
    ctx.validate("allreduce", src.nbytes, task.rank)
    if dst.nbytes != src.nbytes:
        raise ValueError(
            f"allreduce dst ({dst.nbytes} B) must match src ({src.nbytes} B)"
        )
    decision = ctx.dispatch("allreduce", src.nbytes, task, persistent=persistent)

    def reserve() -> InvocationState:
        return reserve_allreduce(ctx, task, decision, src.nbytes)

    def body(invocation: InvocationState) -> ProcessGenerator:
        return allreduce_body(ctx, task, src, dst, op, decision, invocation)

    return decision, reserve, body


def prepare_barrier(
    ctx: SRMContext, task: "Task", persistent: bool = False
) -> Prepared:
    ctx.validate("barrier", 0, task.rank)
    decision = ctx.dispatch("barrier", 0, task, persistent=persistent)

    def reserve() -> InvocationState:
        # Barrier needs no sequence window (binary check-in flags, consumed
        # dissemination counters); the chain gate alone orders invocations.
        return InvocationState(op="barrier")

    def body(invocation: InvocationState) -> ProcessGenerator:
        return barrier_body(ctx, task, decision.manage_interrupts)

    return decision, reserve, body


# ---------------------------------------------------------------------------
# start (one-shot request) / persistent constructors
# ---------------------------------------------------------------------------


def _start(
    ctx: SRMContext,
    task: "Task",
    op: str,
    root: int | None,
    prepared: Prepared,
    inline: bool,
) -> CollectiveRequest:
    _decision, reserve, body = prepared
    invocation = reserve()
    invocation.sequence = ctx.next_invocation(task.rank)
    return CollectiveRequest(ctx, task, op, root, invocation, body(invocation), inline)


def start_broadcast(
    ctx: SRMContext, task: "Task", buffer: np.ndarray, root: int = 0, inline: bool = False
) -> CollectiveRequest:
    """Start a (non)blocking broadcast; errors raise here, never mid-schedule."""
    return _start(ctx, task, "broadcast", root, prepare_broadcast(ctx, task, buffer, root), inline)


def start_reduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray | None,
    op: "ReduceOp",
    root: int = 0,
    inline: bool = False,
) -> CollectiveRequest:
    """Start a (non)blocking reduce; errors raise here, never mid-schedule."""
    return _start(ctx, task, "reduce", root, prepare_reduce(ctx, task, src, dst, op, root), inline)


def start_allreduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    inline: bool = False,
) -> CollectiveRequest:
    """Start a (non)blocking allreduce; errors raise here, never mid-schedule."""
    return _start(ctx, task, "allreduce", None, prepare_allreduce(ctx, task, src, dst, op), inline)


def start_barrier(ctx: SRMContext, task: "Task", inline: bool = False) -> CollectiveRequest:
    """Start a (non)blocking barrier."""
    return _start(ctx, task, "barrier", None, prepare_barrier(ctx, task), inline)


def persistent_broadcast(
    ctx: SRMContext, task: "Task", buffer: np.ndarray, root: int = 0
) -> PersistentCollective:
    """Build a persistent broadcast plan over ``buffer`` (bound at init)."""
    decision, reserve, body = prepare_broadcast(ctx, task, buffer, root, persistent=True)
    return PersistentCollective(
        ctx, task, "broadcast", root, decision, reserve, body,
        rebuild=lambda new_buffer: prepare_broadcast(ctx, task, new_buffer, root, persistent=True),
    )


def persistent_reduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray | None,
    op: "ReduceOp",
    root: int = 0,
) -> PersistentCollective:
    """Build a persistent reduce plan (buffers and operator bound at init)."""
    decision, reserve, body = prepare_reduce(ctx, task, src, dst, op, root, persistent=True)
    return PersistentCollective(
        ctx, task, "reduce", root, decision, reserve, body,
        rebuild=lambda new_src, new_dst: prepare_reduce(
            ctx, task, new_src, new_dst, op, root, persistent=True
        ),
    )


def persistent_allreduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> PersistentCollective:
    """Build a persistent allreduce plan (buffers and operator bound at init)."""
    decision, reserve, body = prepare_allreduce(ctx, task, src, dst, op, persistent=True)
    return PersistentCollective(
        ctx, task, "allreduce", None, decision, reserve, body,
        rebuild=lambda new_src, new_dst: prepare_allreduce(
            ctx, task, new_src, new_dst, op, persistent=True
        ),
    )


def persistent_barrier(ctx: SRMContext, task: "Task") -> PersistentCollective:
    """Build a persistent barrier plan."""
    decision, reserve, body = prepare_barrier(ctx, task, persistent=True)
    return PersistentCollective(ctx, task, "barrier", None, decision, reserve, body)
