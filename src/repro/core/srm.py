"""The public SRM collectives facade.

One :class:`SRM` instance per machine owns the persistent shared-memory and
counter state (:class:`~repro.core.context.SRMContext`) and exposes the four
operations of the paper as per-rank generators, mirroring the baseline
stacks' interface so benchmarks can swap implementations.

Usage inside a simulated program::

    srm = SRM(machine)

    def program(task):
        data = np.zeros(1024) if task.rank else np.arange(1024.0)
        yield from srm.broadcast(task, data, root=0)
        ...

    machine.launch(program)

Every collective also exists in **nonblocking** (``ibcast`` et al., returning
a :class:`~repro.core.requests.CollectiveRequest` whose progress runs in its
own process) and **persistent** (``plan_broadcast`` et al., returning a
:class:`~repro.core.requests.PersistentCollective` whose dispatch decision
and buffer bindings are pinned once and replayed per ``start()``) form.  The
blocking methods are themselves implemented as ``start(inline=True)`` +
``wait()`` over the same request layer — one code path, byte-identical to
the historical blocking behaviour.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core import requests as _requests
from repro.core.config import SRMConfig
from repro.core.context import SRMContext
from repro.core.dispatch import SelectionPolicy
from repro.core.internode.gatherscatter import (
    srm_allgather,
    srm_alltoall,
    srm_gather,
    srm_scatter,
)
from repro.core.internode.scan import srm_scan
from repro.core.requests import CollectiveRequest, PersistentCollective
from repro.machine.cluster import Machine
from repro.mpi.ops import SUM, ReduceOp
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["SRM"]


class SRM:
    """Shared-Remote-Memory collective operations (the paper's system).

    ``group`` restricts the operations to an arbitrary subset of ranks (an
    MPI sub-communicator) — the §5 extension.  Each SRM instance owns its
    own shared buffers and counters, so disjoint groups can run collectives
    concurrently on one machine.

    ``policy`` selects the algorithm variant per call through the protocol
    dispatch layer (:mod:`repro.core.dispatch`): the default
    :class:`~repro.core.dispatch.PaperPolicy` reproduces the paper's §2.4
    switch points exactly; pass a
    :class:`~repro.core.dispatch.CostModelPolicy`,
    :class:`~repro.core.dispatch.TunedPolicy` (from ``python -m repro
    tune``), or :class:`~repro.core.dispatch.FixedPolicy` to override.
    """

    name = "SRM"

    def __init__(
        self,
        machine: Machine,
        config: SRMConfig | None = None,
        group: typing.Iterable[int] | None = None,
        policy: "SelectionPolicy | None" = None,
    ) -> None:
        self.machine = machine
        self.config = config if config is not None else SRMConfig()
        self.ctx = SRMContext(machine, self.config, members=group, policy=policy)

    @property
    def policy(self) -> "SelectionPolicy":
        """The active selection policy (see :mod:`repro.core.dispatch`)."""
        return self.ctx.dispatcher.policy

    @property
    def members(self) -> tuple[int, ...]:
        """The participating global ranks (all ranks by default)."""
        return self.ctx.members

    def broadcast(self, task: "Task", buffer: np.ndarray, root: int = 0) -> ProcessGenerator:
        """Broadcast ``buffer`` from ``root`` to every member (in place)."""
        request = _requests.start_broadcast(self.ctx, task, buffer, root, inline=True)
        yield from request.wait()

    def reduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> ProcessGenerator:
        """Combine every member's ``src`` with ``op`` into ``root``'s ``dst``."""
        request = _requests.start_reduce(self.ctx, task, src, dst, op, root, inline=True)
        yield from request.wait()

    def allreduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Combine every member's ``src`` into every member's ``dst``."""
        request = _requests.start_allreduce(self.ctx, task, src, dst, op, inline=True)
        yield from request.wait()

    def barrier(self, task: "Task") -> ProcessGenerator:
        """Synchronize all members."""
        request = _requests.start_barrier(self.ctx, task, inline=True)
        yield from request.wait()

    # -- nonblocking one-shots (MPI_I* shape) ------------------------------

    def ibcast(self, task: "Task", buffer: np.ndarray, root: int = 0) -> CollectiveRequest:
        """Start a nonblocking broadcast; complete with ``yield from
        request.wait()``.  Argument errors raise here, never mid-schedule."""
        return _requests.start_broadcast(self.ctx, task, buffer, root)

    def ireduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> CollectiveRequest:
        """Start a nonblocking reduce."""
        return _requests.start_reduce(self.ctx, task, src, dst, op, root)

    def iallreduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> CollectiveRequest:
        """Start a nonblocking allreduce."""
        return _requests.start_allreduce(self.ctx, task, src, dst, op)

    def ibarrier(self, task: "Task") -> CollectiveRequest:
        """Start a nonblocking barrier."""
        return _requests.start_barrier(self.ctx, task)

    # -- persistent plans (MPI_*_init shape): plan once, start repeatedly --

    def plan_broadcast(
        self, task: "Task", buffer: np.ndarray, root: int = 0
    ) -> PersistentCollective:
        """A persistent broadcast of ``buffer`` from ``root``: the dispatch
        decision, tree embedding, and buffer binding are pinned now; each
        ``plan.start()`` only reserves a sequence window and goes."""
        return _requests.persistent_broadcast(self.ctx, task, buffer, root)

    def plan_reduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> PersistentCollective:
        """A persistent reduce plan (buffers and operator bound at init)."""
        return _requests.persistent_reduce(self.ctx, task, src, dst, op, root)

    def plan_allreduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> PersistentCollective:
        """A persistent allreduce plan (buffers and operator bound at init)."""
        return _requests.persistent_allreduce(self.ctx, task, src, dst, op)

    def plan_barrier(self, task: "Task") -> PersistentCollective:
        """A persistent barrier plan."""
        return _requests.persistent_barrier(self.ctx, task)

    # -- block-data extensions (RMA-native, see internode/gatherscatter) --

    def scatter(
        self,
        task: "Task",
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> ProcessGenerator:
        """Distribute ``root``'s blocks: member *i* receives block *i*."""
        yield from srm_scatter(self.ctx, task, sendbuf, recvbuf, root)

    def gather(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> ProcessGenerator:
        """Collect every member's block into ``root``'s ``recvbuf``."""
        yield from srm_gather(self.ctx, task, sendbuf, recvbuf, root)

    def allgather(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
    ) -> ProcessGenerator:
        """Every member's block, concatenated, delivered to every member."""
        yield from srm_allgather(self.ctx, task, sendbuf, recvbuf)

    def alltoall(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
    ) -> ProcessGenerator:
        """Personalized exchange: my block *j* reaches member *j*."""
        yield from srm_alltoall(self.ctx, task, sendbuf, recvbuf)

    def scan(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Inclusive prefix reduction in group-member order."""
        yield from srm_scan(self.ctx, task, src, dst, op)

    def reduce_scatter(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Block-regular reduce-scatter: ``dst`` gets my block of the sum
        (composed from reduce + the RMA-native scatter)."""
        members = self.ctx.members
        if src.nbytes != dst.nbytes * len(members):
            raise ValueError("reduce_scatter src must hold one block per member")
        root = self.ctx.group_root
        scratch = (
            np.empty(src.reshape(-1).shape, dtype=src.dtype)
            if task.rank == root
            else None
        )
        yield from self.reduce(task, src, scratch, op, root=root)
        yield from self.scatter(task, scratch, dst, root=root)
