"""Protocol dispatch: the algorithm registry and pluggable selection policies.

The paper hardwires its §2.4 switch points — 64 KB for the broadcast
small→large protocol change, 8 KB for pipelining, 16 KB for the allreduce
recursive-doubling cutoff — as scattered ``if`` checks against
:class:`~repro.core.config.SRMConfig`.  Barchet-Estefanel & Mounié ("Fast
Tuning of Intra-Cluster Collective Communications") argue those cutoffs
should be *measured per machine*, and De Sensi et al. treat algorithm choice
as a first-class swappable decision.  This module makes the paper's
thresholds one policy among several:

* an **algorithm registry** — every collective variant (small / pipelined /
  large broadcast, exchange / pipeline / ring allreduce, gather+bcast / ring
  allgather, the §2.1 tree families, …) registers itself with a declarative
  *applicability predicate* (can this variant run structurally, given the
  buffer capacities of the current config?) and an analytic *cost-estimate
  hook* over the machine's :class:`~repro.machine.costmodel.CostModel`;
* :class:`SelectionPolicy` objects that pick one registered variant per
  ``(op, nbytes, nodes, ppn)`` call:

  - :class:`PaperPolicy` — reproduces the §2.4 ``if``-chains exactly (the
    default; byte-for-byte identical selections to the pre-dispatch code);
  - :class:`CostModelPolicy` — picks the cheapest applicable variant by the
    registry's analytic cost estimates;
  - :class:`TunedPolicy` — loads a *measured* decision table produced by
    ``python -m repro tune`` (see :mod:`repro.bench.tune`);
  - :class:`FixedPolicy` — forces named variants (the tuner's probe, also
    handy for ablations);

* a per-context :class:`Dispatcher` that caches decisions (selection is
  pure in ``(op, nbytes)`` once the context shape is fixed, so the hot path
  pays one dict hit), records every selection as a ``dispatch.<op>.<variant>``
  counter, and marks each *distinct* decision with a zero-duration
  ``dispatch`` span whose detail names the chosen variant — so traces and
  the critical-path profiler show *which* protocol ran.

Every decision is validated against the variant's applicability predicate;
a policy that picks a structurally impossible variant (e.g. the exchange
allreduce for a message larger than its staging buffers) falls back to the
:class:`PaperPolicy` choice and bumps the ``dispatch.fallbacks`` counter
instead of corrupting shared buffers.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass, field

from repro.core.config import SRMConfig
from repro.errors import ConfigurationError
from repro.obs.calib import DecisionRecord
from repro.obs.taxonomy import DISPATCH

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import SRMContext
    from repro.machine.costmodel import CostModel

__all__ = [
    "SelectionEnv",
    "Variant",
    "Decision",
    "register_variant",
    "variants_for",
    "variant",
    "registered_ops",
    "SelectionPolicy",
    "PaperPolicy",
    "CostModelPolicy",
    "TunedPolicy",
    "FixedPolicy",
    "Dispatcher",
    "lookup_variant",
    "predict_terms",
    "TUNED_TABLE_KIND",
    "TUNED_TABLE_SCHEMA_VERSION",
]

KB = 1024

#: Document marker + schema version of the ``repro tune`` decision-table
#: artifact (serialized like a bench snapshot: sorted keys, indent 1).
TUNED_TABLE_KIND = "repro-tuned-policy"
TUNED_TABLE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# selection environment + registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectionEnv:
    """Everything a policy may condition one selection on."""

    op: str
    nbytes: int
    #: Participating nodes (the inter-node fan-out width).
    nodes: int
    #: Largest per-node member count (the SMP fan-out width).
    ppn: int
    config: SRMConfig
    #: The machine's cost model (None outside a machine, e.g. unit tests).
    cost: "CostModel | None" = None

    @property
    def total_tasks(self) -> int:
        return self.nodes * self.ppn


@dataclass(frozen=True)
class Variant:
    """One registered algorithm variant of one collective operation."""

    op: str
    name: str
    description: str
    #: Structural applicability: can this variant run at all for this env
    #: (buffer capacities, node counts) — *not* whether it would be fast.
    applicable: typing.Callable[[SelectionEnv], bool]
    #: Analytic latency estimate in seconds (used by CostModelPolicy; a
    #: coarse model is fine — only the *ordering* between variants matters).
    cost: typing.Callable[[SelectionEnv], float]
    #: Optional hook returning a config under which this variant becomes
    #: structurally applicable at ``nbytes`` (the tuner uses it to probe
    #: beyond the default capacity thresholds).
    tune_config: typing.Callable[[SRMConfig, int], SRMConfig] | None = None
    #: Human-readable statement of the structural precondition behind
    #: ``applicable`` — surfaced as the reason in fallback marker spans.
    #: Empty for unconditionally applicable variants.
    requires: str = ""

    def __repr__(self) -> str:
        return f"<Variant {self.op}/{self.name}>"


#: op -> {variant name -> Variant}, in registration order.
_REGISTRY: dict[str, dict[str, Variant]] = {}


def register_variant(entry: Variant) -> Variant:
    """Add one variant to the registry (idempotent re-registration is an error)."""
    per_op = _REGISTRY.setdefault(entry.op, {})
    if entry.name in per_op:
        raise ConfigurationError(
            f"variant {entry.op}/{entry.name} is already registered"
        )
    per_op[entry.name] = entry
    return entry


def variant(op: str, name: str, description: str = "", **kwargs) -> typing.Callable:
    """Decorator form: the decorated callable is the cost hook."""

    def wrap(cost_fn: typing.Callable[[SelectionEnv], float]) -> Variant:
        return register_variant(
            Variant(op=op, name=name, description=description, cost=cost_fn, **kwargs)
        )

    return wrap


def variants_for(op: str) -> list[Variant]:
    """All registered variants of ``op``, in registration order."""
    try:
        return list(_REGISTRY[op].values())
    except KeyError:
        raise ConfigurationError(
            f"no variants registered for operation {op!r}; "
            f"known operations: {sorted(_REGISTRY)}"
        ) from None


def lookup_variant(op: str, name: str) -> Variant:
    """The registered variant ``op/name``."""
    per_op = _REGISTRY.get(op, {})
    try:
        return per_op[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {name!r} for operation {op!r}; "
            f"registered: {sorted(per_op)}"
        ) from None


def registered_ops() -> list[str]:
    """Every operation with at least one registered variant."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# the registered variants
# ---------------------------------------------------------------------------
#
# Cost estimates use the standard postal-style decomposition: an inter-node
# tree of depth ceil(log2 k) whose edges cost wire_time(payload), an SMP
# fan-out of depth ~log2(ppn) in copy_time, and pipelines charging
# (depth + chunks - 1) stage times.  They are deliberately coarse — the
# simulator itself is the precise model; these only rank variants.


def _log2ceil(n: int) -> int:
    return max(0, (max(1, n) - 1).bit_length())


def _chunk_count(nbytes: int, chunk: int) -> int:
    return max(1, math.ceil(nbytes / max(1, chunk)))


def _smp_fanout(env: SelectionEnv, nbytes: int) -> float:
    assert env.cost is not None
    return _log2ceil(env.ppn) * env.cost.copy_time(nbytes)


def _bcast_small_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    depth = _log2ceil(env.nodes)
    return depth * env.cost.wire_time(env.nbytes) + _smp_fanout(env, env.nbytes)


def _bcast_pipelined_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    chunk = env.config.pipeline_chunk
    stages = _log2ceil(env.nodes) + _chunk_count(env.nbytes, chunk) - 1
    return stages * env.cost.wire_time(chunk) + _smp_fanout(env, chunk)


def _bcast_large_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    chunk = env.config.large_chunk
    depth = _log2ceil(env.nodes)
    address_exchange = depth * env.cost.wire_time(0)
    stages = depth + _chunk_count(env.nbytes, chunk) - 1
    return address_exchange + stages * env.cost.wire_time(min(chunk, env.nbytes)) + _smp_fanout(env, chunk)


def _fits_shared_buffer(env: SelectionEnv) -> bool:
    return env.nbytes <= env.config.shared_buffer_bytes


def _raise_small_protocol(config: SRMConfig, nbytes: int) -> SRMConfig:
    """A config whose shared buffers hold ``nbytes`` in one small-protocol chunk."""
    if nbytes <= config.pipeline_min:
        return config
    return config.evolve(
        pipeline_min=nbytes,
        small_protocol_max=max(config.small_protocol_max, nbytes),
    )


for _op in ("broadcast", "reduce"):
    register_variant(
        Variant(
            op=_op,
            name="small",
            description="one chunk through the Fig. 3/Fig. 2 shared buffers",
            applicable=_fits_shared_buffer,
            cost=_bcast_small_cost,
            tune_config=_raise_small_protocol,
            requires="message fits one shared-buffer chunk",
        )
    )
    register_variant(
        Variant(
            op=_op,
            name="pipelined",
            description="4 KB chunks alternating the two shared buffers (§2.2)",
            applicable=lambda env: True,
            cost=_bcast_pipelined_cost,
            tune_config=lambda config, nbytes: config.evolve(
                small_protocol_max=max(config.small_protocol_max, nbytes)
            ),
        )
    )
    register_variant(
        Variant(
            op=_op,
            name="large",
            description="streamed direct-to-user-buffer protocol (Fig. 4 right)",
            applicable=lambda env: True,
            cost=_bcast_large_cost,
        )
    )


def _allreduce_exchange_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    rounds = _log2ceil(env.nodes)
    per_round = env.cost.wire_time(env.nbytes) + env.cost.reduce_time(env.nbytes)
    return rounds * per_round + 2 * _smp_fanout(env, env.nbytes)


def _allreduce_pipeline_cost(env: SelectionEnv) -> float:
    # Reduce-to-root and broadcast-from-root overlapped chunk-by-chunk.
    return _bcast_pipelined_cost(env) + _bcast_large_cost(env)


def _allreduce_ring_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    k = max(1, env.nodes)
    segment = env.nbytes / k
    steps = 2 * (k - 1)
    return steps * env.cost.wire_time(segment) + 2 * _smp_fanout(env, env.nbytes)


register_variant(
    Variant(
        op="allreduce",
        name="exchange",
        description="SMP reduce + recursive-doubling pairwise exchange (§2.2)",
        applicable=lambda env: env.nbytes <= max(env.config.allreduce_exchange_max, 1),
        cost=_allreduce_exchange_cost,
        tune_config=lambda config, nbytes: config.evolve(
            allreduce_exchange_max=max(config.allreduce_exchange_max, nbytes)
        ),
        requires="message fits the exchange staging buffers (allreduce_exchange_max)",
    )
)
register_variant(
    Variant(
        op="allreduce",
        name="pipeline",
        description="concurrent reduce+broadcast four-stage pipeline (Fig. 5)",
        applicable=lambda env: True,
        cost=_allreduce_pipeline_cost,
    )
)
register_variant(
    Variant(
        op="allreduce",
        name="ring",
        description="hierarchical ring reduce-scatter + allgather over masters",
        # Needs one element per ring segment; reductions run on doubles
        # (§3), so require 8 bytes per participating node.
        applicable=lambda env: env.nodes > 1 and env.nbytes >= 8 * env.nodes,
        cost=_allreduce_ring_cost,
        requires=">1 node and >= one 8-byte element per ring segment",
    )
)


def _allgather_gather_bcast_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    depth = _log2ceil(env.nodes)
    return 2 * depth * env.cost.wire_time(env.nbytes) + _smp_fanout(env, env.nbytes)


def _allgather_ring_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    k = max(1, env.nodes)
    segment = env.nbytes / k
    return (k - 1) * env.cost.wire_time(segment) + _smp_fanout(env, env.nbytes)


register_variant(
    Variant(
        op="allgather",
        name="gather-bcast",
        description="gather to the group root composed with an SRM broadcast",
        applicable=lambda env: True,
        cost=_allgather_gather_bcast_cost,
    )
)
register_variant(
    Variant(
        op="allgather",
        name="ring",
        description="hierarchical master ring with shared-memory ends",
        applicable=lambda env: env.nodes > 1,
        cost=_allgather_ring_cost,
        tune_config=lambda config, nbytes: config.evolve(
            allgather_ring_min=min(config.allgather_ring_min, max(1, nbytes - 1))
        ),
        requires=">1 node (a single-node ring has no masters to rotate)",
    )
)


def _single_variant_cost(env: SelectionEnv) -> float:
    assert env.cost is not None
    return _log2ceil(env.nodes) * env.cost.wire_time(env.nbytes)


for _op, _name, _desc in (
    ("scatter", "rma-direct", "registration puts + one direct put per block"),
    ("gather", "rma-direct", "epoch broadcast + one direct put per block"),
    ("alltoall", "rma-direct", "window barrier + size-1 direct puts per member"),
    ("barrier", "dissemination", "flat SMP check-in + dissemination exchange"),
    ("scan", "chained", "SMP prefix chain + sequential inter-node base chain"),
):
    register_variant(
        Variant(
            op=_op,
            name=_name,
            description=_desc,
            applicable=lambda env: True,
            cost=_single_variant_cost,
        )
    )


def _tree_cost(rounds_of: typing.Callable[[int], float]) -> typing.Callable[[SelectionEnv], float]:
    def cost(env: SelectionEnv) -> float:
        assert env.cost is not None
        return rounds_of(env.nodes) * env.cost.wire_time(env.nbytes)

    return cost


#: The §2.1 tree families, selectable per call site (inter-node tree and the
#: intra-node reduce tree).  The paper found binomial best on its platform;
#: a flat tree wins when the root can inject faster than the fan-out depth
#: costs, which is exactly what a tuned policy can measure.
for _tree_op in ("inter-tree", "intra-reduce-tree"):
    register_variant(
        Variant(
            op=_tree_op, name="binomial", description="binomial tree (§2.1 best)",
            applicable=lambda env: True,
            cost=_tree_cost(lambda k: _log2ceil(k)),
        )
    )
    register_variant(
        Variant(
            op=_tree_op, name="binary", description="complete binary tree",
            applicable=lambda env: True,
            cost=_tree_cost(lambda k: 2.0 * _log2ceil(k)),
        )
    )
    register_variant(
        Variant(
            op=_tree_op, name="fibonacci", description="postal-model λ-tree",
            applicable=lambda env: True,
            cost=_tree_cost(lambda k: 1.44 * _log2ceil(k)),
        )
    )
    register_variant(
        Variant(
            op=_tree_op, name="flat", description="root parents everyone",
            applicable=lambda env: True,
            cost=_tree_cost(lambda k: max(0, k - 1)),
        )
    )


def predict_terms(entry: Variant, env: SelectionEnv) -> tuple[dict[str, float], float]:
    """One variant's predicted cost, broken down per cost-model term.

    Evaluates ``entry``'s cost hook against the cost model's
    :meth:`~repro.machine.costmodel.CostModel.probe` — a facade whose
    primitives return single-term :class:`~repro.machine.costmodel.CostTerms`
    expressions instead of floats.  Because every registered hook is a
    linear combination of those primitives, the expression algebra carries
    each term's contribution through multiplications and sums symbolically:
    no hook changes, and the breakdown's total equals the plain-float
    estimate exactly (asserted over the whole registry by
    ``tests/test_machine_costmodel.py``).

    Returns ``(terms, total)`` in **seconds**: ``terms`` maps term names
    (:data:`~repro.machine.costmodel.COST_TERMS`, plus ``"other"`` for any
    constant contributions) to their share of the estimate.
    """
    from repro.machine.costmodel import CostModel, CostTerms

    cost = env.cost
    if cost is None:
        cost = CostModel.ibm_sp_colony()
    probe_env = SelectionEnv(
        op=env.op, nbytes=env.nbytes, nodes=env.nodes, ppn=env.ppn,
        config=env.config, cost=cost.probe(),
    )
    estimate = CostTerms.coerce(entry.cost(probe_env))
    return estimate.as_dict(), estimate.total


# ---------------------------------------------------------------------------
# decisions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decision:
    """One resolved selection: the variant plus its derived execution plan."""

    op: str
    variant: str
    nbytes: int
    #: The chunking the chosen variant implies (empty for ops that manage
    #: their own segmentation, e.g. the ring allgather).
    chunks: tuple[tuple[int, int], ...] = ()
    #: Whether the §2.3 interrupt management applies under this variant.
    manage_interrupts: bool = False
    #: The policy that produced the decision (for traces and debugging).
    policy: str = "paper"
    #: True when the policy's first choice was structurally inapplicable and
    #: the dispatcher substituted the PaperPolicy selection.
    fallback: bool = False


def _tile(nbytes: int, chunk: int) -> tuple[tuple[int, int], ...]:
    if nbytes == 0:
        return ((0, 0),)
    return tuple(
        (offset, min(chunk, nbytes - offset)) for offset in range(0, nbytes, chunk)
    )


def derive_chunks(config: SRMConfig, op: str, variant_name: str, nbytes: int) -> tuple[tuple[int, int], ...]:
    """The chunk schedule a variant implies (mirrors ``SRMConfig.chunks``).

    Under :class:`PaperPolicy` this reproduces ``config.chunks(nbytes)``
    exactly; under other policies the chunking follows the *selected*
    variant, not the config thresholds (a "large" broadcast of 32 KB streams
    one 32 KB chunk, a "small" one moves it through the shared buffers).
    """
    if nbytes < 0:
        raise ConfigurationError(f"message size must be >= 0, got {nbytes}")
    if op in ("broadcast", "reduce"):
        if variant_name == "small":
            return ((0, nbytes),)
        if variant_name == "pipelined":
            return _tile(nbytes, config.pipeline_chunk)
        return _tile(nbytes, config.large_chunk)
    if op == "allreduce" and variant_name == "pipeline":
        # The Fig. 5 pipeline shares its chunk schedule between its reduce
        # and broadcast stages; the schedule follows the message size the
        # way the standalone operations would chunk it.
        if nbytes <= config.pipeline_min:
            return ((0, nbytes),)
        chunk = config.large_chunk if config.is_large(nbytes) else config.pipeline_chunk
        return _tile(nbytes, chunk)
    return ()


def _manage_interrupts(config: SRMConfig, op: str, variant_name: str) -> bool:
    """§2.3 interrupt management: only polling (shared-buffer) protocols
    disable interrupts for the duration; the streamed/overlapped variants
    leave them on because their helper processes rely on arrival dispatch."""
    if not config.manage_interrupts:
        return False
    if op in ("broadcast", "reduce"):
        return variant_name != "large"
    if op == "allreduce":
        return variant_name == "exchange"
    if op == "barrier":
        return True
    return False


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class SelectionPolicy:
    """Picks one registered variant per ``(op, nbytes, nodes, ppn)`` call."""

    name = "base"

    def select(self, env: SelectionEnv) -> str:
        """Return the name of the variant to run (must be registered)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class PaperPolicy(SelectionPolicy):
    """The paper's §2.4 switch points, verbatim (the default policy).

    Selections are byte-for-byte identical to the pre-dispatch ``if``-chains
    (asserted across the whole bench grid by ``tests/test_dispatch.py``).
    """

    name = "paper"

    def select(self, env: SelectionEnv) -> str:
        config = env.config
        if env.op in ("broadcast", "reduce"):
            if env.nbytes <= config.pipeline_min:
                return "small"
            if env.nbytes <= config.small_protocol_max:
                return "pipelined"
            return "large"
        if env.op == "allreduce":
            if env.nbytes <= config.allreduce_exchange_max:
                return "exchange"
            if config.allreduce_algorithm == "ring" and env.nodes > 1:
                return "ring"
            return "pipeline"
        if env.op == "allgather":
            if env.nbytes > config.allgather_ring_min and env.nodes > 1:
                return "ring"
            return "gather-bcast"
        if env.op == "inter-tree":
            return config.inter_family
        if env.op == "intra-reduce-tree":
            return config.intra_reduce_family
        # Single-variant operations: the first (only) registered variant.
        return variants_for(env.op)[0].name


class CostModelPolicy(SelectionPolicy):
    """Pick the cheapest applicable variant by the registry's cost hooks.

    Analytic, no measurement: queries each variant's estimate over the
    machine's :class:`~repro.machine.costmodel.CostModel` and takes the
    argmin (ties break toward registration order).  A coarse forecast —
    for measured switch points use :class:`TunedPolicy`.
    """

    name = "costmodel"

    def __init__(self, cost: "CostModel | None" = None) -> None:
        #: Overrides the machine's cost model when given (for what-if runs).
        self.cost = cost

    def select(self, env: SelectionEnv) -> str:
        cost = self.cost if self.cost is not None else env.cost
        if cost is None:
            from repro.machine.costmodel import CostModel

            cost = CostModel.ibm_sp_colony()
        env = SelectionEnv(
            op=env.op, nbytes=env.nbytes, nodes=env.nodes, ppn=env.ppn,
            config=env.config, cost=cost,
        )
        candidates = [v for v in variants_for(env.op) if v.applicable(env)]
        if not candidates:
            raise ConfigurationError(
                f"no applicable variant for {env.op} at {env.nbytes} B"
            )
        return min(candidates, key=lambda v: v.cost(env)).name


class FixedPolicy(SelectionPolicy):
    """Force named variants per operation; everything else falls through.

    ``FixedPolicy({"allreduce": "ring"})`` is the tuner's probe and the
    ablation benchmarks' lever.
    """

    name = "fixed"

    def __init__(
        self,
        choices: typing.Mapping[str, str],
        fallback: SelectionPolicy | None = None,
    ) -> None:
        for op, name in choices.items():
            lookup_variant(op, name)  # fail fast on typos
        self.choices = dict(choices)
        self.fallback = fallback if fallback is not None else PaperPolicy()

    def select(self, env: SelectionEnv) -> str:
        chosen = self.choices.get(env.op)
        if chosen is not None:
            return chosen
        return self.fallback.select(env)


class TunedPolicy(SelectionPolicy):
    """Selections from a measured decision table (``python -m repro tune``).

    The table maps ``op -> nodes -> [[nbytes, variant], ...]`` (sizes
    ascending): the winner measured at each grid cell.  Lookup picks the
    nodes row with the nearest log2 node count, then the first grid size at
    or above the requested ``nbytes`` (the last row when the request exceeds
    the grid).  Operations absent from the table fall through to
    ``fallback`` (the paper policy by default), as does any tuned choice
    that is structurally inapplicable under the live config — the
    dispatcher enforces applicability on every decision.
    """

    name = "tuned"

    def __init__(
        self,
        document: typing.Mapping[str, typing.Any],
        fallback: SelectionPolicy | None = None,
    ) -> None:
        if document.get("kind") != TUNED_TABLE_KIND:
            raise ConfigurationError(
                f"not a {TUNED_TABLE_KIND} document (kind={document.get('kind')!r})"
            )
        version = document.get("schema_version")
        if version != TUNED_TABLE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"tuned-policy schema mismatch: document v{version}, this "
                f"tool speaks v{TUNED_TABLE_SCHEMA_VERSION} — re-run "
                f"'python -m repro tune'"
            )
        table = document.get("table")
        if not isinstance(table, dict) or not table:
            raise ConfigurationError("tuned-policy document has no decision table")
        for op, rows_by_nodes in table.items():
            for nodes_key, rows in rows_by_nodes.items():
                int(nodes_key)  # keys are stringified node counts (JSON)
                for row in rows:
                    nbytes, name = row[0], row[1]
                    if nbytes < 0:
                        raise ConfigurationError(
                            f"tuned table {op}@{nodes_key}: negative size {nbytes}"
                        )
                    lookup_variant(op, name)
        self.document = dict(document)
        self.table: dict[str, dict[int, list[tuple[int, str]]]] = {
            op: {
                int(nodes_key): sorted((int(row[0]), str(row[1])) for row in rows)
                for nodes_key, rows in rows_by_nodes.items()
            }
            for op, rows_by_nodes in table.items()
        }
        self.fallback = fallback if fallback is not None else PaperPolicy()

    @classmethod
    def load(cls, path: str, fallback: SelectionPolicy | None = None) -> "TunedPolicy":
        """Load a decision table emitted by ``python -m repro tune``.

        Tables carry the cost-model identity fingerprint they were measured
        under; when it differs from this build's fingerprint the table's
        switch points are stale, so the load warns (naming both fingerprints
        and the file) instead of silently proceeding.
        """
        import json

        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        recorded = document.get("fingerprint")
        if recorded is not None:
            import warnings

            from repro.bench.export import bench_identity, identity_fingerprint

            identity = document.get("identity") or {}
            live = identity_fingerprint(
                bench_identity(tasks_per_node=identity.get("tasks_per_node", 16))
            )
            if live != recorded:
                warnings.warn(
                    f"tuned table {path!r} was measured under cost-model "
                    f"fingerprint {recorded} but this build fingerprints as "
                    f"{live}; its switch points may be stale — re-run "
                    f"'python -m repro tune'",
                    UserWarning,
                    stacklevel=2,
                )
        return cls(document, fallback=fallback)

    def select(self, env: SelectionEnv) -> str:
        rows_by_nodes = self.table.get(env.op)
        if not rows_by_nodes:
            return self.fallback.select(env)
        nodes = max(1, env.nodes)
        nearest = min(
            rows_by_nodes, key=lambda n: (abs(math.log2(n) - math.log2(nodes)), n)
        )
        rows = rows_by_nodes[nearest]
        for max_nbytes, name in rows:
            if env.nbytes <= max_nbytes:
                return name
        return rows[-1][1]


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------


class Dispatcher:
    """Per-context decision point: policy + cache + observability.

    Selection is pure in ``(op, nbytes)`` once a context exists (the node
    count, per-node member counts, and config are fixed), so decisions are
    cached and the per-call overhead is one dict lookup plus a counter
    increment — the ``tune-check`` CI step holds the perf gate to that.
    """

    def __init__(self, ctx: "SRMContext", policy: SelectionPolicy | None = None) -> None:
        self.ctx = ctx
        self.policy = policy if policy is not None else PaperPolicy()
        self._paper = self.policy if isinstance(self.policy, PaperPolicy) else PaperPolicy()
        self._cache: dict[
            tuple[str, int], tuple[Decision, typing.Any, DecisionRecord | None]
        ] = {}
        metrics = ctx.machine.obs.metrics
        self._fallbacks = metrics.counter(
            "dispatch.fallbacks", "policy choices overridden as inapplicable"
        )

    def env(self, op: str, nbytes: int) -> SelectionEnv:
        """The selection environment of this context for one call."""
        return SelectionEnv(
            op=op,
            nbytes=nbytes,
            nodes=len(self.ctx.nodes),
            ppn=max(state.size for state in self.ctx.nodes.values()),
            config=self.ctx.config,
            cost=self.ctx.machine.cost,
        )

    def decide(
        self, op: str, nbytes: int, task: typing.Any = None, persistent: bool = False
    ) -> Decision:
        """Resolve (and record) the variant for one collective call.

        ``persistent=True`` marks the decision telemetry: the selection is
        being pinned into a persistent plan and amortized across its starts
        rather than re-resolved per call.
        """
        key = (op, nbytes)
        cached = self._cache.get(key)
        if cached is not None:
            decision, counter, record = cached
            counter.inc()
            if record is not None:
                record.calls += 1
                record.cache_hits += 1
                if persistent:
                    record.persistent = True
            return decision

        env = self.env(op, nbytes)
        chosen = self.policy.select(env)
        entry = lookup_variant(op, chosen)
        fallback = False
        fallback_from: str | None = None
        reason = ""
        if not entry.applicable(env):
            fallback_from = chosen
            reason = entry.requires or "structurally inapplicable"
            chosen = self._paper.select(env)
            entry = lookup_variant(op, chosen)
            fallback = True
            self._fallbacks.inc()
        decision = Decision(
            op=op,
            variant=chosen,
            nbytes=nbytes,
            chunks=derive_chunks(env.config, op, chosen, nbytes),
            manage_interrupts=_manage_interrupts(env.config, op, chosen),
            policy=self.policy.name,
            fallback=fallback,
        )
        counter = self.ctx.machine.obs.metrics.counter(
            f"dispatch.{op}.{chosen}", f"calls dispatched to the {chosen} {op}"
        )
        counter.inc()
        # Decision telemetry (one 'is None' test when observability is off):
        # record the full prediction context — every registered variant's
        # per-term cost breakdown — alongside what was chosen.  Purely
        # passive: no metrics instruments, no simulated-time effects, so
        # snapshots stay byte-identical with recording live.
        record = None
        decisions = self.ctx.machine.obs.decisions
        if decisions is not None:
            predictions: dict[str, dict] = {}
            for candidate in variants_for(op):
                terms_seconds, total_seconds = predict_terms(candidate, env)
                predictions[candidate.name] = {
                    "applicable": bool(candidate.applicable(env)),
                    "total_us": total_seconds * 1e6,
                    "terms_us": {
                        term: seconds * 1e6
                        for term, seconds in terms_seconds.items()
                    },
                }
            record = decisions.record(
                DecisionRecord(
                    op=op,
                    nbytes=nbytes,
                    nodes=env.nodes,
                    ppn=env.ppn,
                    policy=self.policy.name,
                    chosen=chosen,
                    fallback=fallback,
                    fallback_from=fallback_from,
                    predictions=predictions,
                    persistent=persistent,
                )
            )
        # Mark each *distinct* decision once in the trace: a zero-duration
        # span whose detail names the selection — and, on fallback, the
        # overridden choice with its inapplicability reason — so exports and
        # the profiler show which protocol ran without perturbing attribution.
        if task is not None:
            detail = f"{op}/{chosen}:{nbytes}B"
            if fallback_from is not None:
                detail += f" <- {fallback_from} inapplicable: {reason}"
            with task.phase(DISPATCH, detail=detail):
                pass
        self._cache[key] = (decision, counter, record)
        return decision

    def tree_family(self, op: str) -> str:
        """The tree family a plan should use (``inter-tree`` /
        ``intra-reduce-tree``), resolved through the policy."""
        return self.decide(op, 0).variant

    def selections(self) -> dict[str, str]:
        """Resolved ``op/nbytes -> variant`` pairs so far (for reports)."""
        return {
            f"{op}:{nbytes}": decision.variant
            for (op, nbytes), (decision, _counter, _record) in sorted(self._cache.items())
        }

    def __repr__(self) -> str:
        return f"<Dispatcher policy={self.policy.name} decisions={len(self._cache)}>"
