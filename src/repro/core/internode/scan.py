"""Hierarchical inclusive scan (prefix reduction) — extension operation.

``dst_i = src_0 OP src_1 OP ... OP src_i`` in group-member order.  The SRM
structure mirrors the other operations — heavy lifting in shared memory, one
network hop per node:

1. **SMP prefix chain**: member *i* combines member *i-1*'s prefix slot with
   its own contribution in shared memory; the last member's prefix is the
   node total.
2. **Inter-node chain**: masters forward the running *exclusive* node base
   along the node order with one put per node (a scan's cross-node data
   dependency is inherently sequential; each byte crosses the network once).
3. **Base distribution**: the master publishes its node's exclusive base in
   a shared slot; every member combines it with its local prefix into the
   destination.

Messages larger than a shared slot flow chunk-wise (the operator is
element-wise, so chunks are independent): chunk *c+1*'s SMP chain overlaps
chunk *c*'s network hop.  Every shared slot is double-buffered with
cumulative written/consumed flags, so producers run at most two chunks
ahead of their slowest consumer — the same discipline as the SMP reduce.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import SRMContext
from repro.errors import ConfigurationError
from repro.lapi.counters import LapiCounter
from repro.obs.taxonomy import SCAN_CHUNK
from repro.shmem.flags import FlagArray, SharedFlag
from repro.shmem.segment import SharedSegment
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["srm_scan", "ScanPlan"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


class ScanPlan:
    """Per-node prefix slots (double-buffered) and the inter-node chain."""

    def __init__(self, ctx: SRMContext) -> None:
        machine = ctx.machine
        capacity = ctx.config.shared_buffer_bytes
        self.node_order = sorted(ctx.nodes)
        self.position = {node: index for index, node in enumerate(self.node_order)}
        self.masters = {node: ctx.nodes[node].master_rank for node in self.node_order}
        self.prefix_slots: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self.prefix_ready: dict[int, FlagArray] = {}
        #: consumed_next[node][i] = chunks member i+1 has combined from slot i.
        self.consumed_next: dict[int, FlagArray] = {}
        #: chunks the master has read from the LAST member's slot (node total).
        self.total_consumed: dict[int, SharedFlag] = {}
        self.base_slots: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.base_ready: dict[int, SharedFlag] = {}
        self.base_consumed: dict[int, FlagArray] = {}
        self.chain_staging: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.chain_arrival: dict[int, LapiCounter] = {}
        self.chain_free: dict[int, LapiCounter] = {}
        for node in self.node_order:
            state = ctx.nodes[node]
            machine_node = machine.nodes[node]
            segment = SharedSegment(
                machine_node,
                (2 * state.size + 4) * capacity + 64 * (3 * state.size + 8),
                name=f"scan[{node}]",
            )
            self.prefix_slots[node] = [
                (segment.allocate(capacity), segment.allocate(capacity))
                for _ in range(state.size)
            ]
            self.prefix_ready[node] = FlagArray(machine_node, state.size, name=f"scanrdy[{node}]")
            self.consumed_next[node] = FlagArray(machine_node, state.size, name=f"scancons[{node}]")
            self.total_consumed[node] = SharedFlag(machine_node, name=f"scantot[{node}]")
            self.base_slots[node] = (segment.allocate(capacity), segment.allocate(capacity))
            self.base_ready[node] = SharedFlag(machine_node, name=f"scanbase[{node}]")
            self.base_consumed[node] = FlagArray(machine_node, state.size, name=f"scanbcons[{node}]")
            self.chain_staging[node] = (segment.allocate(capacity), segment.allocate(capacity))
            master_lapi = machine.task(self.masters[node]).lapi
            self.chain_arrival[node] = master_lapi.counter(name=f"scanarr:{node}")
            self.chain_free[node] = master_lapi.counter(initial=2, name=f"scanfree:{node}")
        #: Cumulative chunk counts (flag thresholds / slot parity).
        self.chunk_seq: dict[int, int] = {rank: 0 for rank in ctx.members}
        self.chain_sent: dict[int, int] = {node: 0 for node in self.node_order}
        self.chain_received: dict[int, int] = {node: 0 for node in self.node_order}


def _scan_plan(ctx: SRMContext) -> ScanPlan:
    plan = getattr(ctx, "_scan_plan", None)
    if plan is None:
        plan = ScanPlan(ctx)
        ctx._scan_plan = plan  # type: ignore[attr-defined]
    return plan


def srm_scan(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> ProcessGenerator:
    """One rank's part of an inclusive SRM scan."""
    ctx.validate("scan", src.nbytes, task.rank)
    if dst.nbytes != src.nbytes:
        raise ConfigurationError("scan buffers must match in size")
    ctx.dispatch("scan", src.nbytes, task)
    plan = _scan_plan(ctx)
    state = ctx.node_state(task)
    node = task.node.index
    my_position = plan.position[node]
    me = state.index_of(task)
    dtype = src.dtype
    src_data = src.reshape(-1)
    dst_data = dst.reshape(-1)
    capacity = ctx.config.shared_buffer_bytes // dtype.itemsize
    is_master = state.is_master(task)
    last_index = state.size - 1
    forwards = my_position + 1 < len(plan.node_order)
    ready = plan.prefix_ready[node]

    for low in range(0, src_data.shape[0], capacity):
        with task.phase(SCAN_CHUNK):
            high = min(low + capacity, src_data.shape[0])
            count = high - low
            nbytes = count * dtype.itemsize
            sequence = plan.chunk_seq[task.rank]
            plan.chunk_seq[task.rank] = sequence + 1
            parity = sequence % 2
            my_slot = plan.prefix_slots[node][me][parity][:nbytes].view(dtype)
            chunk = src_data[low:high]

            # Slot reuse license: my consumers must be done with chunk seq-2.
            if sequence >= 2:
                license_at = sequence - 1
                if me < last_index:
                    yield from plan.consumed_next[node][me].wait_for(
                        task, lambda v: v >= license_at
                    )
                if me == last_index and forwards:
                    yield from plan.total_consumed[node].wait_for(
                        task, lambda v: v >= license_at
                    )

            # Stage 1: the SMP prefix chain, in member order.
            if me == 0:
                yield from task.copy(my_slot, chunk)
            else:
                needed = sequence + 1
                yield from ready[me - 1].wait_for(task, lambda v: v >= needed)
                predecessor = plan.prefix_slots[node][me - 1][parity][:nbytes].view(dtype)
                yield from task.combine_into(my_slot, predecessor, chunk, op)
                yield from plan.consumed_next[node][me - 1].set(task, sequence + 1)
            yield from ready[me].set(task, sequence + 1)

            # Stage 2 (master): receive the exclusive base, forward base+total.
            if is_master:
                base_view = plan.base_slots[node][parity][:nbytes].view(dtype)
                has_base = my_position > 0
                if sequence >= 2:
                    license_at = sequence - 1
                    yield from plan.base_consumed[node].wait_all(
                        task, lambda v: v >= license_at, skip=me
                    )
                if has_base:
                    receive_parity = plan.chain_received[node] % 2
                    plan.chain_received[node] += 1
                    yield from task.lapi.waitcntr(plan.chain_arrival[node], 1)
                    staged = plan.chain_staging[node][receive_parity][:nbytes].view(dtype)
                    yield from task.copy(base_view, staged)
                if forwards:
                    needed = sequence + 1
                    yield from ready[last_index].wait_for(task, lambda v: v >= needed)
                    total = plan.prefix_slots[node][last_index][parity][:nbytes].view(dtype)
                    next_node = plan.node_order[my_position + 1]
                    send_parity = plan.chain_sent[node] % 2
                    plan.chain_sent[node] += 1
                    outgoing = plan.chain_staging[next_node][send_parity][:nbytes].view(dtype)
                    yield from task.lapi.waitcntr(plan.chain_free[node], 1)
                    if has_base:
                        scratch = np.empty(count, dtype=dtype)
                        yield from task.combine_into(scratch, base_view, total, op)
                        payload = scratch
                    else:
                        payload = total
                    yield from task.lapi.put(
                        plan.masters[next_node],
                        outgoing,
                        payload,
                        target_counter=plan.chain_arrival[next_node],
                    )
                    yield from plan.total_consumed[node].set(task, sequence + 1)
                if has_base:
                    # Credit the upstream master's staging slot.
                    previous_node = plan.node_order[my_position - 1]
                    yield from task.lapi.put(
                        plan.masters[previous_node],
                        _SIGNAL,
                        _SIGNAL,
                        target_counter=plan.chain_free[previous_node],
                    )
                yield from plan.base_ready[node].set(task, sequence + 1)

            # Stage 3: combine the node base with my local prefix.
            needed = sequence + 1
            yield from plan.base_ready[node].wait_for(task, lambda v: v >= needed)
            out_chunk = dst_data[low:high]
            if my_position > 0:
                base_view = plan.base_slots[node][parity][:nbytes].view(dtype)
                yield from task.combine_into(out_chunk, base_view, my_slot, op)
            else:
                yield from task.copy(out_chunk, my_slot)
            yield from plan.base_consumed[node][me].set(task, sequence + 1)