"""The SRM barrier (paper §2.2 intra-node, [17] inter-node).

Local phase: the flat shared-memory flag barrier.  Between check-in and
release the node masters run a dissemination-pattern exchange ([22], which
the paper notes has the same ~log(P) critical path as its pairwise exchange
with recursive doubling): in round ``r`` master ``i`` zero-byte-puts master
``(i + 2^r) mod n``'s round counter and waits on its own — ``ceil(log2 n)``
rounds, no data, works for any node count.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import BarrierPlan, SRMContext
from repro.core.smp.barrier import smp_barrier
from repro.obs.taxonomy import DISSEMINATION_ROUND
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["srm_barrier", "barrier_body"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


def srm_barrier(ctx: SRMContext, task: "Task") -> ProcessGenerator:
    """One rank's part of an SRM barrier."""
    ctx.validate("barrier", 0, task.rank)
    decision = ctx.dispatch("barrier", 0, task)
    yield from barrier_body(ctx, task, decision.manage_interrupts)


def barrier_body(ctx: SRMContext, task: "Task", manage: bool) -> ProcessGenerator:
    """The barrier proper (no per-invocation cursors: check-in flags are
    binary and the dissemination counters are consumed, so consecutive
    invocations compose without reservation)."""
    state = ctx.node_state(task)
    if manage:
        task.lapi.set_interrupts(False)
    try:
        between = None
        if state.is_master(task) and len(ctx.nodes) > 1:
            between = _dissemination(ctx, ctx.barrier_plan(), task)
        yield from smp_barrier(state, task, between)
    finally:
        if manage:
            task.lapi.set_interrupts(True)


def _dissemination(ctx: SRMContext, plan: BarrierPlan, task: "Task") -> ProcessGenerator:
    node = task.node.index
    my_position = plan.position[node]
    participating = len(plan.node_order)
    for round_index in range(plan.rounds):
        with task.phase(DISSEMINATION_ROUND):
            peer_node = plan.node_order[(my_position + (1 << round_index)) % participating]
            yield from task.lapi.put(
                plan.masters[peer_node],
                _SIGNAL,
                _SIGNAL,
                target_counter=plan.counters[peer_node][round_index],
            )
            yield from task.lapi.waitcntr(plan.counters[node][round_index], 1)
