"""The integrated SRM broadcast (paper §2.4, Fig. 4).

Two protocols, switching at :attr:`SRMConfig.small_protocol_max` (64 KB):

**Small** (Fig. 4, left): data travels through each node's two shared-memory
buffers.  Per chunk, a representative (node master; the root on its own
node):

1. waits for its parent's put to land in shared buffer ``slot`` (LAPI
   arrival counter) — the root instead sources from its user buffer;
2. relays the chunk down its inter-node subtree with non-blocking puts,
   each gated by that child's *buffer-free* counter (``LAPI_Waitcntr`` on
   the counter rather than spinning on a flag, §2.4);
3. fans out locally: the root fills the shared buffer (Fig. 3), a non-root
   master just sets the READY flags — the data is already in shared memory,
   "avoiding unnecessary data copies";
4. copies its own chunk out, and a helper acknowledges the drained buffer
   to the parent with a zero-byte put (step 3 of Fig. 4).

Messages above :attr:`SRMConfig.pipeline_min` are chunked so the two buffers
pipeline; interrupts are disabled for the duration (§2.3) because every wait
is a polling LAPI call.

**Large** (Fig. 4, right): no intermediate network buffers.  Each non-root
master registers its user buffer with its parent (the address-exchange put,
stage 1), parents stream chunks straight into the registered user buffers
under a bounded put window, and each node pipelines the arrived chunks
through its shared buffers for the local fan-out (stages 2–4).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.config import SRMConfig
from repro.core.context import BcastPlan, InvocationState, NodeState, SRMContext
from repro.core.smp.broadcast import announce_slot, drain_slot, fill_slot, smp_broadcast_chunk
from repro.obs.taxonomy import PIPELINE_CHUNK, STREAM_JOIN
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["srm_broadcast", "reserve_broadcast", "broadcast_body"]

#: Zero-byte put payload used for pure counter signals.
_SIGNAL = np.zeros(0, dtype=np.uint8)


def _bytes(buffer: np.ndarray) -> np.ndarray:
    return buffer.reshape(-1).view(np.uint8)


def srm_broadcast(ctx: SRMContext, task: "Task", buffer: np.ndarray, root: int = 0) -> ProcessGenerator:
    """One rank's part of an SRM broadcast of ``buffer`` from ``root``."""
    ctx.validate("broadcast", buffer.nbytes, task.rank, root=root)
    plan = ctx.bcast_plan(root)
    state = ctx.node_state(task)
    decision = ctx.dispatch("broadcast", buffer.nbytes, task)
    chunks = list(decision.chunks)
    large = decision.variant == "large"
    invocation = reserve_broadcast(plan, state, task, chunks, large)
    yield from broadcast_body(
        ctx, plan, state, task, buffer, chunks, large, decision.manage_interrupts, invocation
    )


def reserve_broadcast(
    plan: BcastPlan,
    state: NodeState,
    task: "Task",
    chunks: list[tuple[int, int]],
    large: bool,
) -> InvocationState:
    """Claim this invocation's sequence windows at this rank (at start)."""
    invocation = InvocationState(op="broadcast", root=plan.root)
    me = state.index_of(task)
    if large and plan.trees.is_representative(task.rank):
        # Representatives in the large protocol advance the SMP cursor only
        # on multi-task nodes (the fill loop is skipped otherwise) and own a
        # window of streamed-chunk thresholds at their node.
        if state.size > 1:
            invocation.bcast_base = state.reserve_bcast(me, len(chunks))
        invocation.stream_base = plan.reserve_stream(task.node.index, len(chunks))
    else:
        invocation.bcast_base = state.reserve_bcast(me, len(chunks))
    return invocation


def broadcast_body(
    ctx: SRMContext,
    plan: BcastPlan,
    state: NodeState,
    task: "Task",
    buffer: np.ndarray,
    chunks: list[tuple[int, int]],
    large: bool,
    manage: bool,
    invocation: InvocationState,
) -> ProcessGenerator:
    """The broadcast proper, over a pre-reserved invocation window."""
    if manage:
        task.lapi.set_interrupts(False)
    try:
        if large:
            yield from _broadcast_large(ctx, plan, state, task, buffer, chunks, invocation)
        else:
            yield from _broadcast_small(ctx, plan, state, task, buffer, chunks, invocation)
    finally:
        if manage:
            task.lapi.set_interrupts(True)


# ---------------------------------------------------------------------------
# small protocol
# ---------------------------------------------------------------------------


def _broadcast_small(
    ctx: SRMContext,
    plan: BcastPlan,
    state: NodeState,
    task: "Task",
    buffer: np.ndarray,
    chunks: list[tuple[int, int]],
    invocation: InvocationState,
) -> ProcessGenerator:
    data = _bytes(buffer)
    if not plan.trees.is_representative(task.rank):
        for index, (offset, size) in enumerate(chunks):
            with task.phase(PIPELINE_CHUNK):
                yield from smp_broadcast_chunk(
                    state,
                    task,
                    is_source=False,
                    src_chunk=None,
                    dst_chunk=data[offset : offset + size],
                    sequence=invocation.bcast_base + index,
                )
        return

    spec = task.spec
    is_root = task.rank == plan.root
    children = plan.inter_children(task.rank)
    parent = plan.inter_parent(task.rank)
    edge = plan.edges.get(task.node.index)

    for index, (offset, size) in enumerate(chunks):
        with task.phase(PIPELINE_CHUNK):
            view = data[offset : offset + size]
            sequence = invocation.bcast_base + index
            slot = sequence % 2

            if is_root:
                relay_source = view
            else:
                assert edge is not None
                # Step: wait for the parent's put to land in my shared buffer.
                yield from task.lapi.waitcntr(edge.arrival[slot], 1)
                relay_source = state.bcast_buf.data(slot, size)

            # Fig. 4 order: send down the tree first, then the local fan-out.
            for child_rank in children:
                child_node = spec.node_of(child_rank)
                child_edge = plan.edges[child_node]
                child_state = ctx.nodes[child_node]
                yield from task.lapi.waitcntr(child_edge.free[slot], 1)
                yield from task.lapi.put(
                    child_rank,
                    child_state.bcast_buf.data(slot, size),
                    relay_source,
                    target_counter=child_edge.arrival[slot],
                )

            if state.size > 1:
                if is_root:
                    yield from fill_slot(state, task, slot, view)
                else:
                    yield from announce_slot(state, task, slot)
            if not is_root:
                yield from task.copy(view, state.bcast_buf.data(slot, size))
                assert parent is not None and edge is not None
                _spawn_free_ack(state, task, slot, parent, edge.free[slot])


def _spawn_free_ack(state: NodeState, task: "Task", slot: int, parent_rank: int, free_counter) -> None:
    """Once the locals drain buffer ``slot``, zero-byte-put the parent's
    free counter (Fig. 4 step 3) — off the critical path of this master."""

    def helper() -> ProcessGenerator:
        if state.size > 1:
            yield from state.bcast_buf.flags(slot).wait_all(
                task, lambda v: v == 0, skip=state.index_of(task)
            )
        yield from task.lapi.put(parent_rank, _SIGNAL, _SIGNAL, target_counter=free_counter)

    task.engine.process(helper(), name=f"bcast-ack[{task.rank}]s{slot}")


# ---------------------------------------------------------------------------
# large protocol
# ---------------------------------------------------------------------------


def _broadcast_large(
    ctx: SRMContext,
    plan: BcastPlan,
    state: NodeState,
    task: "Task",
    buffer: np.ndarray,
    chunks: list[tuple[int, int]],
    invocation: InvocationState,
    root_chunk_ready: list[Event] | None = None,
) -> ProcessGenerator:
    """The Fig. 4 (right) streamed protocol.

    ``root_chunk_ready`` (used by the pipelined allreduce, Fig. 5): per-chunk
    events the root's streaming and local fan-out must wait for.
    """
    data = _bytes(buffer)
    if not plan.trees.is_representative(task.rank):
        for index, (offset, size) in enumerate(chunks):
            with task.phase(PIPELINE_CHUNK):
                yield from smp_broadcast_chunk(
                    state,
                    task,
                    is_source=False,
                    src_chunk=None,
                    dst_chunk=data[offset : offset + size],
                    sequence=invocation.bcast_base + index,
                )
        return

    is_root = task.rank == plan.root
    children = plan.inter_children(task.rank)
    parent = plan.inter_parent(task.rank)
    my_node = task.node.index
    arrival = plan.stream_arrival.get(my_node)
    base = invocation.stream_base

    # Stage 1: register the user buffer and signal the parent (the
    # address-exchange put).
    plan.user_buffers[my_node] = buffer
    if parent is not None:
        yield from task.lapi.put(
            parent, _SIGNAL, _SIGNAL, target_counter=plan.address_arrival[my_node]
        )

    forwarders = [
        task.engine.process(
            _stream_to_child(
                ctx, plan, task, child_rank, data, chunks, arrival, base, root_chunk_ready
            ),
            name=f"bcast-stream[{task.rank}->{child_rank}]",
        )
        for child_rank in children
    ]

    # Stages 3/4: pipeline arrived chunks through the node's shared buffers.
    if state.size > 1:
        for index, (offset, size) in enumerate(chunks):
            with task.phase(PIPELINE_CHUNK):
                if arrival is not None:
                    yield from task.lapi.watch(arrival, base + index + 1)
                elif root_chunk_ready is not None:
                    yield root_chunk_ready[index]
                sequence = invocation.bcast_base + index
                yield from fill_slot(state, task, sequence % 2, data[offset : offset + size])
    elif arrival is not None:
        yield from task.lapi.watch(arrival, base + len(chunks))

    if forwarders:
        with task.phase(STREAM_JOIN):
            for forwarder in forwarders:
                yield forwarder


def _stream_to_child(
    ctx: SRMContext,
    plan: BcastPlan,
    task: "Task",
    child_rank: int,
    data: np.ndarray,
    chunks: list[tuple[int, int]],
    my_arrival,
    my_base: int,
    root_chunk_ready: list[Event] | None,
) -> ProcessGenerator:
    """Stage 2: stream chunks into the child's registered user buffer."""
    child_node = task.spec.node_of(child_rank)
    yield from task.lapi.waitcntr(plan.address_arrival[child_node], 1)
    child_data = _bytes(plan.user_buffers[child_node])
    child_arrival = plan.stream_arrival[child_node]
    window_depth = task.obs.put_window_depth
    window: list = []
    previous_signal: Event | None = None
    for index, (offset, size) in enumerate(chunks):
        with task.phase(PIPELINE_CHUNK):
            if my_arrival is not None:
                yield from task.lapi.watch(my_arrival, my_base + index + 1)
            elif root_chunk_ready is not None:
                yield root_chunk_ready[index]
            if len(window) >= ctx.config.put_window:
                yield window.pop(0)
                window_depth.observe(len(window))
            delivery = yield from task.lapi.put(
                child_rank,
                child_data[offset : offset + size],
                data[offset : offset + size],
            )
            window.append(delivery)
            window_depth.observe(len(window))
            # The SP switch delivers puts on one route in FIFO order; the
            # fluid contention model can complete a small trailing chunk
            # "first", so the cumulative arrival counter is bumped strictly
            # in chunk order: each chunk's signal waits for its delivery AND
            # its predecessor.
            signal = Event(task.engine, name=f"fifo:{child_rank}:{index}")
            task.engine.process(
                _in_order_signal(delivery, previous_signal, child_arrival, signal),
                name=f"fifo-signal->{child_rank}",
            )
            previous_signal = signal
    for delivery in window:
        yield delivery
    window_depth.observe(0)


def _in_order_signal(delivery, previous_signal: Event | None, counter, signal: Event) -> ProcessGenerator:
    yield delivery
    if previous_signal is not None and not previous_signal.processed:
        yield previous_signal
    counter.increment()
    signal.succeed()
