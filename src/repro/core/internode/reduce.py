"""The integrated SRM reduce (paper §2.4).

Per chunk, walked leaf→root over the Fig. 1 embedding:

1. **SMP reduce** on every node (Fig. 2): the node's binomial tree combines
   local contributions; the node result lands in the user destination at the
   global root, in the master's partial buffer on interior nodes, or stays
   zero-copy in the source/slot on inter-node-leaf nodes.
2. **Inter-node combine**: each master waits for its inter-node children's
   puts to land in per-edge staging buffers (two slots, arrival counters),
   streams ``partial OP staged`` for each, and zero-byte-puts the child's
   free counter back.
3. **Forward**: non-root masters put their node partial into their parent's
   staging slot, gated by their own free counter.

Chunking + the two staging slots pipeline the memory copies, the operator
execution, and the network transfers — the overlap §2.4 describes.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import InvocationState, NodeState, ReducePlan, SRMContext
from repro.core.smp.reduce import smp_reduce_chunk
from repro.obs.taxonomy import PIPELINE_CHUNK
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["srm_reduce", "reserve_reduce", "reduce_body"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


def _flat(buffer: np.ndarray) -> np.ndarray:
    """Flatten without copying, keeping the dtype (operators need it)."""
    return buffer.reshape(-1)


def srm_reduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray | None,
    op: "ReduceOp",
    root: int = 0,
    chunks: list[tuple[int, int]] | None = None,
    root_chunk_done: list[Event] | None = None,
    manage: bool | None = None,
    invocation: InvocationState | None = None,
) -> ProcessGenerator:
    """One rank's part of an SRM reduce of ``src`` to ``root``'s ``dst``.

    ``chunks`` / ``root_chunk_done`` parameterize the pipelined allreduce
    (Fig. 5): explicit chunking shared with the broadcast stage, and
    per-chunk completion events the root fires as results materialize.
    ``manage`` overrides the interrupt-management default (the pipelined
    allreduce passes False because its broadcast stage runs concurrently on
    the same task).  ``invocation``: a pre-reserved sequence window (the
    pipelined allreduce reserves both of its stages before spawning them);
    when ``None`` the window is reserved here.
    """
    ctx.validate("reduce", src.nbytes, task.rank, root=root)
    plan = ctx.reduce_plan(root)
    state = ctx.node_state(task)
    if chunks is None or manage is None:
        decision = ctx.dispatch("reduce", src.nbytes, task)
        if chunks is None:
            chunks = list(decision.chunks)
        if manage is None:
            manage = decision.manage_interrupts
    if invocation is None:
        invocation = reserve_reduce(plan, state, task, chunks)
    if manage:
        task.lapi.set_interrupts(False)
    try:
        yield from reduce_body(
            ctx, plan, state, task, src, dst, op, chunks, root_chunk_done, invocation
        )
    finally:
        if manage:
            task.lapi.set_interrupts(True)


def reserve_reduce(
    plan: ReducePlan,
    state: NodeState,
    task: "Task",
    chunks: list[tuple[int, int]],
) -> InvocationState:
    """Claim this invocation's sequence windows at this rank (at start)."""
    invocation = InvocationState(op="reduce", root=plan.root)
    me = state.index_of(task)
    invocation.reduce_base = state.reserve_reduce(me, len(chunks))
    if plan.trees.is_representative(task.rank):
        for child_rank in plan.inter_children(task.rank):
            invocation.recv_base[child_rank] = plan.reserve_recv(child_rank, len(chunks))
        if plan.inter_parent(task.rank) is not None:
            invocation.sent_base = plan.reserve_sent(task.rank, len(chunks))
    return invocation


def reduce_body(
    ctx: SRMContext,
    plan: ReducePlan,
    state: NodeState,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray | None,
    op: "ReduceOp",
    chunks: list[tuple[int, int]],
    root_chunk_done: list[Event] | None,
    invocation: InvocationState,
) -> ProcessGenerator:
    """The reduce proper, over a pre-reserved invocation window."""
    src_data = _flat(src)
    dtype = src_data.dtype
    itemsize = dtype.itemsize
    intra_tree = plan.trees.intra[task.node.index]

    def elements(offset: int, size: int, buffer: np.ndarray) -> np.ndarray:
        return buffer[offset // itemsize : (offset + size) // itemsize]

    if not plan.trees.is_representative(task.rank):
        for index, (offset, size) in enumerate(chunks):
            with task.phase(PIPELINE_CHUNK):
                yield from smp_reduce_chunk(
                    state,
                    task,
                    intra_tree,
                    elements(offset, size, src_data),
                    op,
                    sequence=invocation.reduce_base + index,
                )
        return

    is_root = task.rank == plan.root
    children = plan.inter_children(task.rank)
    parent = plan.inter_parent(task.rank)
    if is_root:
        if dst is None:
            raise ValueError("the reduce root needs a destination buffer")
        dst_data = _flat(dst)

    for index, (offset, size) in enumerate(chunks):
        with task.phase(PIPELINE_CHUNK):
            src_chunk = elements(offset, size, src_data)
            if is_root:
                target: np.ndarray | None = elements(offset, size, dst_data)
            elif children:
                # Needs a writable accumulator for the inter-node combines.
                target = state.partial_buffer(index, size).view(dtype)
            else:
                target = None  # zero-copy: the slot/source doubles as put source
            partial = yield from smp_reduce_chunk(
                state, task, intra_tree, src_chunk, op, target,
                sequence=invocation.reduce_base + index,
            )
            assert partial is not None

            # Combine the inter-node children's staged partials.
            for child_rank in children:
                sequence = invocation.recv_base[child_rank] + index
                slot = sequence % 2
                yield from task.lapi.waitcntr(plan.arrival[child_rank][slot], 1)
                staged = plan.staging[child_rank][slot][:size].view(dtype)
                yield from task.reduce_into(partial, staged, op)
                yield from task.lapi.put(
                    child_rank, _SIGNAL, _SIGNAL, target_counter=plan.free[child_rank][slot]
                )

            if parent is not None:
                sequence = invocation.sent_base + index
                slot = sequence % 2
                yield from task.lapi.waitcntr(plan.free[task.rank][slot], 1)
                yield from task.lapi.put(
                    parent,
                    plan.staging[task.rank][slot][:size].view(dtype),
                    partial,
                    target_counter=plan.arrival[task.rank][slot],
                )
            elif root_chunk_done is not None:
                root_chunk_done[index].succeed()
