"""Inter-node (RMA) halves of the SRM collectives (paper §2.3–2.4)."""

from repro.core.internode.allreduce import srm_allreduce
from repro.core.internode.barrier import srm_barrier
from repro.core.internode.broadcast import srm_broadcast
from repro.core.internode.reduce import srm_reduce

__all__ = ["srm_broadcast", "srm_reduce", "srm_allreduce", "srm_barrier"]
