"""Hierarchical ring allreduce — an alternative to the Fig. 5 pipeline.

The paper's large-message allreduce pipelines reduce-to-root with
broadcast-from-root (§2.4, Fig. 5).  A bandwidth-optimal alternative the
paper's future work invites evaluating: a **ring reduce-scatter followed by
a ring allgather over the node masters**, with shared-memory ends —

1. SMP reduce on every node (the master accumulates the node partial
   directly in its destination buffer);
2. masters split the message into ``k`` segments and run ``k-1``
   reduce-scatter steps (each step: put my current segment to the right
   neighbour's staging slot, combine the segment arriving from the left);
3. ``k-1`` allgather steps circulate the fully-reduced segments with direct
   puts into the neighbours' destination buffers;
4. SMP broadcast of the full result inside each node.

Inter-node traffic per master is ``2 (k-1)/k`` of the message — optimal —
versus the pipeline's up-and-down tree traversal; the pipeline wins on
latency (log k rounds vs 2(k-1)).  This module is the registered ``ring``
variant of the allreduce in :mod:`repro.core.dispatch`: select it with
``SRMConfig(allreduce_algorithm="ring")`` (the paper policy's knob), a
``FixedPolicy({"allreduce": "ring"})``, or let a tuned/cost-model policy
pick it where its bandwidth optimality wins; the ablation benchmark
``bench_abl_ring_allreduce.py`` maps the crossover.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import SRMContext
from repro.core.internode.gatherscatter import _fan_out, _ring_signal, _signal_flow
from repro.core.smp.reduce import smp_reduce_chunk
from repro.errors import ConfigurationError
from repro.lapi.counters import LapiCounter
from repro.obs.taxonomy import BLOCK_REGISTER, PIPELINE_CHUNK, RING_STEP, STREAM_JOIN
from repro.shmem.segment import SharedSegment
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["srm_allreduce_ring", "RingAllreducePlan"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


class RingAllreducePlan:
    """Per-context counters and staging for the hierarchical ring."""

    def __init__(self, ctx: SRMContext) -> None:
        machine = ctx.machine
        self.node_order = sorted(ctx.nodes)
        self.position = {node: index for index, node in enumerate(self.node_order)}
        self.masters = {node: ctx.nodes[node].master_rank for node in self.node_order}
        capacity = ctx.config.shared_buffer_bytes
        self.staging: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.rs_arrival: dict[int, LapiCounter] = {}
        #: Outgoing-channel credits: my right's two staging slots (consumed
        #: before each reduce-scatter put, refilled by the right's ack after
        #: it combines — masters can drift up to k-1 steps apart otherwise).
        self.rs_free: dict[int, LapiCounter] = {}
        self.ag_arrival: dict[int, LapiCounter] = {}
        self.addr_arrival: dict[int, LapiCounter] = {}
        for node in self.node_order:
            master_lapi = machine.task(self.masters[node]).lapi
            segment = SharedSegment(machine.nodes[node], 2 * capacity + 128, name=f"ringar[{node}]")
            self.staging[node] = (segment.allocate(capacity), segment.allocate(capacity))
            self.rs_arrival[node] = master_lapi.counter(name=f"ringrs:{node}")
            self.rs_free[node] = master_lapi.counter(initial=2, name=f"ringfree:{node}")
            self.ag_arrival[node] = master_lapi.counter(name=f"ringag:{node}")
            self.addr_arrival[node] = master_lapi.counter(name=f"ringaddr:{node}")
        self.registry: dict[int, np.ndarray] = {}
        #: Reduce-scatter staging parity: chunks I have sent to my right /
        #: combined from my left.  My combined count always equals my left's
        #: sent count (chunks are combined in arrival order), so both ends
        #: of a channel agree on every chunk's slot without negotiation.
        self.rs_sent: dict[int, int] = {node: 0 for node in self.node_order}
        self.rs_combined: dict[int, int] = {node: 0 for node in self.node_order}


def _ring_plan(ctx: SRMContext) -> RingAllreducePlan:
    plan = getattr(ctx, "_ring_allreduce_plan", None)
    if plan is None:
        plan = RingAllreducePlan(ctx)
        ctx._ring_allreduce_plan = plan  # type: ignore[attr-defined]
    return plan


def srm_allreduce_ring(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> ProcessGenerator:
    """One rank's part of the hierarchical ring allreduce."""
    ctx.validate("allreduce", src.nbytes, task.rank)
    state = ctx.node_state(task)
    dtype = src.dtype
    src_data = src.reshape(-1)
    dst_data = dst.reshape(-1)
    intra_tree = ctx.reduce_plan(ctx.group_root).trees.intra[task.node.index]

    capacity = ctx.config.shared_buffer_bytes // dtype.itemsize

    def smp_stage(target: np.ndarray | None) -> ProcessGenerator:
        # The SMP reduce flows chunk-wise through the shared slots.
        for low in range(0, src_data.shape[0], capacity):
            high = min(low + capacity, src_data.shape[0])
            piece_target = target[low:high] if target is not None else None
            with task.phase(PIPELINE_CHUNK):
                yield from smp_reduce_chunk(
                    state, task, intra_tree, src_data[low:high], op, target=piece_target
                )

    if not state.is_master(task):
        yield from smp_stage(None)
        yield from _fan_out(ctx, state, task, dst_data.view(np.uint8))
        return

    plan = _ring_plan(ctx)
    ring_size = len(plan.node_order)
    node = task.node.index
    my_position = plan.position[node]
    elements = src_data.shape[0]
    if elements < ring_size:
        raise ConfigurationError(
            f"ring allreduce needs >= {ring_size} elements, got {elements}"
        )
    base = elements // ring_size
    starts = [index * base for index in range(ring_size)] + [elements]
    #: Staging sub-chunk capacity in elements.
    capacity_elements = ctx.config.shared_buffer_bytes // dtype.itemsize
    if capacity_elements < 1:
        raise ConfigurationError("staging capacity below one element")

    def segment(buffer: np.ndarray, index: int) -> np.ndarray:
        index %= ring_size
        return buffer[starts[index] : starts[index + 1]]

    def sub_chunks(length: int) -> list[tuple[int, int]]:
        return [
            (low, min(low + capacity_elements, length))
            for low in range(0, length, capacity_elements)
        ]

    # Stage 1: node partial straight into my destination buffer.
    yield from smp_stage(dst_data)

    if ring_size > 1:
        # Register my buffers with my writer (the left neighbour).
        plan.registry[node] = dst
        left = plan.node_order[(my_position - 1) % ring_size]
        right = plan.node_order[(my_position + 1) % ring_size]
        with task.phase(BLOCK_REGISTER):
            yield from task.lapi.put(
                plan.masters[left], _SIGNAL, _SIGNAL, target_counter=plan.addr_arrival[left]
            )
            yield from task.lapi.waitcntr(plan.addr_arrival[node], 1)
        right_master = plan.masters[right]
        right_staging = plan.staging[right]
        right_dst = plan.registry[right].reshape(-1)

        # Stage 2: ring reduce-scatter. At step s I send segment (pos - s)
        # and combine inbound segment (pos - s - 1); segments larger than
        # the staging capacity flow as sub-chunks through the two slots.
        # Sends and combines are interleaved 1:1 — sending a whole segment
        # first would exhaust the two credits ring-wide and deadlock — and
        # arrival signals are FIFO-chained per channel (a small trailing
        # chunk must not overtake a large one still in flight).
        left_master = plan.masters[left]
        rs_signal_chain = None
        for step in range(ring_size - 1):
            with task.phase(RING_STEP):
                outgoing = segment(dst_data, my_position - step)
                incoming = segment(dst_data, my_position - step - 1)
                pieces_out = sub_chunks(outgoing.shape[0])
                pieces_in = sub_chunks(incoming.shape[0])
                for index in range(max(len(pieces_out), len(pieces_in))):
                    if index < len(pieces_out):
                        low, high = pieces_out[index]
                        slot = plan.rs_sent[node] % 2
                        plan.rs_sent[node] += 1
                        yield from task.lapi.waitcntr(plan.rs_free[node], 1)
                        piece = outgoing[low:high]
                        issue_ts = task.engine.now
                        delivery = yield from task.lapi.put(
                            right_master,
                            right_staging[slot][: piece.nbytes].view(dtype),
                            piece,
                        )
                        signal = task.engine.event(name=f"ringrs:{node}")
                        task.engine.process(
                            _ring_signal(
                                delivery, rs_signal_chain, plan.rs_arrival[right], signal,
                                flow=_signal_flow(task, issue_ts, right_master),
                            ),
                            name=f"ringrs-signal:{node}",
                        )
                        rs_signal_chain = signal
                    if index < len(pieces_in):
                        low, high = pieces_in[index]
                        my_slot = plan.rs_combined[node] % 2
                        plan.rs_combined[node] += 1
                        yield from task.lapi.waitcntr(plan.rs_arrival[node], 1)
                        piece = incoming[low:high]
                        yield from task.reduce_into(
                            piece, plan.staging[node][my_slot][: piece.nbytes].view(dtype), op
                        )
                        # Refill my writer's credit for the drained slot.
                        yield from task.lapi.put(
                            left_master, _SIGNAL, _SIGNAL, target_counter=plan.rs_free[left]
                        )

        # Stage 3: ring allgather of the reduced segments (direct puts into
        # the right neighbour's destination; FIFO-chained signals because
        # trailing segments can be smaller).
        deliveries = []
        previous_signal = None
        for step in range(ring_size - 1):
            with task.phase(RING_STEP):
                source_index = my_position + 1 - step
                issue_ts = task.engine.now
                delivery = yield from task.lapi.put(
                    right_master,
                    segment(right_dst, source_index),
                    segment(dst_data, source_index),
                )
                deliveries.append(delivery)
                signal = task.engine.event(name=f"ringag:{node}:{step}")
                task.engine.process(
                    _ring_signal(
                        delivery, previous_signal, plan.ag_arrival[right], signal,
                        flow=_signal_flow(task, issue_ts, right_master),
                    ),
                    name=f"ringag-signal:{node}",
                )
                previous_signal = signal
                yield from task.lapi.waitcntr(plan.ag_arrival[node], 1)
        with task.phase(STREAM_JOIN):
            for delivery in deliveries:
                yield delivery

    # Stage 4: local fan-out of the complete result.
    yield from _fan_out(ctx, state, task, dst_data.view(np.uint8))