"""The integrated SRM allreduce (paper §2.2, §2.4, Fig. 5).

Two regimes:

* **≤ 16 KB** (:attr:`SRMConfig.allreduce_exchange_max`): SMP reduce to each
  node master, then *recursive-doubling pairwise exchange* between the
  masters ([15]): in round ``r`` master ``i`` swaps its running partial with
  master ``i XOR 2^r`` and combines.  Non-power-of-two node counts use the
  standard fold: the excess nodes first fold their contribution into a
  partner and receive the final result back.  An SMP broadcast of the result
  finishes the operation.
* **larger**: reduce-to-root and broadcast-from-root run **concurrently**,
  chunk by chunk, forming the four-stage pipeline of Fig. 5 — SMP reduce,
  inter-node reduce, inter-node broadcast, SMP broadcast — with per-chunk
  events chaining the root's reduce output into its broadcast input.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import SRMContext
from repro.core.internode.broadcast import _broadcast_large
from repro.core.internode.reduce import srm_reduce
from repro.core.smp.broadcast import fill_slot, smp_broadcast_chunk
from repro.core.smp.reduce import smp_reduce_chunk
from repro.obs.taxonomy import EXCHANGE_ROUND
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["srm_allreduce"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


def _bytes(buffer: np.ndarray) -> np.ndarray:
    return buffer.reshape(-1).view(np.uint8)


def srm_allreduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> ProcessGenerator:
    """One rank's part of an SRM allreduce (result in every ``dst``)."""
    ctx.validate_message(src.nbytes)
    if dst.nbytes != src.nbytes:
        raise ValueError(f"allreduce dst ({dst.nbytes} B) must match src ({src.nbytes} B)")
    decision = ctx.dispatch("allreduce", src.nbytes, task)
    if decision.variant == "exchange":
        manage = decision.manage_interrupts
        if manage:
            task.lapi.set_interrupts(False)
        try:
            yield from _allreduce_exchange(ctx, task, src, dst, op)
        finally:
            if manage:
                task.lapi.set_interrupts(True)
    elif decision.variant == "ring":
        from repro.core.internode.ring import srm_allreduce_ring

        yield from srm_allreduce_ring(ctx, task, src, dst, op)
    else:
        yield from _allreduce_pipelined(ctx, task, src, dst, op, decision.chunks)


# ---------------------------------------------------------------------------
# small: recursive-doubling pairwise exchange between masters
# ---------------------------------------------------------------------------


def _allreduce_exchange(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> ProcessGenerator:
    state = ctx.node_state(task)
    nbytes = src.nbytes
    dtype = src.dtype
    src_data = src.reshape(-1)
    dst_data = dst.reshape(-1)
    intra_tree = ctx.reduce_plan(ctx.group_root).trees.intra[task.node.index]

    if not state.is_master(task):
        # Contribute to the SMP reduce, then collect the result.
        yield from smp_reduce_chunk(state, task, intra_tree, src_data, op)
        yield from smp_broadcast_chunk(state, task, is_source=False, src_chunk=None, dst_chunk=dst_data)
        return

    plan = ctx.allreduce_plan()
    call = plan.call_seq[task.rank]
    plan.call_seq[task.rank] = call + 1
    slot = call % 2
    node = task.node.index
    my_position = plan.position[node]
    participating = len(plan.node_order)
    group = plan.group_size  # the power-of-two exchange group

    # The master accumulates directly in its own destination buffer.
    yield from smp_reduce_chunk(state, task, intra_tree, src_data, op, target=dst_data)

    if my_position >= group:
        # Excess node: fold into the partner, get the final result back.
        partner_node = plan.fold_partner[node]
        yield from task.lapi.put(
            plan.masters[partner_node],
            plan.fold_staging[node][slot][:nbytes].view(dtype),
            dst_data,
            target_counter=plan.fold_arrival[node],
        )
        yield from task.lapi.waitcntr(plan.fold_result_arrival[node], 1)
        yield from task.copy(dst_data, state.partial_buffer(call, nbytes).view(dtype))
    else:
        folder_position = my_position + group
        folder = plan.node_order[folder_position] if folder_position < participating else None
        if folder is not None:
            yield from task.lapi.waitcntr(plan.fold_arrival[folder], 1)
            yield from task.reduce_into(
                dst_data, plan.fold_staging[folder][slot][:nbytes].view(dtype), op
            )
        for round_index in range(plan.rounds):
            with task.phase(EXCHANGE_ROUND):
                peer_node = plan.node_order[my_position ^ (1 << round_index)]
                yield from task.lapi.put(
                    plan.masters[peer_node],
                    plan.exchange[peer_node][round_index][slot][:nbytes].view(dtype),
                    dst_data,
                    target_counter=plan.arrival[peer_node][round_index],
                )
                yield from task.lapi.waitcntr(plan.arrival[node][round_index], 1)
                yield from task.reduce_into(
                    dst_data, plan.exchange[node][round_index][slot][:nbytes].view(dtype), op
                )
        if folder is not None:
            # Send the finished result back into the folder's partial buffer.
            folder_partial = ctx.nodes[folder].partial_buffer(call, nbytes).view(dtype)
            yield from task.lapi.put(
                plan.masters[folder],
                folder_partial,
                dst_data,
                target_counter=plan.fold_result_arrival[folder],
            )

    # SMP broadcast of the result to the local tasks.
    if state.size > 1:
        me = state.index_of(task)
        sequence = state.bcast_seq[me]
        state.bcast_seq[me] = sequence + 1
        yield from fill_slot(state, task, sequence % 2, dst_data)


# ---------------------------------------------------------------------------
# large: the Fig. 5 four-stage pipeline
# ---------------------------------------------------------------------------


def _allreduce_pipelined(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    chunks: typing.Sequence[tuple[int, int]] | None = None,
) -> ProcessGenerator:
    chunks = list(chunks) if chunks is not None else ctx.config.chunks(src.nbytes)
    pipeline_root = ctx.group_root
    is_global_root = task.rank == pipeline_root
    root_events = (
        [Event(task.engine, name=f"ar-chunk{i}") for i in range(len(chunks))]
        if is_global_root
        else None
    )

    reduce_stage = task.engine.process(
        srm_reduce(
            ctx,
            task,
            src,
            dst if is_global_root else None,
            op,
            root=pipeline_root,
            chunks=chunks,
            root_chunk_done=root_events,
            manage=False,
        ),
        name=f"ar-reduce[{task.rank}]",
    )
    bcast_plan = ctx.bcast_plan(pipeline_root)
    bcast_stage = task.engine.process(
        _broadcast_large(
            ctx,
            bcast_plan,
            ctx.node_state(task),
            task,
            dst,
            chunks,
            root_chunk_ready=root_events,
        ),
        name=f"ar-bcast[{task.rank}]",
    )
    yield reduce_stage
    yield bcast_stage
