"""The integrated SRM allreduce (paper §2.2, §2.4, Fig. 5).

Two regimes:

* **≤ 16 KB** (:attr:`SRMConfig.allreduce_exchange_max`): SMP reduce to each
  node master, then *recursive-doubling pairwise exchange* between the
  masters ([15]): in round ``r`` master ``i`` swaps its running partial with
  master ``i XOR 2^r`` and combines.  Non-power-of-two node counts use the
  standard fold: the excess nodes first fold their contribution into a
  partner and receive the final result back.  An SMP broadcast of the result
  finishes the operation.
* **larger**: reduce-to-root and broadcast-from-root run **concurrently**,
  chunk by chunk, forming the four-stage pipeline of Fig. 5 — SMP reduce,
  inter-node reduce, inter-node broadcast, SMP broadcast — with per-chunk
  events chaining the root's reduce output into its broadcast input.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import InvocationState, SRMContext
from repro.core.internode.broadcast import _broadcast_large, reserve_broadcast
from repro.core.internode.reduce import reserve_reduce, srm_reduce
from repro.core.smp.broadcast import fill_slot, smp_broadcast_chunk
from repro.core.smp.reduce import smp_reduce_chunk
from repro.obs.taxonomy import EXCHANGE_ROUND
from repro.sim.events import Event
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.dispatch import Decision
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["srm_allreduce", "reserve_allreduce", "allreduce_body"]

_SIGNAL = np.zeros(0, dtype=np.uint8)


def _bytes(buffer: np.ndarray) -> np.ndarray:
    return buffer.reshape(-1).view(np.uint8)


def srm_allreduce(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
) -> ProcessGenerator:
    """One rank's part of an SRM allreduce (result in every ``dst``)."""
    ctx.validate("allreduce", src.nbytes, task.rank)
    if dst.nbytes != src.nbytes:
        raise ValueError(f"allreduce dst ({dst.nbytes} B) must match src ({src.nbytes} B)")
    decision = ctx.dispatch("allreduce", src.nbytes, task)
    invocation = reserve_allreduce(ctx, task, decision, src.nbytes)
    yield from allreduce_body(ctx, task, src, dst, op, decision, invocation)


def _pipeline_chunks(ctx: SRMContext, decision: "Decision", nbytes: int) -> list[tuple[int, int]]:
    """The pipelined variant's chunking (shared by reserve and body)."""
    if decision.chunks is not None:
        return list(decision.chunks)
    return ctx.config.chunks(nbytes)


def reserve_allreduce(
    ctx: SRMContext, task: "Task", decision: "Decision", nbytes: int
) -> InvocationState:
    """Claim this invocation's sequence windows at this rank (at start).

    The pipelined variant carries both its reduce-stage and broadcast-stage
    windows in one :class:`InvocationState` (the field sets are disjoint);
    the ring variant keeps its legacy self-advancing plan cursors — safe
    because per-rank request chaining serializes a rank's invocations.
    """
    invocation = InvocationState(op="allreduce")
    state = ctx.node_state(task)
    me = state.index_of(task)
    if decision.variant == "exchange":
        invocation.reduce_base = state.reserve_reduce(me, 1)
        if state.is_master(task):
            plan = ctx.allreduce_plan()
            invocation.call = plan.reserve_call(task.rank)
            if state.size > 1:
                invocation.bcast_base = state.reserve_bcast(me, 1)
        else:
            invocation.bcast_base = state.reserve_bcast(me, 1)
    elif decision.variant != "ring":
        chunks = _pipeline_chunks(ctx, decision, nbytes)
        root = ctx.group_root
        reduce_window = reserve_reduce(ctx.reduce_plan(root), state, task, chunks)
        bcast_window = reserve_broadcast(ctx.bcast_plan(root), state, task, chunks, large=True)
        invocation.reduce_base = reduce_window.reduce_base
        invocation.recv_base = reduce_window.recv_base
        invocation.sent_base = reduce_window.sent_base
        invocation.bcast_base = bcast_window.bcast_base
        invocation.stream_base = bcast_window.stream_base
    return invocation


def allreduce_body(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    decision: "Decision",
    invocation: InvocationState,
) -> ProcessGenerator:
    """The allreduce proper, over a pre-reserved invocation window."""
    if decision.variant == "exchange":
        manage = decision.manage_interrupts
        if manage:
            task.lapi.set_interrupts(False)
        try:
            yield from _allreduce_exchange(ctx, task, src, dst, op, invocation)
        finally:
            if manage:
                task.lapi.set_interrupts(True)
    elif decision.variant == "ring":
        from repro.core.internode.ring import srm_allreduce_ring

        yield from srm_allreduce_ring(ctx, task, src, dst, op)
    else:
        chunks = _pipeline_chunks(ctx, decision, src.nbytes)
        yield from _allreduce_pipelined(ctx, task, src, dst, op, chunks, invocation)


# ---------------------------------------------------------------------------
# small: recursive-doubling pairwise exchange between masters
# ---------------------------------------------------------------------------


def _allreduce_exchange(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    invocation: InvocationState,
) -> ProcessGenerator:
    state = ctx.node_state(task)
    nbytes = src.nbytes
    dtype = src.dtype
    src_data = src.reshape(-1)
    dst_data = dst.reshape(-1)
    intra_tree = ctx.reduce_plan(ctx.group_root).trees.intra[task.node.index]

    if not state.is_master(task):
        # Contribute to the SMP reduce, then collect the result.
        yield from smp_reduce_chunk(
            state, task, intra_tree, src_data, op, sequence=invocation.reduce_base
        )
        yield from smp_broadcast_chunk(
            state,
            task,
            is_source=False,
            src_chunk=None,
            dst_chunk=dst_data,
            sequence=invocation.bcast_base,
        )
        return

    plan = ctx.allreduce_plan()
    call = invocation.call
    slot = call % 2
    node = task.node.index
    my_position = plan.position[node]
    participating = len(plan.node_order)
    group = plan.group_size  # the power-of-two exchange group

    # The master accumulates directly in its own destination buffer.
    yield from smp_reduce_chunk(
        state, task, intra_tree, src_data, op, target=dst_data,
        sequence=invocation.reduce_base,
    )

    if my_position >= group:
        # Excess node: fold into the partner, get the final result back.
        partner_node = plan.fold_partner[node]
        yield from task.lapi.put(
            plan.masters[partner_node],
            plan.fold_staging[node][slot][:nbytes].view(dtype),
            dst_data,
            target_counter=plan.fold_arrival[node],
        )
        yield from task.lapi.waitcntr(plan.fold_result_arrival[node], 1)
        yield from task.copy(dst_data, state.partial_buffer(call, nbytes).view(dtype))
    else:
        folder_position = my_position + group
        folder = plan.node_order[folder_position] if folder_position < participating else None
        if folder is not None:
            yield from task.lapi.waitcntr(plan.fold_arrival[folder], 1)
            yield from task.reduce_into(
                dst_data, plan.fold_staging[folder][slot][:nbytes].view(dtype), op
            )
        for round_index in range(plan.rounds):
            with task.phase(EXCHANGE_ROUND):
                peer_node = plan.node_order[my_position ^ (1 << round_index)]
                yield from task.lapi.put(
                    plan.masters[peer_node],
                    plan.exchange[peer_node][round_index][slot][:nbytes].view(dtype),
                    dst_data,
                    target_counter=plan.arrival[peer_node][round_index],
                )
                yield from task.lapi.waitcntr(plan.arrival[node][round_index], 1)
                yield from task.reduce_into(
                    dst_data, plan.exchange[node][round_index][slot][:nbytes].view(dtype), op
                )
        if folder is not None:
            # Send the finished result back into the folder's partial buffer.
            folder_partial = ctx.nodes[folder].partial_buffer(call, nbytes).view(dtype)
            yield from task.lapi.put(
                plan.masters[folder],
                folder_partial,
                dst_data,
                target_counter=plan.fold_result_arrival[folder],
            )

    # SMP broadcast of the result to the local tasks.
    if state.size > 1:
        yield from fill_slot(state, task, invocation.bcast_base % 2, dst_data)


# ---------------------------------------------------------------------------
# large: the Fig. 5 four-stage pipeline
# ---------------------------------------------------------------------------


def _allreduce_pipelined(
    ctx: SRMContext,
    task: "Task",
    src: np.ndarray,
    dst: np.ndarray,
    op: "ReduceOp",
    chunks: list[tuple[int, int]],
    invocation: InvocationState,
) -> ProcessGenerator:
    pipeline_root = ctx.group_root
    is_global_root = task.rank == pipeline_root
    root_events = (
        [Event(task.engine, name=f"ar-chunk{i}") for i in range(len(chunks))]
        if is_global_root
        else None
    )

    reduce_stage = task.engine.process(
        srm_reduce(
            ctx,
            task,
            src,
            dst if is_global_root else None,
            op,
            root=pipeline_root,
            chunks=chunks,
            root_chunk_done=root_events,
            manage=False,
            invocation=invocation,
        ),
        name=f"ar-reduce[{task.rank}]",
    )
    bcast_plan = ctx.bcast_plan(pipeline_root)
    bcast_stage = task.engine.process(
        _broadcast_large(
            ctx,
            bcast_plan,
            ctx.node_state(task),
            task,
            dst,
            chunks,
            invocation,
            root_chunk_ready=root_events,
        ),
        name=f"ar-bcast[{task.rank}]",
    )
    yield reduce_stage
    yield bcast_stage
