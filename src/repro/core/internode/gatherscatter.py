"""RMA-native gather / scatter / allgather (extension operations).

The paper implements the "common set" — barrier, broadcast, reduce,
allreduce — but its substrate invites the block-data collectives too, and a
release of this system would ship them.  They are built the way the
ARMCI/Global-Arrays line of work (the authors' own software) built them:
**directly on one-sided puts**, with no packing trees:

* **scatter** — every member registers its receive buffer with the root
  (one zero-byte address-exchange put each); the root then puts block *i*
  straight into member *i*'s buffer.  Intra-node puts short-circuit through
  the memory bus, so the SMP domain is exploited without a separate
  protocol.
* **gather** — the root announces its receive window by broadcasting a
  zero-byte epoch token down the (log-depth) SRM broadcast tree; every
  member then puts its block into the root's buffer at its own offset and
  the root waits for the arrival counter to reach ``group size - 1``.
* **allgather** — two regimes, like the paper's own operations: below
  :attr:`SRMConfig.allgather_ring_min` total bytes, gather-to-root composed
  with an SRM broadcast (latency-optimal, ~2 log k network rounds); above
  it, a **hierarchical ring**: members put blocks into their master's
  result buffer through the memory bus, the k masters circulate
  node-segments around a ring of puts (each byte crosses the network k−1
  times in perfect parallel — bandwidth-optimal, like MPI's ring, but at
  node granularity with log-free shared-memory ends), and the full result
  fans out locally through the Fig. 3 double buffers.

Block layout follows MPI: member *j*'s block occupies
``[position_j * block, (position_j + 1) * block)`` where ``position_j`` is
the member's index in the group's sorted member list.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import SRMContext
from repro.core.internode.broadcast import srm_broadcast
from repro.core.smp.broadcast import smp_broadcast_chunk
from repro.errors import ConfigurationError
from repro.lapi.counters import LapiCounter
from repro.obs.taxonomy import (
    BLOCK_REGISTER,
    BLOCK_TRANSFER,
    FLOW_RING_SIGNAL,
    PIPELINE_CHUNK,
    RING_STEP,
    STREAM_JOIN,
)
from repro.shmem.flags import SharedFlag
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = [
    "srm_scatter",
    "srm_gather",
    "srm_allgather",
    "srm_alltoall",
    "BlockPlan",
    "AllgatherPlan",
]

_SIGNAL = np.zeros(0, dtype=np.uint8)


def _bytes(buffer: np.ndarray) -> np.ndarray:
    return buffer.reshape(-1).view(np.uint8)


class BlockPlan:
    """Per-root counters and the per-call buffer registry for block ops."""

    def __init__(self, ctx: SRMContext, root: int) -> None:
        machine = ctx.machine
        root_lapi = machine.task(root).lapi
        #: Scatter: each member's arrival counter (one block expected).
        self.scatter_arrival: dict[int, LapiCounter] = {
            rank: machine.task(rank).lapi.counter(name=f"scat:{rank}")
            for rank in ctx.members
            if rank != root
        }
        #: Scatter: registrations landed at the root.
        self.address_arrival = root_lapi.counter(name=f"scat-addr:{root}")
        #: Gather: blocks landed at the root.
        self.gather_arrival = root_lapi.counter(name=f"gath:{root}")
        #: Per-call registries (serialized by collective semantics).
        self.member_buffers: dict[int, np.ndarray] = {}
        self.root_buffer: np.ndarray | None = None
        #: Gather epoch token carried by the window-open broadcast.
        self.epoch = np.zeros(1, dtype=np.uint8)


def _block_plan(ctx: SRMContext, root: int) -> BlockPlan:
    plans = getattr(ctx, "_block_plans", None)
    if plans is None:
        plans = {}
        ctx._block_plans = plans  # type: ignore[attr-defined]
    if root not in plans:
        ctx.check_member(root)
        plans[root] = BlockPlan(ctx, root)
    return plans[root]


def _positions(ctx: SRMContext) -> dict[int, int]:
    return {rank: index for index, rank in enumerate(ctx.members)}


def srm_scatter(
    ctx: SRMContext,
    task: "Task",
    sendbuf: np.ndarray | None,
    recvbuf: np.ndarray,
    root: int = 0,
) -> ProcessGenerator:
    """Scatter ``sendbuf`` blocks from ``root`` into every member's ``recvbuf``."""
    ctx.validate("scatter", recvbuf.nbytes, task.rank, root=root)
    ctx.dispatch("scatter", recvbuf.nbytes, task)
    plan = _block_plan(ctx, root)
    members = ctx.members
    block = recvbuf.nbytes

    if task.rank != root:
        # Register my buffer, then wait for the root's put to land.
        plan.member_buffers[task.rank] = recvbuf
        with task.phase(BLOCK_REGISTER):
            yield from task.lapi.put(root, _SIGNAL, _SIGNAL, target_counter=plan.address_arrival)
        with task.phase(BLOCK_TRANSFER):
            yield from task.lapi.waitcntr(plan.scatter_arrival[task.rank], 1)
        return

    if sendbuf is None:
        raise ConfigurationError("the scatter root needs a send buffer")
    if sendbuf.nbytes != block * len(members):
        raise ConfigurationError(
            f"scatter send buffer is {sendbuf.nbytes} B; "
            f"expected {len(members)} blocks of {block} B"
        )
    data = _bytes(sendbuf)
    positions = _positions(ctx)
    # Wait for every member's registration, then stream the blocks.
    if len(members) > 1:
        with task.phase(BLOCK_REGISTER):
            yield from task.lapi.waitcntr(plan.address_arrival, len(members) - 1)
    with task.phase(BLOCK_TRANSFER):
        deliveries = []
        for rank in members:
            view = data[positions[rank] * block : (positions[rank] + 1) * block]
            if rank == root:
                yield from task.copy(_bytes(recvbuf), view)
                continue
            delivery = yield from task.lapi.put(
                rank,
                _bytes(plan.member_buffers[rank]),
                view,
                target_counter=plan.scatter_arrival[rank],
            )
            deliveries.append(delivery)
        for delivery in deliveries:
            yield delivery


def srm_gather(
    ctx: SRMContext,
    task: "Task",
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None,
    root: int = 0,
) -> ProcessGenerator:
    """Gather every member's ``sendbuf`` block into ``root``'s ``recvbuf``."""
    ctx.validate("gather", sendbuf.nbytes, task.rank, root=root)
    ctx.dispatch("gather", sendbuf.nbytes, task)
    plan = _block_plan(ctx, root)
    members = ctx.members
    block = sendbuf.nbytes
    positions = _positions(ctx)

    if task.rank == root:
        if recvbuf is None:
            raise ConfigurationError("the gather root needs a receive buffer")
        if recvbuf.nbytes != block * len(members):
            raise ConfigurationError(
                f"gather receive buffer is {recvbuf.nbytes} B; "
                f"expected {len(members)} blocks of {block} B"
            )
        plan.root_buffer = recvbuf
    # Window-open epoch rides the SRM broadcast tree (log depth).
    with task.phase(BLOCK_REGISTER):
        yield from srm_broadcast(ctx, task, plan.epoch, root)

    data = _bytes(plan.root_buffer)  # type: ignore[arg-type]
    my_slice = data[positions[task.rank] * block : (positions[task.rank] + 1) * block]
    with task.phase(BLOCK_TRANSFER):
        if task.rank == root:
            yield from task.copy(my_slice, _bytes(sendbuf))
            if len(members) > 1:
                yield from task.lapi.waitcntr(plan.gather_arrival, len(members) - 1)
            return
        yield from task.lapi.put(
            root, my_slice, _bytes(sendbuf), target_counter=plan.gather_arrival
        )


def srm_allgather(
    ctx: SRMContext,
    task: "Task",
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
) -> ProcessGenerator:
    """Every member's block, concatenated, delivered to every member."""
    ctx.validate("allgather", recvbuf.nbytes, task.rank)
    if recvbuf.nbytes != sendbuf.nbytes * len(ctx.members):
        raise ConfigurationError(
            f"allgather receive buffer is {recvbuf.nbytes} B; expected "
            f"{len(ctx.members)} blocks of {sendbuf.nbytes} B"
        )
    decision = ctx.dispatch("allgather", recvbuf.nbytes, task)
    if decision.variant == "ring":
        yield from _allgather_ring(ctx, task, sendbuf, recvbuf)
        return
    root = ctx.group_root
    yield from srm_gather(ctx, task, sendbuf, recvbuf if task.rank == root else None, root)
    yield from srm_broadcast(ctx, task, recvbuf, root)


class AlltoallPlan:
    """Registry + per-member arrival counters for the all-to-all exchange."""

    def __init__(self, ctx: SRMContext) -> None:
        self.arrival: dict[int, LapiCounter] = {
            rank: ctx.machine.task(rank).lapi.counter(name=f"a2a:{rank}")
            for rank in ctx.members
        }
        self.registry: dict[int, np.ndarray] = {}


def srm_alltoall(
    ctx: SRMContext,
    task: "Task",
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
) -> ProcessGenerator:
    """Personalized exchange: my block *j* lands in member *j*'s buffer at
    my position.

    RMA-native: after a window-opening barrier (every member has registered
    its receive buffer), each member issues ``size - 1`` direct puts — every
    block crosses the network exactly once, all transfers in parallel — and
    waits for its own ``size - 1`` arrivals.
    """
    from repro.core.internode.barrier import srm_barrier

    ctx.validate("alltoall", sendbuf.nbytes, task.rank)
    ctx.dispatch("alltoall", sendbuf.nbytes, task)
    members = ctx.members
    size = len(members)
    if sendbuf.nbytes != recvbuf.nbytes or sendbuf.nbytes % size:
        raise ConfigurationError(
            f"alltoall buffers must both hold {size} equal blocks "
            f"(got send={sendbuf.nbytes} B, recv={recvbuf.nbytes} B)"
        )
    block = sendbuf.nbytes // size
    plan = getattr(ctx, "_alltoall_plan", None)
    if plan is None:
        plan = AlltoallPlan(ctx)
        ctx._alltoall_plan = plan  # type: ignore[attr-defined]
    positions = _positions(ctx)
    my_position = positions[task.rank]
    send_data = _bytes(sendbuf)
    recv_data = _bytes(recvbuf)

    # Window open: the barrier doubles as the registration epoch — after it,
    # every member's buffer reference is current for this call.
    plan.registry[task.rank] = recvbuf
    with task.phase(BLOCK_REGISTER):
        yield from srm_barrier(ctx, task)

    with task.phase(BLOCK_TRANSFER):
        # My own block moves locally.
        yield from task.copy(
            recv_data[my_position * block : (my_position + 1) * block],
            send_data[my_position * block : (my_position + 1) * block],
        )
        deliveries = []
        for offset in range(1, size):
            # Rotated order spreads instantaneous load across targets.
            peer_position = (my_position + offset) % size
            peer = members[peer_position]
            peer_buffer = _bytes(plan.registry[peer])
            delivery = yield from task.lapi.put(
                peer,
                peer_buffer[my_position * block : (my_position + 1) * block],
                send_data[peer_position * block : (peer_position + 1) * block],
                target_counter=plan.arrival[peer],
            )
            deliveries.append(delivery)
        if size > 1:
            yield from task.lapi.waitcntr(plan.arrival[task.rank], size - 1)
        for delivery in deliveries:
            yield delivery


# ---------------------------------------------------------------------------
# hierarchical ring allgather (large results)
# ---------------------------------------------------------------------------


class AllgatherPlan:
    """Counters, registries, and segment geometry for the master ring."""

    def __init__(self, ctx: SRMContext) -> None:
        machine = ctx.machine
        self.node_order = sorted(ctx.nodes)
        self.position = {node: index for index, node in enumerate(self.node_order)}
        self.masters = {node: ctx.nodes[node].master_rank for node in self.node_order}
        #: Segment geometry: members are sorted, so one node's members form a
        #: contiguous range of positions in the group member list.
        positions = {rank: index for index, rank in enumerate(ctx.members)}
        self.segment: dict[int, tuple[int, int]] = {}
        for node in self.node_order:
            state = ctx.nodes[node]
            first = positions[state.members[0]]
            self.segment[node] = (first, len(state.members))
        self.ring_arrival: dict[int, LapiCounter] = {}
        self.addr_arrival: dict[int, LapiCounter] = {}
        self.member_arrival: dict[int, LapiCounter] = {}
        self.epoch_flag: dict[int, SharedFlag] = {}
        for node in self.node_order:
            master_lapi = machine.task(self.masters[node]).lapi
            self.ring_arrival[node] = master_lapi.counter(name=f"agring:{node}")
            self.addr_arrival[node] = master_lapi.counter(name=f"agaddr:{node}")
            self.member_arrival[node] = master_lapi.counter(name=f"agmem:{node}")
            self.epoch_flag[node] = SharedFlag(machine.nodes[node], name=f"agepoch[{node}]")
        #: Per-call registry of each node's master result buffer.
        self.registry: dict[int, np.ndarray] = {}
        #: Per-member completed ring-allgather calls (epoch agreement).
        self.calls: dict[int, int] = {rank: 0 for rank in ctx.members}


def _allgather_plan(ctx: SRMContext) -> AllgatherPlan:
    plan = getattr(ctx, "_allgather_ring_plan", None)
    if plan is None:
        plan = AllgatherPlan(ctx)
        ctx._allgather_ring_plan = plan  # type: ignore[attr-defined]
    return plan


def _allgather_ring(
    ctx: SRMContext,
    task: "Task",
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
) -> ProcessGenerator:
    plan = _allgather_plan(ctx)
    state = ctx.node_state(task)
    node = task.node.index
    block = sendbuf.nbytes
    ring_size = len(plan.node_order)
    my_position = plan.position[node]
    epoch = plan.calls[task.rank] + 1
    plan.calls[task.rank] = epoch
    data = _bytes(recvbuf)
    member_positions = {rank: index for index, rank in enumerate(ctx.members)}
    my_slice = slice(
        member_positions[task.rank] * block, (member_positions[task.rank] + 1) * block
    )

    def segment_view(buffer: np.ndarray, segment_node: int) -> np.ndarray:
        first, count = plan.segment[segment_node]
        return buffer[first * block : (first + count) * block]

    if not state.is_master(task):
        # Wait for this call's window, put my block into the master's
        # result buffer (an intra-node put: one bus copy), then join the
        # local fan-out of the completed result.
        with task.phase(BLOCK_REGISTER):
            yield from plan.epoch_flag[node].wait_for(task, lambda v: v >= epoch)
        with task.phase(BLOCK_TRANSFER):
            yield from task.lapi.put(
                plan.masters[node],
                _bytes(plan.registry[node])[my_slice],
                _bytes(sendbuf),
                target_counter=plan.member_arrival[node],
            )
        yield from _fan_out(ctx, state, task, data)
        return

    # Master: open the window, register with my writer (the left neighbour
    # puts into my buffer), and contribute my own block.
    plan.registry[node] = recvbuf
    left = plan.node_order[(my_position - 1) % ring_size]
    with task.phase(BLOCK_REGISTER):
        yield from task.lapi.put(
            plan.masters[left], _SIGNAL, _SIGNAL, target_counter=plan.addr_arrival[left]
        )
        yield from plan.epoch_flag[node].set(task, epoch)
    with task.phase(BLOCK_TRANSFER):
        yield from task.copy(data[my_slice], _bytes(sendbuf))
        if state.size > 1:
            yield from task.lapi.waitcntr(plan.member_arrival[node], state.size - 1)

    # Ring: at step s, forward the segment that originated s hops back.
    with task.phase(BLOCK_REGISTER):
        yield from task.lapi.waitcntr(plan.addr_arrival[node], 1)
    right = plan.node_order[(my_position + 1) % ring_size]
    right_buffer = _bytes(plan.registry[right])
    right_master = plan.masters[right]
    deliveries = []
    previous_signal = None
    for step in range(ring_size - 1):
        with task.phase(RING_STEP):
            source_node = plan.node_order[(my_position - step) % ring_size]
            issue_ts = task.engine.now
            delivery = yield from task.lapi.put(
                right_master,
                segment_view(right_buffer, source_node),
                segment_view(data, source_node),
            )
            deliveries.append(delivery)
            # Node segments differ in size, so the fluid network model can land
            # a later (smaller) segment first; bump the right neighbour's
            # counter strictly in send order, as the FIFO switch route would.
            signal = task.engine.event(name=f"ag-fifo:{node}:{step}")
            task.engine.process(
                _ring_signal(
                    delivery, previous_signal, plan.ring_arrival[right], signal,
                    flow=_signal_flow(task, issue_ts, right_master),
                ),
                name=f"ag-signal:{node}->{right}",
            )
            previous_signal = signal
            # My inbound segment for this step must land before I can forward
            # it next step (and before the result is complete).
            yield from task.lapi.waitcntr(plan.ring_arrival[node], 1)
    with task.phase(STREAM_JOIN):
        for delivery in deliveries:
            yield delivery
    yield from _fan_out(ctx, state, task, data)


def _ring_signal(delivery, previous_signal, counter, signal, flow=None) -> ProcessGenerator:
    yield delivery
    if previous_signal is not None and not previous_signal.processed:
        yield previous_signal
    counter.increment()
    if flow is not None:
        flow()
    signal.succeed()


def _signal_flow(task: "Task", issue_ts: float, dst_rank: int):
    """A callback recording the ``ring-signal`` flow link at increment time.

    FIFO-chained ring signals increment the neighbour's arrival counter from
    a helper process, invisible to the put-level flow links; this records the
    causal edge the wait-state classifier and critical-path walker need —
    issued when the put was injected, delivered when the signal lands.
    Purely passive (an append on the recorder), so simulation timing is
    untouched.
    """
    obs, engine = task.obs, task.engine

    def record() -> None:
        obs.flow(FLOW_RING_SIGNAL, task.rank, issue_ts, dst_rank, engine.now)

    return record


def _fan_out(ctx: SRMContext, state, task: "Task", data: np.ndarray) -> ProcessGenerator:
    """Local distribution of the assembled result through the Fig. 3 buffers."""
    if state.size == 1:
        return
    chunk = ctx.config.shared_buffer_bytes
    is_master = state.is_master(task)
    for offset in range(0, data.nbytes, chunk):
        view = data[offset : offset + min(chunk, data.nbytes - offset)]
        with task.phase(PIPELINE_CHUNK):
            yield from smp_broadcast_chunk(
                state,
                task,
                is_source=is_master,
                src_chunk=view if is_master else None,
                dst_chunk=None if is_master else view,
            )
