"""Compiled schedule replay for persistent collectives.

The paper's protocols are deterministic given (algorithm, message size,
topology), and a :class:`~repro.core.requests.PersistentCollective` pins
exactly that tuple — so the event schedule of a repeated collective is a
pure function of the plan and the invocation's slot parities.  This module
records one full execution of a persistent-plan window as a flat
:class:`CompiledSchedule` and replays later windows with the same key as a
vectorized kernel: batched memops (:func:`repro.machine.memops.apply_batch`),
bulk counter/flag/cursor updates, and re-emitted observability tails —
instead of re-driving :mod:`repro.sim.engine` processes and generators.

How a window forms
------------------

``plan.start()`` calls made while the engine is idle are *deferred* by the
:class:`ReplayManager` (installed at ``engine.trace``, the same None-default
tap slot as the verifier, fault plan, and monitor).  The next plain
``engine.run()`` flushes them:

* **replay** — the window's key (per-plan identity + generation + invocation
  slot parities + the context's legacy cursor parities) matches a committed
  trace and every recorded precondition holds → the trace is applied at the
  flush instant and per-request completion events are scheduled at the
  recorded relative times.  ``replay.hits`` increments.
* **record** — no usable trace: the requests are materialized as ordinary
  progress processes and a recording is armed.  When the run loop drains the
  queue (quiescence) with every member request complete, the trace commits.
  ``replay.misses`` increments.
* **slow path, untraced** — the window is *dirty* (non-empty queue, a
  tie-break scheduler, a fault plan, ``run(until=...)``, or ``step()``):
  the requests are materialized and nothing is recorded or replayed.

What a trace holds
------------------

* the **op tape**: every byte-moving effect in capture order — shared-memory
  copies, operator applications, and put/get data movements, each holding
  the live NumPy views it touched (persistent plans pin their buffers, so
  the views stay valid until :meth:`PersistentCollective.rebind`
  invalidates the plan's traces);
* the **state diff**: (pre, post) pairs for every touched counter, flag,
  cursor, and stat cell.  Integer cells replay as deltas (cumulative
  sequence counters keep advancing across windows); non-integer cells
  (``reduce_last_write``'s ``None``, buffer-address registrations) must
  match exactly.  Every precondition is checked before anything mutates —
  a mismatch is a clean miss and the window re-records;
* the **observability tail**: phase spans, flow links, resource-monitor
  samples, histogram observations (all window-relative, re-emitted shifted
  so profiles, critical paths, and wait-state classification of a replayed
  window match the recorded one), and metric counter deltas;
* per-request **completion times and values**, plus the window duration, so
  ``engine.now`` advances through a replayed window exactly as recorded.

Failure safety: a recording that never reaches quiescence (a
``DeadlockError``, any exception out of the run loop, an interrupted run)
is discarded at the next flush — a half-written trace is never cached, and
the next ``start()`` falls back to the slow path.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.machine.memops import apply_batch
from repro.obs.metrics import Histogram, TimeWeightedHistogram, _bucket_index
from repro.obs.monitor import ResourceSample
from repro.obs.spans import FlowLink, PhaseSpan
from repro.obs.taxonomy import REQUEST

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import SRMContext
    from repro.core.requests import CollectiveRequest, PersistentCollective
    from repro.machine.cluster import Machine
    from repro.sim.engine import Engine

__all__ = ["CompiledSchedule", "ReplayManager", "manager_for"]


#: Sentinel for "this dict key did not exist at the window boundary".
_MISSING = object()

#: Op-tape kinds (the ``kind`` column of the op metadata array).
OP_COPY = 0
OP_REDUCE = 1
OP_COMBINE = 2


def manager_for(engine: "Engine") -> "ReplayManager":
    """The engine's replay manager, installing one at ``engine.trace``."""
    manager = engine.trace
    if not isinstance(manager, ReplayManager):
        manager = ReplayManager(engine)
        engine.trace = manager
    return manager


# ---------------------------------------------------------------------------
# state cells: a uniform handle on every mutable protocol-state scalar
# ---------------------------------------------------------------------------
#
# A cell is ("attr", obj, name) | ("item", sequence, index) | ("dict", d, key).
# Cells hold direct references; identity keys join the arm-time and
# commit-time snapshots.


def _cell_get(cell: tuple) -> typing.Any:
    kind, container, key = cell
    if kind == "attr":
        return getattr(container, key)
    if kind == "item":
        return container[key]
    return container.get(key, _MISSING)


def _cell_set(cell: tuple, value: typing.Any) -> None:
    kind, container, key = cell
    if kind == "attr":
        setattr(container, key, value)
    elif kind == "item":
        container[key] = value
    else:
        container[key] = value


def _cell_id(cell: tuple) -> tuple:
    kind, container, key = cell
    return (kind, id(container), key)


_TASK_STAT_FIELDS = ("copies", "bytes_copied", "reduce_ops", "bytes_reduced", "yields", "interrupts")
_LAPI_STAT_FIELDS = ("puts", "gets", "amsends", "rmws", "bytes_put", "bytes_got", "stalled_deliveries")


def _machine_cells(machine: "Machine") -> typing.Iterator[tuple]:
    for task in machine.tasks:
        stats = task.stats
        for name in _TASK_STAT_FIELDS:
            yield ("attr", stats, name)
        lapi_stats = task.lapi.stats
        for name in _LAPI_STAT_FIELDS:
            yield ("attr", lapi_stats, name)
        yield ("attr", task.lapi, "interrupts_enabled")


def _flag_cells(bank) -> typing.Iterator[tuple]:
    for flag in bank.flags:
        yield ("attr", flag, "_value")


def _counter_cell(counter) -> tuple:
    return ("attr", counter, "_value")


def _dict_cells(d: dict) -> typing.Iterator[tuple]:
    for key in d:
        yield ("dict", d, key)


def _context_cells(ctx: "SRMContext") -> typing.Iterator[tuple]:
    for state in ctx.nodes.values():
        yield ("attr", state.bcast_buf, "cursor")
        for bank in state.bcast_buf.ready:
            yield from _flag_cells(bank)
        for i in range(len(state.bcast_seq)):
            yield ("item", state.bcast_seq, i)
        yield from _flag_cells(state.reduce_ready)
        yield from _flag_cells(state.reduce_consumed)
        for i in range(len(state.reduce_seq)):
            yield ("item", state.reduce_seq, i)
        for row in state.reduce_last_write:
            for i in range(len(row)):
                yield ("item", row, i)
        yield from _flag_cells(state.barrier_flags)
    for plan in ctx._bcast_plans.values():
        for edge in plan.edges.values():
            for counter in edge.arrival:
                yield _counter_cell(counter)
            for counter in edge.free:
                yield _counter_cell(counter)
        for counter in plan.stream_arrival.values():
            yield _counter_cell(counter)
        for counter in plan.address_arrival.values():
            yield _counter_cell(counter)
        yield from _dict_cells(plan.stream_base)
        yield from _dict_cells(plan.user_buffers)
    for plan in ctx._reduce_plans.values():
        for pair in plan.arrival.values():
            for counter in pair:
                yield _counter_cell(counter)
        for pair in plan.free.values():
            for counter in pair:
                yield _counter_cell(counter)
        yield from _dict_cells(plan.sent_seq)
        yield from _dict_cells(plan.recv_seq)
    plan = ctx._allreduce_plan
    if plan is not None:
        for counters in plan.arrival.values():
            for counter in counters:
                yield _counter_cell(counter)
        for counter in plan.fold_arrival.values():
            yield _counter_cell(counter)
        for counter in plan.fold_result_arrival.values():
            yield _counter_cell(counter)
        yield from _dict_cells(plan.call_seq)
    plan = ctx._barrier_plan
    if plan is not None:
        for counters in plan.counters.values():
            for counter in counters:
                yield _counter_cell(counter)
    yield from _dict_cells(ctx._invocation_seq)


def _snapshot(contexts: typing.Iterable["SRMContext"], machine: "Machine") -> dict:
    """``cell id -> (cell, value)`` over every known protocol-state scalar."""
    snapshot: dict = {}
    for cell in _machine_cells(machine):
        snapshot[_cell_id(cell)] = (cell, _cell_get(cell))
    for ctx in contexts:
        for cell in _context_cells(ctx):
            snapshot[_cell_id(cell)] = (cell, _cell_get(cell))
    return snapshot


def _context_cursor_parity(ctx: "SRMContext") -> tuple:
    """Parity signature of the context's legacy (non-reserved) cursors.

    Direct-generator paths (e.g. the ring allreduce ablation) advance node
    cursors mid-body instead of reserving windows up front; their slot
    choices depend on these parities, so the window key must include them.
    """
    parts = []
    for node in sorted(ctx.nodes):
        state = ctx.nodes[node]
        parts.append(
            (
                node,
                state.bcast_buf.cursor & 1,
                tuple(s & 1 for s in state.bcast_seq),
                tuple(s & 1 for s in state.reduce_seq),
            )
        )
    return tuple(parts)


def _invocation_parity(invocation) -> tuple:
    """The slot-parity signature of one reserved invocation window."""
    return (
        invocation.op,
        invocation.root,
        invocation.bcast_base & 1,
        invocation.reduce_base & 1,
        invocation.stream_base & 1,
        invocation.sent_base & 1,
        tuple(sorted((rank, base & 1) for rank, base in invocation.recv_base.items())),
        invocation.call & 1,
    )


# ---------------------------------------------------------------------------
# histogram tape: capture distribution observations during a recording
# ---------------------------------------------------------------------------


class _HistogramTape:
    """Forwarding proxy swapped onto the obs hub while a recording is armed.

    Call sites resolve ``obs.<instrument>.observe(...)`` at call time, so
    swapping the hub attribute captures every observation with its
    timestamp while still updating the real instrument.
    """

    __slots__ = ("real", "engine", "events")

    def __init__(self, real, engine: "Engine") -> None:
        self.real = real
        self.engine = engine
        self.events: list[tuple[float, float]] = []

    def observe(self, value: float) -> None:
        self.events.append((self.engine.now, value))
        self.real.observe(value)

    def __getattr__(self, name: str):
        return getattr(self.real, name)


# ---------------------------------------------------------------------------
# the compiled trace
# ---------------------------------------------------------------------------


class CompiledSchedule:
    """One committed window: a flat, NumPy-backed event-schedule trace."""

    def __init__(
        self,
        key: tuple,
        plans: list["PersistentCollective"],
        duration: float,
        ops: list[tuple],
        op_meta: np.ndarray,
        state_entries: list[tuple],
        metric_deltas: list[tuple],
        hist_events: list[tuple],
        span_tail: dict | None,
        flow_tail: list[tuple],
        monitor_tail: list[tuple],
        completions: list[tuple[float, typing.Any]],
    ) -> None:
        self.key = key
        #: Strong refs keep ``id(plan)`` in the key stable for the cache's life.
        self.plans = plans
        self.duration = duration
        #: Capture-order op tape: (kind, dst, a, b, operator) with live views.
        self.ops = ops
        #: Structured metadata columns (kind, nbytes) for the op tape.
        self.op_meta = op_meta
        #: (cell, pre, post, is_delta) — int/int cells replay as deltas.
        self.state_entries = state_entries
        #: (metric kind, name, help, delta) for counters and gauges.
        self.metric_deltas = metric_deltas
        #: (hub attr, instrument kind, rel_times, values) observation tapes.
        self.hist_events = hist_events
        #: Columnar span tail (rel times as float64 arrays) or None.
        self.span_tail = span_tail
        #: (kind, src_rank, rel_src, dst_rank, rel_dst, detail) links.
        self.flow_tail = flow_tail
        #: (name, resource kind, [(rel, occupancy, queued, saturated)]).
        self.monitor_tail = monitor_tail
        #: Per deferred start, in window order: (rel completion time, value).
        self.completions = completions
        self.replays = 0
        #: Split entry lists for the hot loops: integer cells replay as
        #: precomputed deltas, everything else as exact (pre -> post) swaps.
        self._delta_entries = [
            (cell, post - pre) for cell, pre, post, is_delta in state_entries if is_delta
        ]
        self._exact_entries = [
            (cell, pre, post) for cell, pre, post, is_delta in state_entries if not is_delta
        ]
        #: Histogram tapes folded to replay-ready aggregates.  Bucket counts,
        #: observation count, and min/max are order-independent integers or
        #: pure comparisons, so they fold exactly; the running float ``total``
        #: keeps the sequential per-value addition order so replayed sums stay
        #: bit-identical to the slow path.  Time-weighted tapes replay
        #: event-by-event (each settle depends on the previous interval).
        self._hist_rows: list[tuple] = []
        for attr, kind, rel_times, values in hist_events:
            if kind == "histogram":
                if not values:
                    continue
                buckets: dict[int, int] = {}
                for value in values:
                    index = _bucket_index(value)
                    buckets[index] = buckets.get(index, 0) + 1
                self._hist_rows.append(
                    (
                        attr,
                        kind,
                        tuple(values),
                        len(values),
                        min(values),
                        max(values),
                        tuple(buckets.items()),
                    )
                )
            else:
                self._hist_rows.append((attr, kind, tuple(zip(rel_times, values))))
        #: Replay-ready row cache derived from the columnar span tail once
        #: (Python scalars, positional order) — the apply loop's hot input.
        self._span_rows: list[tuple] | None = None
        if span_tail is not None:
            self._span_rows = list(
                zip(
                    span_tail["names"],
                    span_tail["rel_start"].tolist(),
                    span_tail["rel_end"].tolist(),
                    span_tail["ranks"].tolist(),
                    span_tail["depths"].tolist(),
                    span_tail["parent_offsets"].tolist(),
                    span_tail["tracks"].tolist(),
                    span_tail["details"],
                    span_tail["request_members"].tolist(),
                )
            )

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def preconditions_ok(self) -> bool:
        """True when every recorded state precondition holds right now."""
        for cell, _delta in self._delta_entries:
            if type(_cell_get(cell)) is not int:
                return False
        for cell, pre, _post in self._exact_entries:
            current = _cell_get(cell)
            if isinstance(pre, np.ndarray) or isinstance(current, np.ndarray):
                if current is not pre:
                    return False
            elif current is not pre and current != pre:
                return False
        return True

    def apply(self, engine: "Engine", machine: "Machine", starts: list) -> None:
        """Replay the window at the current instant (preconditions hold)."""
        t0 = engine.now

        # 1. Data movement: the whole op tape in one batched pass.
        apply_batch(self.ops)

        # 2. Bulk state update: deltas for cumulative counters/cursors,
        #    exact values for everything else.
        for cell, delta in self._delta_entries:
            kind, container, key = cell
            if kind == "attr":
                setattr(container, key, getattr(container, key) + delta)
            else:
                container[key] = container[key] + delta
        for cell, _pre, post in self._exact_entries:
            _cell_set(cell, post)

        # 3. Metrics: counter/gauge deltas plus re-observed distributions.
        obs = machine.obs
        registry = obs.metrics
        if registry.enabled:
            for kind, name, help_text, delta in self.metric_deltas:
                instrument = (
                    registry.counter(name, help_text)
                    if kind == "counter"
                    else registry.gauge(name, help_text)
                )
                instrument.inc(delta)
            for row in self._hist_rows:
                instrument = getattr(obs, row[0], None)
                if instrument is None:
                    continue
                if row[1] == "histogram":
                    _attr, _kind, values, count, vmin, vmax, bucket_items = row
                    total = instrument.total
                    for value in values:
                        total += value
                    instrument.total = total
                    instrument.count += count
                    if vmin < instrument.min:
                        instrument.min = vmin
                    if vmax > instrument.max:
                        instrument.max = vmax
                    buckets = instrument._buckets
                    for index, n in bucket_items:
                        buckets[index] = buckets.get(index, 0) + n
                else:  # time histogram: settle at the recorded relative times
                    for rel, value in row[2]:
                        now = t0 + rel
                        instrument._settle(now)
                        instrument._value = float(value)
                        instrument._since = now
                        instrument.observations += 1
                        if value < instrument.min:
                            instrument.min = value
                        if value > instrument.max:
                            instrument.max = value

        # 4. Observability tails, time-shifted to this window.
        recorder = obs.recorder
        if recorder.enabled and self._span_rows is not None:
            span_list = recorder.spans
            base = len(span_list)
            append_span = span_list.append
            index = base
            for name, rel_start, rel_end, rank, depth, parent_off, track, detail, member in self._span_rows:
                if member >= 0:
                    detail = starts[member].request.describe()
                span = PhaseSpan(
                    index,
                    rank,
                    name,
                    t0 + rel_start,
                    depth,
                    (base + parent_off) if parent_off >= 0 else -1,
                    track,
                    detail,
                )
                span.end = t0 + rel_end
                append_span(span)
                index += 1
            append_flow = recorder.flows.append
            for kind, src_rank, rel_src, dst_rank, rel_dst, detail in self.flow_tail:
                append_flow(
                    FlowLink(kind, src_rank, t0 + rel_src, dst_rank, t0 + rel_dst, detail)
                )
        monitor = obs.monitor
        if monitor is not None:
            for name, kind, samples in self.monitor_tail:
                timeline = monitor.register(name, kind)
                # Boundary sample goes through record() (it may coalesce with
                # the pre-window state); the rest of the tail is already
                # coalesced and strictly time-increasing, so direct appends
                # replicate record() exactly.
                rel, occupancy, queued, saturated = samples[0]
                timeline.record(t0 + rel, occupancy, queued, saturated)
                series = timeline._samples
                times = timeline._times
                for rel, occupancy, queued, saturated in samples[1:]:
                    when = t0 + rel
                    series.append(ResourceSample(when, occupancy, queued, saturated))
                    times.append(when)

        # 5. Completion events at the recorded relative times, plus a final
        #    quiescence timeout so the clock traverses the whole window.
        for start, (rel, value) in zip(starts, self.completions):
            timer = engine.timeout(rel)
            timer.add_callback(
                lambda _event, request=start.request, v=value: request._replay_complete(v)
            )
        engine.timeout(self.duration)
        self.replays += 1

    def __repr__(self) -> str:
        return (
            f"<CompiledSchedule ops={self.op_count} state={len(self.state_entries)} "
            f"duration={self.duration:.6g}s replays={self.replays}>"
        )


# ---------------------------------------------------------------------------
# an armed recording
# ---------------------------------------------------------------------------


class _Recording:
    """Everything captured between a window's flush and its quiescence."""

    def __init__(self, manager: "ReplayManager", key: tuple, starts: list) -> None:
        self.manager = manager
        self.key = key
        self.starts = starts
        machine = starts[0].plan.task.machine
        self.machine = machine
        engine = machine.engine
        self.t0 = engine.now
        self.aborted: str | None = None
        self.ops: list[tuple] = []
        #: (start index, absolute completion time, value) in completion order.
        self.completions: dict[int, tuple[float, typing.Any]] = {}

        contexts = {id(s.plan.ctx): s.plan.ctx for s in starts}
        self.contexts = list(contexts.values())
        self.pre_state = _snapshot(self.contexts, machine)

        obs = machine.obs
        recorder = obs.recorder
        self.span_mark = len(recorder.spans)
        self.flow_mark = len(recorder.flows)
        self.monitor_marks: dict[str, int] = {}
        if obs.monitor is not None:
            for name, timeline in obs.monitor.timelines.items():
                self.monitor_marks[name] = len(timeline._samples)

        self.pre_metrics: dict[str, float] = {}
        registry = obs.metrics
        if registry.enabled:
            for name, instrument in registry._instruments.items():
                if instrument.kind in ("counter", "gauge"):
                    self.pre_metrics[name] = instrument.value

        #: Hub attr -> tape proxy, swapped in for the recording's lifetime.
        self.tapes: dict[str, _HistogramTape] = {}
        if registry.enabled:
            for attr, instrument in list(vars(obs).items()):
                if isinstance(instrument, (Histogram, TimeWeightedHistogram)):
                    tape = _HistogramTape(instrument, engine)
                    self.tapes[attr] = tape
                    setattr(obs, attr, tape)

        # Completion-time taps: one passive callback per member request.
        for index, start in enumerate(starts):
            process = start.request._process
            process.add_callback(
                lambda event, i=index: self.completions.__setitem__(
                    i, (engine.now, event.value if event.ok else None)
                )
            )

    def abort(self, reason: str) -> None:
        if self.aborted is None:
            self.aborted = reason

    def restore_tapes(self) -> None:
        obs = self.machine.obs
        for attr, tape in self.tapes.items():
            setattr(obs, attr, tape.real)

    def commit(self) -> CompiledSchedule | None:
        """Build the trace at quiescence, or ``None`` when unusable."""
        self.restore_tapes()
        if self.aborted is not None:
            return None
        if len(self.completions) != len(self.starts):
            return None
        machine = self.machine
        engine = machine.engine
        t0 = self.t0
        duration = engine.now - t0

        # State diff: join the commit-time snapshot against the armed one.
        post_state = _snapshot(self.contexts, machine)
        state_entries: list[tuple] = []
        for cell_id, (cell, post) in post_state.items():
            pre_pair = self.pre_state.get(cell_id)
            pre = pre_pair[1] if pre_pair is not None else _MISSING
            if isinstance(post, np.ndarray) or isinstance(pre, np.ndarray):
                if pre is not post:
                    state_entries.append((cell, pre, post, False))
                continue
            if pre is post or pre == post:
                continue
            is_delta = type(pre) is int and type(post) is int
            state_entries.append((cell, pre, post, is_delta))

        obs = machine.obs
        registry = obs.metrics
        metric_deltas: list[tuple] = []
        if registry.enabled:
            for name, instrument in registry._instruments.items():
                if instrument.kind not in ("counter", "gauge"):
                    continue
                delta = instrument.value - self.pre_metrics.get(name, 0)
                if delta:
                    metric_deltas.append((instrument.kind, name, instrument.help, delta))

        hist_events: list[tuple] = []
        for attr, tape in self.tapes.items():
            if not tape.events:
                continue
            rel_times = np.array([t - t0 for t, _v in tape.events], dtype=np.float64)
            values = [v for _t, v in tape.events]
            kind = "histogram" if isinstance(tape.real, Histogram) else "time_histogram"
            hist_events.append((attr, kind, rel_times, values))

        # Span tail: window-relative columns with parents remapped.
        recorder = obs.recorder
        span_tail: dict | None = None
        flow_tail: list[tuple] = []
        if recorder.enabled:
            tail_spans = recorder.spans[self.span_mark :]
            describe_map = {
                start.request.describe(): index
                for index, start in enumerate(self.starts)
            }
            count = len(tail_spans)
            rel_start = np.empty(count, dtype=np.float64)
            rel_end = np.empty(count, dtype=np.float64)
            ranks = np.empty(count, dtype=np.int32)
            depths = np.empty(count, dtype=np.int32)
            tracks = np.empty(count, dtype=np.int32)
            parent_offsets = np.empty(count, dtype=np.int32)
            request_members = np.empty(count, dtype=np.int32)
            names: list[str] = []
            details: list[str] = []
            for i, span in enumerate(tail_spans):
                if span.end is None or (span.parent >= 0 and span.parent < self.span_mark):
                    return None  # a span leaked across the window boundary
                rel_start[i] = span.start - t0
                rel_end[i] = span.end - t0
                ranks[i] = span.rank
                depths[i] = span.depth
                tracks[i] = span.track
                parent_offsets[i] = span.parent - self.span_mark if span.parent >= 0 else -1
                member = -1
                if span.name == REQUEST:
                    member = describe_map.get(span.detail, -1)
                request_members[i] = member
                names.append(span.name)
                details.append(span.detail)
            span_tail = {
                "rel_start": rel_start,
                "rel_end": rel_end,
                "ranks": ranks,
                "depths": depths,
                "tracks": tracks,
                "parent_offsets": parent_offsets,
                "request_members": request_members,
                "names": names,
                "details": details,
            }
            for link in recorder.flows[self.flow_mark :]:
                flow_tail.append(
                    (link.kind, link.src_rank, link.src_ts - t0, link.dst_rank, link.dst_ts - t0, link.detail)
                )

        monitor_tail: list[tuple] = []
        if obs.monitor is not None:
            for name, timeline in obs.monitor.timelines.items():
                mark = self.monitor_marks.get(name, 0)
                samples = timeline._samples[mark:]
                if samples:
                    monitor_tail.append(
                        (
                            name,
                            timeline.kind,
                            [(s.time - t0, s.occupancy, s.queued, s.saturated) for s in samples],
                        )
                    )

        op_meta = np.empty(len(self.ops), dtype=[("kind", np.int8), ("nbytes", np.int64)])
        for i, (kind, dst, _a, _b, _op) in enumerate(self.ops):
            op_meta[i] = (kind, dst.nbytes)

        completions = [
            (self.completions[i][0] - t0, self.completions[i][1])
            for i in range(len(self.starts))
        ]
        return CompiledSchedule(
            key=self.key,
            plans=[start.plan for start in self.starts],
            duration=duration,
            ops=self.ops,
            op_meta=op_meta,
            state_entries=state_entries,
            metric_deltas=metric_deltas,
            hist_events=hist_events,
            span_tail=span_tail,
            flow_tail=flow_tail,
            monitor_tail=monitor_tail,
            completions=completions,
        )


# ---------------------------------------------------------------------------
# the manager
# ---------------------------------------------------------------------------


class _DeferredStart:
    """One ``plan.start()`` awaiting the next ``engine.run()`` flush."""

    __slots__ = ("plan", "invocation", "request")

    def __init__(self, plan, invocation, request) -> None:
        self.plan = plan
        self.invocation = invocation
        self.request = request


class ReplayManager:
    """Per-engine record/replay coordinator, installed at ``engine.trace``."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._deferred: list[_DeferredStart] = []
        self._window_dirty = False
        self._recording: _Recording | None = None
        self._traces: dict[tuple, CompiledSchedule] = {}
        self._counter_cache: tuple | None = None
        #: Plain integers for tests; the obs counters mirror them per machine.
        self.hit_count = 0
        self.miss_count = 0

    # -- start-time interface (called by PersistentCollective.start) -------

    def accepts(self, plan: "PersistentCollective") -> bool:
        """True when a start may be deferred: the engine is idle (a start
        issued from inside a running process always spawns immediately, so
        launch-style programs keep their exact legacy behavior)."""
        return self.engine._active_process is None

    def defer(self, plan, invocation, request) -> None:
        if self.engine._queue and not self._deferred:
            # Something else is already scheduled at the window's front;
            # materialization order would differ from the undeferred order.
            self._window_dirty = True
        self._deferred.append(_DeferredStart(plan, invocation, request))

    # -- recording taps (called by the data-moving substrates) --------------

    @property
    def recording(self) -> _Recording | None:
        return self._recording

    def record_copy(self, dst: np.ndarray, src: np.ndarray) -> None:
        recording = self._recording
        if recording is not None and dst.nbytes:
            recording.ops.append((OP_COPY, dst, src, None, None))

    def record_reduce(self, dst: np.ndarray, src: np.ndarray, op) -> None:
        recording = self._recording
        if recording is not None:
            recording.ops.append((OP_REDUCE, dst, src, None, op))

    def record_combine(self, dst: np.ndarray, a: np.ndarray, b: np.ndarray, op) -> None:
        recording = self._recording
        if recording is not None:
            recording.ops.append((OP_COMBINE, dst, a, b, op))

    def record_opaque(self, reason: str) -> None:
        """An effect the tape cannot represent (active-message handlers)."""
        recording = self._recording
        if recording is not None:
            recording.abort(reason)

    # -- run-loop hooks (called by Engine.run/step) --------------------------

    def on_run(self, until: typing.Any) -> None:
        """Flush deferred starts; discard any uncommitted recording."""
        recording = self._recording
        if recording is not None:
            # The previous recorded run never reached quiescence (deadlock,
            # exception, run(until=...) truncation): drop the half trace.
            self._recording = None
            recording.restore_tapes()
        if not self._deferred:
            return
        starts = self._deferred
        self._deferred = []
        dirty = (
            self._window_dirty
            or until is not None
            or bool(self.engine._queue)
            or self.engine.scheduler is not None
            or self.engine.faults is not None
        )
        self._window_dirty = False
        if dirty:
            self._materialize(starts, record_key=None)
            return
        key = self._window_key(starts)
        machine = starts[0].plan.task.machine
        hits, misses = self._counters(machine)
        trace = self._traces.get(key)
        if (
            trace is not None
            and all(s.request._process is None and not s.request._done for s in starts)
            and trace.preconditions_ok()
        ):
            self.hit_count += 1
            hits.inc()
            trace.apply(self.engine, machine, starts)
            return
        self.miss_count += 1
        misses.inc()
        self._materialize(starts, record_key=key)

    def on_quiescent(self) -> None:
        """The run loop drained its queue: commit or reject the recording."""
        recording = self._recording
        if recording is None:
            return
        self._recording = None
        incomplete = [
            start.request
            for start in recording.starts
            if not start.request.completed
        ]
        if incomplete:
            recording.restore_tapes()
            names = ", ".join(request.describe() for request in incomplete[:8])
            raise self.engine._deadlock(
                f"event queue drained with {len(incomplete)} recorded collective "
                f"request(s) incomplete ({names})"
            )
        trace = recording.commit()
        if trace is not None:
            self._traces[recording.key] = trace

    # -- internals -----------------------------------------------------------

    def _window_key(self, starts: list) -> tuple:
        contexts = {id(s.plan.ctx): s.plan.ctx for s in starts}
        context_sig = tuple(
            _context_cursor_parity(ctx)
            for _ctx_id, ctx in sorted(contexts.items())
        )
        start_sig = tuple(
            (id(s.plan), s.plan._generation, _invocation_parity(s.invocation))
            for s in starts
        )
        return (context_sig, start_sig)

    def _materialize(self, starts: list, record_key: tuple | None) -> None:
        for start in starts:
            start.request._spawn()
        if record_key is not None:
            self._recording = _Recording(self, record_key, starts)

    def _counters(self, machine: "Machine") -> tuple:
        """The machine's ``replay.hits``/``replay.misses`` instruments.

        Created lazily at the first flush decision, so machines that never
        defer a start keep a byte-identical metrics summary.
        """
        cached = self._counter_cache
        if cached is None:
            registry = machine.obs.metrics
            cached = (
                registry.counter("replay.hits", "compiled-schedule replay cache hits"),
                registry.counter("replay.misses", "compiled-schedule replay cache misses"),
            )
            self._counter_cache = cached
        return cached

    def invalidate_plan(self, plan: "PersistentCollective") -> None:
        """Drop every cached trace that involves ``plan`` (rebinding)."""
        stale = [
            key
            for key, trace in self._traces.items()
            if any(cached is plan for cached in trace.plans)
        ]
        for key in stale:
            del self._traces[key]

    def __repr__(self) -> str:
        return (
            f"<ReplayManager traces={len(self._traces)} hits={self.hit_count} "
            f"misses={self.miss_count}>"
        )
