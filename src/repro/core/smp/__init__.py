"""Intra-node (shared memory) halves of the SRM collectives (paper §2.2)."""

from repro.core.smp.barrier import smp_barrier
from repro.core.smp.broadcast import (
    announce_slot,
    drain_slot,
    fill_slot,
    smp_broadcast_chunk,
    tree_smp_broadcast_chunk,
)
from repro.core.smp.reduce import smp_reduce_chunk

__all__ = [
    "smp_barrier",
    "smp_broadcast_chunk",
    "tree_smp_broadcast_chunk",
    "smp_reduce_chunk",
    "fill_slot",
    "announce_slot",
    "drain_slot",
]
