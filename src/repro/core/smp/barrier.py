"""Shared-memory barrier (paper §2.2).

Flat, one cache-line-separated flag per task: each task sets its flag and
spins until the master resets it; the master waits for every flag, runs the
inter-node phase (passed in as a generator), then resets all flags.  The
paper found this faster than tree-based barriers for 16-way nodes.
"""

from __future__ import annotations

import typing

from repro.core.context import NodeState
from repro.obs.taxonomy import SMP_BARRIER
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["smp_barrier"]


def smp_barrier(
    state: NodeState,
    task: "Task",
    between: ProcessGenerator | None = None,
) -> ProcessGenerator:
    """One barrier over the node's tasks; the master runs ``between`` (the
    inter-node phase) after local check-in and before the release."""
    flags = state.barrier_flags
    me = state.index_of(task)
    with task.phase(SMP_BARRIER):
        if state.is_master(task):
            if state.size > 1:
                yield from flags.wait_all(task, lambda v: v == 1, skip=me)
            if between is not None:
                yield from between
            if state.size > 1:
                yield from flags.set_all(task, 0, skip=me)
        else:
            yield from flags[me].set(task, 1)
            yield from flags[me].wait_value(task, 0)
