"""Shared-memory broadcast primitives (paper §2.2, Fig. 3).

The paper's winning SMP broadcast is *flat*: the root fills one of two
shared buffers and sets every other task's READY flag; all readers copy out
simultaneously (the SMP hardware arbitrates — our fluid bus model charges
the contention) and clear their own flag; a buffer is reusable once all its
flags are clear.  Pipelining falls out of alternating the two buffers, both
between chunks of one message and between consecutive calls.

Three primitives compose every use:

* :func:`fill_slot` — root-side: wait buffer-free, timed copy in, set flags;
* :func:`announce_slot` — master-side when the data was *put* into the slot
  by the network (§2.4: "avoids unnecessary data copies"): just set flags;
* :func:`drain_slot` — reader-side: wait own flag, timed copy out, clear.

:func:`tree_smp_broadcast_chunk` implements the tree-structured alternative
the paper found slower ("Surprisingly, experiments showed..."), kept for the
A2 ablation benchmark.  :func:`barrier_synced_smp_broadcast_chunk` implements
the Sistare-style barrier-arbitrated variant the paper's §4 criticizes
("a barrier was used to synchronize access to shared memory buffers,
whereas SRM uses shared memory flags ... less susceptible to the processor
late arrivals and delays"), kept for the A7 straggler ablation.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import NodeState
from repro.obs.taxonomy import SLOT_ANNOUNCE, SLOT_DRAIN, SLOT_FILL
from repro.shmem.flags import FlagArray
from repro.shmem.segment import SharedSegment
from repro.sim.process import ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = [
    "fill_slot",
    "announce_slot",
    "drain_slot",
    "smp_broadcast_chunk",
    "tree_smp_broadcast_chunk",
    "barrier_synced_smp_broadcast_chunk",
]


def fill_slot(state: NodeState, task: "Task", slot: int, src_chunk: np.ndarray) -> ProcessGenerator:
    """Root side: wait for buffer ``slot`` to be free, fill it, set READY."""
    flags = state.bcast_buf.flags(slot)
    me = state.index_of(task)
    with task.phase(SLOT_FILL):
        yield from flags.wait_all(task, lambda v: v == 0, skip=me)
        state.bcast_buf.check_fill(slot, writer_index=me)
        yield from task.copy(state.bcast_buf.data(slot, src_chunk.nbytes), src_chunk)
        yield from flags.set_all(task, 1, skip=me)


def announce_slot(state: NodeState, task: "Task", slot: int) -> ProcessGenerator:
    """Master side: the network already landed data in ``slot``; set READY.

    No buffer-free wait is needed: the inter-node flow control (the free
    counter ack, Fig. 4) guarantees the slot was drained before the parent
    refilled it.
    """
    flags = state.bcast_buf.flags(slot)
    # The inter-node free-counter ack must have fenced this slot: announcing
    # a buffer some reader still holds READY would overwrite in-use data.
    state.bcast_buf.check_fill(slot, writer_index=state.index_of(task))
    with task.phase(SLOT_ANNOUNCE):
        yield from flags.set_all(task, 1, skip=state.index_of(task))


def drain_slot(state: NodeState, task: "Task", slot: int, dst_chunk: np.ndarray) -> ProcessGenerator:
    """Reader side: wait READY, copy the chunk out, clear own flag."""
    me = state.index_of(task)
    flag = state.bcast_buf.flags(slot)[me]
    with task.phase(SLOT_DRAIN):
        yield from flag.wait_value(task, 1)
        state.bcast_buf.check_drain(slot, reader_index=me)
        yield from task.copy(dst_chunk, state.bcast_buf.data(slot, dst_chunk.nbytes))
        yield from flag.set(task, 0)


def smp_broadcast_chunk(
    state: NodeState,
    task: "Task",
    is_source: bool,
    src_chunk: np.ndarray | None,
    dst_chunk: np.ndarray | None,
    sequence: int | None = None,
) -> ProcessGenerator:
    """One chunk of a flat SMP broadcast.

    ``is_source``: this task provides the data (from ``src_chunk``).
    Readers pass their ``dst_chunk``.  Single-task nodes are a no-op.

    ``sequence``: a pre-reserved chunk sequence (see
    :meth:`~repro.core.context.NodeState.reserve_bcast`); when ``None`` the
    task's cursor is read and advanced here — the legacy single-invocation
    discipline still used by the extension collectives and ablations.
    """
    me = state.index_of(task)
    if sequence is None:
        sequence = state.bcast_seq[me]
        state.bcast_seq[me] = sequence + 1
    if state.size == 1:
        return
    slot = sequence % 2
    if is_source:
        assert src_chunk is not None
        yield from fill_slot(state, task, slot, src_chunk)
    else:
        assert dst_chunk is not None
        yield from drain_slot(state, task, slot, dst_chunk)


# ---------------------------------------------------------------------------
# Tree-based SMP broadcast (the A2 ablation's losing variant)
# ---------------------------------------------------------------------------


class _TreeBcastState:
    """Per-task relay slots + cumulative flags for the tree SMP broadcast."""

    def __init__(self, state: NodeState) -> None:
        node = state.node
        size = state.size
        chunk = state.config.shared_buffer_bytes
        segment = SharedSegment(node, size * chunk + 64 * (size + 2), name=f"treebc[{node.index}]")
        self.slots = [segment.allocate(chunk) for _ in range(size)]
        self.ready = FlagArray(node, size, name=f"treebc-rdy[{node.index}]", kind="sequence")
        #: consumed[c] = chunks task c has copied out of its parent's slot.
        self.consumed = FlagArray(node, size, name=f"treebc-cons[{node.index}]", kind="sequence")
        self.seq = [0] * size


def _tree_state(state: NodeState) -> _TreeBcastState:
    cached = getattr(state, "_tree_bcast", None)
    if cached is None:
        cached = _TreeBcastState(state)
        state._tree_bcast = cached  # type: ignore[attr-defined]
    return cached


def tree_smp_broadcast_chunk(
    state: NodeState,
    task: "Task",
    tree: typing.Any,  # RankTree over this node's ranks
    src_chunk: np.ndarray | None,
    dst_chunk: np.ndarray | None,
) -> ProcessGenerator:
    """One chunk of a tree-structured SMP broadcast.

    The root copies into its relay slot; every interior task copies its
    parent's slot into its own slot and then into its user buffer; leaves
    copy parent's slot straight to the user buffer.  Compared with the flat
    protocol this serializes ``height`` dependent copies — the reason the
    paper dropped it.
    """
    tstate = _tree_state(state)
    me = state.index_of(task)
    sequence = tstate.seq[me]
    tstate.seq[me] = sequence + 1
    if state.size == 1:
        return
    parent_rank = tree.parent_of(task.rank)
    children = tree.children_of(task.rank)
    nbytes = (src_chunk if src_chunk is not None else dst_chunk).nbytes  # type: ignore[union-attr]

    def refill_own_slot(source: np.ndarray) -> ProcessGenerator:
        # Before overwriting the slot holding chunk seq-1, every child must
        # have consumed it (no double buffering — part of why this loses).
        for child_rank in children:
            child_local = state.index_of_rank(child_rank)
            yield from tstate.consumed[child_local].wait_for(task, lambda v: v >= sequence)
        yield from task.copy(tstate.slots[me][:nbytes], source)
        yield from tstate.ready[me].set(task, sequence + 1)

    if parent_rank is None:
        assert src_chunk is not None
        yield from refill_own_slot(src_chunk)
        return
    parent_local = state.index_of_rank(parent_rank)
    yield from tstate.ready[parent_local].wait_for(task, lambda v: v >= sequence + 1)
    assert dst_chunk is not None
    if children:
        yield from refill_own_slot(tstate.slots[parent_local][:nbytes])
        yield from tstate.consumed[me].set(task, sequence + 1)
        yield from task.copy(dst_chunk, tstate.slots[me][:nbytes])
    else:
        yield from task.copy(dst_chunk, tstate.slots[parent_local][:nbytes])
        yield from tstate.consumed[me].set(task, sequence + 1)


# ---------------------------------------------------------------------------
# Barrier-arbitrated SMP broadcast (the §4 Sistare-style comparison point)
# ---------------------------------------------------------------------------


def barrier_synced_smp_broadcast_chunk(
    state: NodeState,
    task: "Task",
    is_source: bool,
    src_chunk: np.ndarray | None,
    dst_chunk: np.ndarray | None,
) -> ProcessGenerator:
    """One chunk of an SMP broadcast arbitrated by full node barriers.

    The structure Sistare et al. [11] used: a barrier before the root may
    fill (everyone has left the buffer), and a barrier after the drain
    (everyone has the data) — so *every* task's progress is coupled to the
    *slowest* task twice per chunk.  SRM's per-task READY flags couple each
    reader only pairwise to the root, which is why the paper calls its
    scheme "less susceptible to the processor late arrivals and delays".
    Kept for the A7 ablation; not used by the SRM operations.
    """
    from repro.core.smp.barrier import smp_barrier

    me = state.index_of(task)
    sequence = state.bcast_seq[me]
    state.bcast_seq[me] = sequence + 1
    if state.size == 1:
        return
    slot = sequence % 2
    yield from smp_barrier(state, task)
    if is_source:
        assert src_chunk is not None
        yield from task.copy(state.bcast_buf.data(slot, src_chunk.nbytes), src_chunk)
    yield from smp_barrier(state, task)
    if not is_source:
        assert dst_chunk is not None
        yield from task.copy(dst_chunk, state.bcast_buf.data(slot, dst_chunk.nbytes))
    yield from smp_barrier(state, task)
