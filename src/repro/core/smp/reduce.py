"""Shared-memory reduce (paper §2.2, Fig. 2).

A binomial tree over the node's local tasks:

* **leaves** copy their contribution into their shared slot — the only data
  movements in the whole intra-node operation (4 copies for 8 tasks, versus
  ≥7 for a message-passing implementation, Fig. 2);
* **interior tasks** wait for each child's slot and *execute the operator*,
  streaming ``own-data OP child-slot`` into their own slot — no copies;
* the **node root** streams its final combine directly into the external
  target buffer (the user's destination at the global root, or the put
  source for the inter-node stage) — avoiding the extra root copy the paper
  criticizes in Sistare et al. [11].

Chunks flow through two slot generations per task (``reduce_slot`` alternates
on the chunk sequence); cumulative ready/consumed flags give each leaf a
two-chunk license ahead of its parent, which is what pipelines the SMP stage
against the network stage in the integrated operations.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.context import NodeState
from repro.obs.taxonomy import SMP_REDUCE
from repro.sim.process import ProcessGenerator
from repro.trees.base import RankTree

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task
    from repro.mpi.ops import ReduceOp

__all__ = ["smp_reduce_chunk"]


def smp_reduce_chunk(
    state: NodeState,
    task: "Task",
    tree: RankTree,
    src_chunk: np.ndarray,
    op: "ReduceOp",
    target: np.ndarray | None = None,
    sequence: int | None = None,
) -> typing.Generator[typing.Any, typing.Any, np.ndarray | None]:
    """One chunk of the SMP reduce; returns the node-result view at the
    intra root (None elsewhere).

    ``target`` (intra root only): where the node result must land.  When
    omitted, the root accumulates in its own shared slot — or, on a
    single-task node, returns its source chunk directly (zero copies).

    ``sequence``: a pre-reserved chunk sequence (see
    :meth:`~repro.core.context.NodeState.reserve_reduce`); when ``None`` the
    task's cursor is read and advanced here — the legacy single-invocation
    discipline still used by the extension collectives and ablations.
    """
    with task.phase(SMP_REDUCE):
        result = yield from _smp_reduce_chunk(state, task, tree, src_chunk, op, target, sequence)
    return result


def _smp_reduce_chunk(
    state: NodeState,
    task: "Task",
    tree: RankTree,
    src_chunk: np.ndarray,
    op: "ReduceOp",
    target: np.ndarray | None,
    sequence: int | None = None,
) -> typing.Generator[typing.Any, typing.Any, np.ndarray | None]:
    me = state.index_of(task)
    if sequence is None:
        sequence = state.reduce_seq[me]
        state.reduce_seq[me] = sequence + 1
    children = tree.children_of(task.rank)
    is_root = tree.parent_of(task.rank) is None
    nbytes = src_chunk.nbytes
    dtype = src_chunk.dtype

    def typed_slot(local_index: int) -> np.ndarray:
        # Slots are raw shared bytes; the operator needs the real dtype.
        return state.reduce_slot(local_index, sequence, nbytes).view(dtype)

    if not is_root:
        # Leaf or interior: the slot is consumed by the parent.  Before
        # overwriting a slot, its previous write (if any) must have been
        # consumed — flags carry global chunk sequences, so this stays
        # correct when the task was a (slot-less) root in earlier calls.
        previous_write = state.reduce_last_write[me][sequence % 2]
        if previous_write is not None:
            license_at = previous_write + 1
            yield from state.reduce_consumed[me].wait_for(task, lambda v: v >= license_at)
        state.reduce_last_write[me][sequence % 2] = sequence
        my_slot = typed_slot(me)
        if not children:
            yield from task.copy(my_slot, src_chunk)
            yield from state.reduce_ready[me].set(task, sequence + 1)
            return None
        accumulator: np.ndarray = my_slot
    else:
        if children:
            accumulator = target if target is not None else typed_slot(me)
        else:
            # Single-participant intra tree: nothing to combine.
            if target is None:
                return src_chunk
            yield from task.copy(target, src_chunk)
            return target

    # Combine children smallest-subtree-first (they finish earliest).
    first = True
    for child_rank in reversed(children):
        child_local = state.index_of_rank(child_rank)
        needed = sequence + 1
        yield from state.reduce_ready[child_local].wait_for(task, lambda v: v >= needed)
        child_slot = typed_slot(child_local)
        if first:
            yield from task.combine_into(accumulator, src_chunk, child_slot, op)
            first = False
        else:
            yield from task.reduce_into(accumulator, child_slot, op)
        yield from state.reduce_consumed[child_local].set(task, sequence + 1)

    if not is_root:
        yield from state.reduce_ready[me].set(task, sequence + 1)
        return None
    return accumulator
