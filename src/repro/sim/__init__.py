"""Discrete-event simulation kernel.

A minimal, deterministic process/event engine in the style of SimPy, plus the
two contention resources (FIFO slots and fluid-flow shared bandwidth) that
model the hardware domains of an SMP cluster.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.resources import FifoResource, Gate, SharedBandwidth
from repro.sim.scheduler import FifoScheduler, RandomScheduler, ReplayScheduler, Scheduler

__all__ = [
    "Engine",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "ReplayScheduler",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcessGenerator",
    "FifoResource",
    "SharedBandwidth",
    "Gate",
]
