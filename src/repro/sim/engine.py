"""The discrete-event simulation engine.

The engine owns the simulation clock and the time-ordered event queue.  It is
deliberately tiny: everything else (resources, protocols, machines) is built
from :class:`~repro.sim.events.Event` and :class:`~repro.sim.process.Process`.

Determinism: ties at the same timestamp are broken by scheduling order, so a
simulation is a pure function of its inputs (plus any explicitly seeded RNG
the caller passes into models).
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Engine"]


class Engine:
    """Event queue + clock for one simulation run."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._active_process: Process | None = None
        #: Number of events processed; useful for budget checks in tests.
        self.events_processed = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers --------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None, name: str | None = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} {delay!r}s in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def call_at(self, when: float, callback: typing.Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when`` (>= now).

        Returns the underlying timeout event; the callback runs when it is
        processed.  Used by fluid-flow resources to (re)schedule completions.
        """
        if when < self._now:
            # Tolerate floating-point residue from rate arithmetic; anything
            # beyond rounding noise is a real causality bug.
            if self._now - when > 1e-12 * max(1.0, abs(self._now)):
                raise SimulationError(f"call_at({when!r}) is in the past (now={self._now!r})")
            when = self._now
        timer = self.timeout(when - self._now, name="call_at")
        timer.add_callback(lambda _event: callback())
        return timer

    # -- main loop ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise DeadlockError("event queue is empty")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        self.events_processed += 1
        if event._cb0 is None:
            # Callback-free fast lane: nothing is waiting, so skip the
            # generic _fire dance (bare Timeouts dominate this case).
            event._processed = True
            if event._ok is False and not event._defused:
                raise event._value
            return
        event._fire()

    def _fire_inline(self, event: Event) -> None:
        """One event's processing, inlined for the run loops below.

        Mirrors :meth:`Event._fire` exactly (zero/one-callback fast lanes
        included); kept as a method so every loop shares one definition.
        """
        cb0 = event._cb0
        if cb0 is not None:
            cbs = event._cbs
            event._cb0 = None
            event._cbs = None
            event._processed = True
            cb0(event)
            if cbs is not None:
                for callback in cbs:
                    callback(event)
        else:
            event._processed = True
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains.
            ``float`` — run until the clock reaches that time.
            ``Event`` — run until that event is processed; returns its value
            (raising its exception if it failed).

        The loops below are the simulator's hottest code: they pop events in
        same-timestamp batches (one heap drain per distinct time instead of a
        per-event bookkeeping round-trip) and process each event through the
        same zero/one-callback fast lane as :meth:`step`.  Ordering is
        byte-identical to stepping one event at a time: batches preserve the
        (time, sequence) heap order, and anything a callback schedules at the
        current time carries a later sequence number, landing in a later
        batch exactly as it would land in a later step.
        """
        if isinstance(until, Event):
            return self._run_until_processed(until)
        queue = self._queue
        pop = heapq.heappop
        fire = self._fire_inline
        if until is None:
            while queue:
                when, _seq, event = pop(queue)
                if when < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = when
                self.events_processed += 1
                fire(event)
            return None
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline!r}) is in the past")
        while queue and queue[0][0] <= deadline:
            when, _seq, event = pop(queue)
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            self.events_processed += 1
            fire(event)
        self._now = deadline
        return None

    def _run_until_processed(self, stop_event: Event) -> typing.Any:
        """``run(until=<event>)``: the launch hot loop, batched."""
        stop_event.defuse()
        queue = self._queue
        pop = heapq.heappop
        batch: list[tuple[float, int, Event]] = []
        while not stop_event._processed:
            if not queue:
                raise DeadlockError(
                    f"event queue drained before {stop_event!r} fired; "
                    "a process is blocked forever"
                )
            head = pop(queue)
            when = head[0]
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            batch.append(head)
            while queue and queue[0][0] == when:
                batch.append(pop(queue))
            index = 0
            processed = 0
            try:
                while index < len(batch):
                    event = batch[index][2]
                    index += 1
                    processed += 1
                    # Event._fire, manually inlined: this loop is the single
                    # hottest spot in the simulator.
                    cb0 = event._cb0
                    if cb0 is not None:
                        cbs = event._cbs
                        event._cb0 = None
                        event._cbs = None
                        event._processed = True
                        cb0(event)
                        if cbs is not None:
                            for callback in cbs:
                                callback(event)
                    else:
                        event._processed = True
                    if event._ok is False and not event._defused:
                        raise event._value
                    if stop_event._processed:
                        break
            finally:
                self.events_processed += processed
                # Unfired same-time events (stop hit, or a callback raised)
                # go back with their original keys: the queue state is the
                # same as if events had been stepped one at a time.
                for entry in batch[index:]:
                    heapq.heappush(queue, entry)
                del batch[:]
        if stop_event.ok:
            return stop_event.value
        raise typing.cast(BaseException, stop_event.value)

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"<Engine t={self._now:.6g} queued={len(self._queue)}>"
