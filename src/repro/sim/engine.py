"""The discrete-event simulation engine.

The engine owns the simulation clock and the time-ordered event queue.  It is
deliberately tiny: everything else (resources, protocols, machines) is built
from :class:`~repro.sim.events.Event` and :class:`~repro.sim.process.Process`.

Determinism contract: a run is a **pure function of (inputs, scheduler)**.
Ties at the same timestamp are broken by the engine's tie-break scheduler —
``None`` (the default, scheduling order; byte-identical to the historical
behaviour) or any :class:`~repro.sim.scheduler.Scheduler` — so replaying the
same program under the same scheduler state reproduces every event order,
every timing, and every buffer byte.  Any randomness a model needs must come
from an explicitly seeded RNG the caller passes in; there is no wall-clock
or global RNG anywhere in a simulated code path.  Alternative schedulers
(seeded shuffles, DFS replay) explore *other* legal interleavings of
simultaneously-ready events — that is the schedule-exploration verification
harness's lever (:mod:`repro.verify`).
"""

from __future__ import annotations

import heapq
import itertools
import typing
import weakref

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Scheduler

__all__ = ["Engine"]


class Engine:
    """Event queue + clock for one simulation run.

    ``scheduler`` selects the tie-break policy for same-timestamp events.
    With the default ``None`` the engine keeps its allocation-free fast
    lanes and processes ties in scheduling order; with a
    :class:`~repro.sim.scheduler.Scheduler` instance every same-timestamp
    batch is routed through ``scheduler.order`` before processing.
    """

    def __init__(self, start_time: float = 0.0, scheduler: "Scheduler | None" = None) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._active_process: Process | None = None
        #: Number of events processed; useful for budget checks in tests.
        self.events_processed = 0
        #: Tie-break policy for same-timestamp batches (None = FIFO fast path).
        self.scheduler = scheduler
        #: Invariant-checker hooks (:class:`repro.verify.invariants.Verifier`)
        #: consulted by the substrate layers; ``None`` disables all checks.
        self.verifier: typing.Any = None
        #: Fault-injection plan (:class:`repro.verify.faults.FaultPlan`)
        #: consulted by the substrate layers; ``None`` disables all faults.
        self.faults: typing.Any = None
        #: Resource-occupancy monitor (:class:`repro.obs.monitor.ResourceMonitor`)
        #: consulted by the contention resources; ``None`` disables recording.
        self.monitor: typing.Any = None
        #: Compiled-schedule replay manager (:class:`repro.core.replay.ReplayManager`)
        #: consulted by the run loops and the data-moving substrates;
        #: ``None`` disables trace recording and replay.
        self.trace: typing.Any = None
        # Weak registry of every process started on this engine, kept so a
        # deadlock can name who is still blocked and on what.
        self._processes: list[weakref.ref] = []
        self._process_prune_at = 64

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers --------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None, name: str | None = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- process registry (deadlock diagnostics) --------------------------

    def _register_process(self, process: Process) -> None:
        """Track ``process`` weakly so deadlocks can name the blocked."""
        refs = self._processes
        refs.append(weakref.ref(process))
        if len(refs) >= self._process_prune_at:
            refs[:] = [ref for ref in refs if (p := ref()) is not None and p.is_alive]
            self._process_prune_at = max(64, 2 * len(refs))

    def blocked_processes(self) -> list[Process]:
        """Every started process that has not finished, in creation order."""
        out = []
        for ref in self._processes:
            process = ref()
            if process is not None and process.is_alive:
                out.append(process)
        return out

    def _deadlock(self, reason: str) -> DeadlockError:
        """Build a :class:`DeadlockError` naming every blocked process."""
        blocked = self.blocked_processes()
        if not blocked:
            return DeadlockError(reason)
        shown = blocked[:16]
        lines = []
        for process in shown:
            target = process.waiting_on
            waiting = repr(target) if target is not None else "(not yet resumed)"
            line = f"  {process.name or '<anonymous>'} blocked on {waiting}"
            request = process.waiting_request
            if request is not None:
                line += f" in wait() on request {request.describe()}"
            lines.append(line)
        more = len(blocked) - len(shown)
        if more:
            lines.append(f"  ... and {more} more")
        detail = "\n".join(lines)
        return DeadlockError(
            f"{reason}; {len(blocked)} process(es) blocked forever:\n{detail}"
        )

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} {delay!r}s in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def call_at(self, when: float, callback: typing.Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when`` (>= now).

        Returns the underlying timeout event; the callback runs when it is
        processed.  Used by fluid-flow resources to (re)schedule completions.
        """
        if when < self._now:
            # Tolerate floating-point residue from rate arithmetic; anything
            # beyond rounding noise is a real causality bug.
            if self._now - when > 1e-12 * max(1.0, abs(self._now)):
                raise SimulationError(f"call_at({when!r}) is in the past (now={self._now!r})")
            when = self._now
        timer = self.timeout(when - self._now, name="call_at")
        timer.add_callback(lambda _event: callback())
        return timer

    # -- main loop ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        if self.trace is not None:
            # Stepped windows are driven one event at a time; deferred starts
            # materialize on the slow path (no recording, no replay).
            self.trace.on_run("step")
        if not self._queue:
            raise self._deadlock("event queue is empty")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        self.events_processed += 1
        if event._cb0 is None:
            # Callback-free fast lane: nothing is waiting, so skip the
            # generic _fire dance (bare Timeouts dominate this case).
            event._processed = True
            if event._ok is False and not event._defused:
                raise event._value
            return
        event._fire()

    def _fire_inline(self, event: Event) -> None:
        """One event's processing, inlined for the run loops below.

        Mirrors :meth:`Event._fire` exactly (zero/one-callback fast lanes
        included); kept as a method so every loop shares one definition.
        """
        cb0 = event._cb0
        if cb0 is not None:
            cbs = event._cbs
            event._cb0 = None
            event._cbs = None
            event._processed = True
            cb0(event)
            if cbs is not None:
                for callback in cbs:
                    callback(event)
        else:
            event._processed = True
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains.
            ``float`` — run until the clock reaches that time.
            ``Event`` — run until that event is processed; returns its value
            (raising its exception if it failed).

        The loops below are the simulator's hottest code: they pop events in
        same-timestamp batches (one heap drain per distinct time instead of a
        per-event bookkeeping round-trip) and process each event through the
        same zero/one-callback fast lane as :meth:`step`.  Ordering is
        byte-identical to stepping one event at a time: batches preserve the
        (time, sequence) heap order, and anything a callback schedules at the
        current time carries a later sequence number, landing in a later
        batch exactly as it would land in a later step.
        """
        trace = self.trace
        if trace is not None:
            # Flush deferred persistent starts: replay a cached schedule or
            # materialize (and possibly record) the slow path.
            trace.on_run(until)
        if isinstance(until, Event):
            return self._run_until_processed(until)
        if self.scheduler is not None:
            return self._run_scheduled(None if until is None else float(until))
        queue = self._queue
        pop = heapq.heappop
        fire = self._fire_inline
        if until is None:
            while queue:
                when, _seq, event = pop(queue)
                if when < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = when
                self.events_processed += 1
                fire(event)
            if trace is not None:
                # Quiescence: the only point where a recording may commit.
                trace.on_quiescent()
            return None
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline!r}) is in the past")
        while queue and queue[0][0] <= deadline:
            when, _seq, event = pop(queue)
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            self.events_processed += 1
            fire(event)
        self._now = deadline
        return None

    def _run_scheduled(self, deadline: float | None) -> None:
        """``run()`` / ``run(until=<time>)`` with a tie-break scheduler.

        Semantically identical to the fast loops in :meth:`run` except that
        every same-timestamp batch is handed to the scheduler for ordering
        before processing.  Events a callback schedules at the current time
        carry a later sequence number and land in a later batch, exactly as
        in the default loops.
        """
        if deadline is not None and deadline < self._now:
            raise SimulationError(f"run(until={deadline!r}) is in the past")
        queue = self._queue
        pop = heapq.heappop
        scheduler = self.scheduler
        while queue and (deadline is None or queue[0][0] <= deadline):
            when = queue[0][0]
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            batch = [pop(queue)]
            while queue and queue[0][0] == when:
                batch.append(pop(queue))
            if len(batch) > 1:
                batch = scheduler.order(batch)
            index = 0
            try:
                while index < len(batch):
                    event = batch[index][2]
                    index += 1
                    self.events_processed += 1
                    self._fire_inline(event)
            finally:
                for entry in batch[index:]:
                    heapq.heappush(queue, entry)
        if deadline is not None:
            self._now = deadline

    def _run_until_processed(self, stop_event: Event) -> typing.Any:
        """``run(until=<event>)``: the launch hot loop, batched."""
        stop_event.defuse()
        queue = self._queue
        pop = heapq.heappop
        scheduler = self.scheduler
        batch: list[tuple[float, int, Event]] = []
        while not stop_event._processed:
            if not queue:
                raise self._deadlock(
                    f"event queue drained before {stop_event!r} fired"
                )
            head = pop(queue)
            when = head[0]
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            batch.append(head)
            while queue and queue[0][0] == when:
                batch.append(pop(queue))
            if scheduler is not None and len(batch) > 1:
                batch = scheduler.order(batch)
            index = 0
            processed = 0
            try:
                while index < len(batch):
                    event = batch[index][2]
                    index += 1
                    processed += 1
                    # Event._fire, manually inlined: this loop is the single
                    # hottest spot in the simulator.
                    cb0 = event._cb0
                    if cb0 is not None:
                        cbs = event._cbs
                        event._cb0 = None
                        event._cbs = None
                        event._processed = True
                        cb0(event)
                        if cbs is not None:
                            for callback in cbs:
                                callback(event)
                    else:
                        event._processed = True
                    if event._ok is False and not event._defused:
                        raise event._value
                    if stop_event._processed:
                        break
            finally:
                self.events_processed += processed
                # Unfired same-time events (stop hit, or a callback raised)
                # go back with their original keys: the queue state is the
                # same as if events had been stepped one at a time.
                for entry in batch[index:]:
                    heapq.heappush(queue, entry)
                del batch[:]
        if stop_event.ok:
            return stop_event.value
        raise typing.cast(BaseException, stop_event.value)

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"<Engine t={self._now:.6g} queued={len(self._queue)}>"
