"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  Processes
(:mod:`repro.sim.process`) block on events by yielding them; the engine
resumes the process when the event *fires*.

Lifecycle::

    pending  --succeed()/fail()-->  triggered  --engine pops it-->  processed

Between *triggered* and *processed* the event sits in the engine's queue at
the current simulation time; callbacks run when it is popped.  This two-step
dance keeps causality strict: everything scheduled at time ``t`` runs in
FIFO order of scheduling, never re-entrantly inside ``succeed()``.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["PENDING", "Event", "Timeout", "AllOf", "AnyOf"]


#: Sentinel stored as an event's value while the event has not triggered.
PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    engine:
        The owning simulation engine.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("engine", "name", "_value", "_ok", "_defused", "_processed", "_cb0", "_cbs")

    def __init__(self, engine: "Engine", name: str | None = None) -> None:
        self.engine = engine
        self.name = name
        self._value: typing.Any = PENDING
        self._ok: bool | None = None
        self._defused = False
        self._processed = False
        # Callback storage is lazy: the overwhelmingly common cases are zero
        # callbacks (bare Timeouts, fire-and-forget completions) and exactly
        # one (a process resumption), so the first callback lives in a plain
        # slot and only the second-and-later ones allocate a list.
        self._cb0: typing.Callable[["Event"], None] | None = None
        self._cbs: list[typing.Callable[["Event"], None]] | None = None

    # -- state queries ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has popped the event and run its callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> typing.Any:
        """The success value or failure exception carried by the event."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    @property
    def callbacks(self) -> list[typing.Callable[["Event"], None]] | None:
        """A snapshot of the pending callbacks (``None`` once processed).

        Introspection only — attach callbacks through :meth:`add_callback`,
        which keeps the zero/one-callback fast-lane storage intact.
        """
        if self._processed:
            return None
        snapshot: list[typing.Callable[["Event"], None]] = []
        if self._cb0 is not None:
            snapshot.append(self._cb0)
        if self._cbs is not None:
            snapshot.extend(self._cbs)
        return snapshot

    # -- triggering ------------------------------------------------------

    def succeed(self, value: typing.Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed, carrying ``exception``.

        When a failed event is processed while nothing has *defused* it (no
        process is waiting on it), the exception propagates out of
        :meth:`Engine.run` — silent failures are bugs.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a (potentially failing) event as observed by a handler."""
        self._defused = True

    # -- engine interface ------------------------------------------------

    def _fire(self) -> None:
        """Run callbacks.  Called exactly once by the engine."""
        assert not self._processed
        cb0 = self._cb0
        cbs = self._cbs
        self._cb0 = None
        self._cbs = None
        self._processed = True
        if cb0 is not None:
            cb0(self)
            if cbs is not None:
                for callback in cbs:
                    callback(self)
        if self._ok is False and not self._defused:
            raise self._value

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when the event is processed.

        It is legal to attach to a *triggered* (queued) event; attaching to a
        *processed* event is a protocol violation because the callback would
        never run.
        """
        if self._processed:
            raise SimulationError(f"cannot add a callback to processed {self!r}")
        if self._cb0 is None:
            self._cb0 = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.engine.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(
        self,
        engine: "Engine",
        delay: float,
        value: typing.Any = None,
        name: str | None = None,
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(engine, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._schedule(self, delay)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: typing.Iterable[Event]) -> None:
        super().__init__(engine)
        self.events: tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        self._remaining = 0
        pending: list[Event] = []
        for event in self.events:
            if event.processed:
                continue  # outcome already known; handled in _check_initial
            self._remaining += 1
            pending.append(event)
        for event in pending:
            event.add_callback(self._observe)
        self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    The success value is the list of child values in construction order.
    Fails fast (and defuses the remaining children's failures) if any child
    fails.
    """

    __slots__ = ()

    def _check_initial(self) -> None:
        for event in self.events:
            if event.processed and not event.ok and not self.triggered:
                self.fail(typing.cast(BaseException, event.value))
                return
        if self._remaining == 0 and not self.triggered:
            self.succeed([event.value for event in self.events])

    def _observe(self, event: Event) -> None:
        if self.triggered:
            event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event.value))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds.

    The success value is ``(index, value)`` of the first child to fire.
    Fails if the first child to fire failed.
    """

    __slots__ = ("_index",)

    def __init__(self, engine: "Engine", events: typing.Iterable[Event]) -> None:
        super().__init__(engine, events)
        # Event -> construction index, resolved in O(1) by _observe instead
        # of an O(n) list scan per firing child.  setdefault keeps the first
        # position of a duplicated child, matching list.index semantics.
        index_of: dict[Event, int] = {}
        for position, event in enumerate(self.events):
            index_of.setdefault(event, position)
        self._index = index_of

    def _check_initial(self) -> None:
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self.events):
            if event.processed and not self.triggered:
                if event.ok:
                    self.succeed((index, event.value))
                else:
                    self.fail(typing.cast(BaseException, event.value))

    def _observe(self, event: Event) -> None:
        if self.triggered:
            event.defuse()
            return
        index = self._index[event]
        if event.ok:
            self.succeed((index, event.value))
        else:
            event.defuse()
            self.fail(typing.cast(BaseException, event.value))
