"""Pluggable tie-break schedulers for the discrete-event engine.

The engine orders its queue by ``(time, sequence)``: ties at one timestamp
fire in scheduling order.  That makes every run reproducible — but it also
means the simulator only ever executes **one** interleaving of events that
are *simultaneously ready*, while the protocols it runs (per-process READY
flags, two-buffer pipelining, LAPI counter fences) are supposed to be
correct under *any* interleaving.

A :class:`Scheduler` makes the tie-break policy explicit and swappable:

* :class:`FifoScheduler` — the identity policy; byte-identical to passing
  no scheduler at all (the engine's fast paths stay engaged when the
  scheduler is ``None``, so ``None`` remains the production default).
* :class:`RandomScheduler` — a seeded shuffle of every same-timestamp
  batch; each seed is one alternative schedule.
* :class:`ReplayScheduler` — a controlled scheduler driven by an explicit
  *choice sequence*: at each decision point (a batch with more than one
  event) choice ``c`` moves the ``c``-th event to the front.  The bounded
  DFS explorer in :mod:`repro.verify.explorer` enumerates choice prefixes
  to walk the schedule tree systematically (DPOR-lite: first-event races
  only, arity capped by ``max_branch``).

Every scheduler records a **trace** of the reorderings it applied (only for
batches with >1 event), so two runs can be compared by
:meth:`Scheduler.signature` — the explorer uses this to count *distinct*
schedules rather than mere repetitions.

A simulation remains a pure function of ``(inputs, scheduler)``: the same
program under the same scheduler state produces the same event order, the
same timings, and the same buffer contents.
"""

from __future__ import annotations

import hashlib
import random
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

__all__ = ["Scheduler", "FifoScheduler", "RandomScheduler", "ReplayScheduler"]

#: One queue entry: ``(time, sequence, event)`` exactly as stored in the heap.
Entry = typing.Tuple[float, int, "Event"]


class Scheduler:
    """Base tie-break policy: FIFO order, with trace recording.

    Subclasses override :meth:`permute`, which receives a same-timestamp
    batch (always ``len(batch) >= 2``) in FIFO order and returns the order
    to process it in.  The returned list must be a permutation of the input.
    """

    name = "fifo"

    def __init__(self) -> None:
        #: Per-decision-point record: the tuple of event sequence numbers in
        #: the order they were actually processed.
        self.trace: list[tuple[int, ...]] = []

    def reset(self) -> None:
        """Clear recorded state before a fresh run."""
        self.trace = []

    def permute(self, batch: list[Entry]) -> list[Entry]:
        """Return the processing order for one same-timestamp batch."""
        return batch

    def order(self, batch: list[Entry]) -> list[Entry]:
        """Engine entry point: permute ``batch`` and record the outcome."""
        ordered = self.permute(batch)
        self.trace.append(tuple(entry[1] for entry in ordered))
        return ordered

    def signature(self) -> str:
        """A stable digest of the orderings this run actually executed."""
        digest = hashlib.blake2b(digest_size=12)
        for decision in self.trace:
            digest.update(repr(decision).encode())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} decisions={len(self.trace)}>"


class FifoScheduler(Scheduler):
    """Explicit identity tie-break — the engine's default order."""


class RandomScheduler(Scheduler):
    """Seeded uniform shuffle of every same-timestamp batch."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)

    def permute(self, batch: list[Entry]) -> list[Entry]:
        shuffled = list(batch)
        self._rng.shuffle(shuffled)
        return shuffled


class ReplayScheduler(Scheduler):
    """Follow an explicit choice sequence through the schedule tree.

    At decision point ``d`` (the ``d``-th batch with more than one event),
    choice ``c`` moves the batch's ``c``-th entry to the front and keeps the
    rest in FIFO order; past the end of ``choices`` the scheduler picks 0
    (FIFO).  After a run, :attr:`taken` holds the choices actually made and
    :attr:`arities` the number of alternatives available at each point
    (capped at ``max_branch``), which is everything a DFS needs to expand
    unexplored siblings.
    """

    name = "dfs"

    def __init__(self, choices: typing.Sequence[int] = (), max_branch: int = 4) -> None:
        super().__init__()
        if max_branch < 1:
            raise ValueError(f"max_branch must be >= 1, got {max_branch}")
        self.choices = tuple(int(c) for c in choices)
        self.max_branch = int(max_branch)
        self.taken: list[int] = []
        self.arities: list[int] = []

    def reset(self) -> None:
        super().reset()
        self.taken = []
        self.arities = []

    def permute(self, batch: list[Entry]) -> list[Entry]:
        depth = len(self.taken)
        arity = min(len(batch), self.max_branch)
        choice = self.choices[depth] if depth < len(self.choices) else 0
        if not 0 <= choice < arity:
            raise ValueError(
                f"choice {choice} at decision {depth} out of range 0..{arity - 1}"
            )
        self.taken.append(choice)
        self.arities.append(arity)
        if choice == 0:
            return batch
        return [batch[choice]] + batch[:choice] + batch[choice + 1 :]
