"""Generator-based simulated processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding an event suspends the process until the event fires; the
event's value is sent back into the generator (or its exception thrown in).
A process is itself an event that fires when the generator returns, carrying
the generator's return value — so processes can wait on each other with a
plain ``yield child_process`` (a *join*).

Sub-operations compose with ``yield from``: a collective algorithm is a
generator that delegates to substrate generators (shared-memory copies, RMA
puts) which in turn yield engine primitives.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Process", "ProcessGenerator"]

#: Type alias for the generators accepted by :meth:`Engine.process`.
ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class Process(Event):
    """A running simulated process; fires when its generator returns."""

    __slots__ = ("_generator", "_waiting_on", "waiting_request", "__weakref__")

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(engine, name=name or getattr(generator, "__name__", None))
        self._generator = generator
        self._waiting_on: Event | None = None
        #: The collective request this process is inside ``wait()`` on, if
        #: any — set by the request layer so deadlock reports can say *which*
        #: outstanding collective a blocked program was waiting to finish.
        self.waiting_request: typing.Any = None
        # Weak registration so deadlock reports can name blocked processes.
        engine._register_process(self)
        # Kick the generator off at the current simulation time, but through
        # the event queue so that creation order defines execution order.
        bootstrap = Event(engine, name="process-start")
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    @property
    def waiting_on(self) -> Event | None:
        """The event this process is currently blocked on, if any."""
        return self._waiting_on

    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s outcome."""
        self._waiting_on = None
        self.engine._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event.defuse()
                target = self._generator.throw(typing.cast(BaseException, event.value))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.engine._active_process = None

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an Event; "
                "use `yield from` for sub-operations"
            )
            # Surface at the process level so joiners see it.
            self.fail(error)
            return
        if target.processed:
            # Joining something already finished (e.g. an isend that completed
            # before the matching recv returned): mirror its outcome through a
            # fresh zero-delay event so the generator resumes next tick.
            mirror = Event(self.engine, name=f"join:{target.name}")
            if target.ok:
                mirror.succeed(target.value)
            else:
                mirror.fail(typing.cast(BaseException, target.value))
            target = mirror
        self._waiting_on = target
        target.add_callback(self._resume)
