"""Contention resources for the simulation kernel.

Two resource families model the hardware domains of an SMP cluster:

* :class:`FifoResource` — a counted-slot resource with FIFO granting.  Used
  for things that serialize whole-operation access (a NIC send DMA engine, a
  lock).
* :class:`SharedBandwidth` — a fluid-flow *processor-sharing* link.  Active
  transfers share the link rate equally (optionally capped per transfer, e.g.
  a single CPU cannot stream faster than its own copy bandwidth even on an
  idle memory bus).  This is the standard fluid approximation for memory-bus
  and switch-port contention and is what makes simultaneous-reader SMP
  broadcast contention (paper §2.2) come out right.

:class:`Gate` is a resettable broadcast condition used for interrupt-mode
modelling ("wait until the target enters a LAPI call").
"""

from __future__ import annotations

import itertools
import math
import typing

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["FifoResource", "SharedBandwidth", "Gate"]


class FifoResource:
    """A resource with ``capacity`` slots granted in request order."""

    def __init__(self, engine: Engine, capacity: int = 1, name: str | None = None) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: list[Event] = []
        monitor = engine.monitor
        self._timeline = monitor.register(name, "fifo") if monitor is not None else None

    def _record(self) -> None:
        timeline = self._timeline
        if timeline is not None:
            timeline.record(
                self.engine.now,
                self._in_use,
                len(self._waiting),
                self._in_use >= self.capacity,
            )

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.engine, name=f"grant:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiting.append(grant)
        self._record()
        return grant

    def release(self) -> None:
        """Release a previously granted slot, waking the next waiter."""
        if self._in_use == 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiting:
            self._waiting.pop(0).succeed()
        else:
            self._in_use -= 1
        self._record()

    def use(self, duration: float) -> typing.Generator[Event, typing.Any, None]:
        """Hold one slot for ``duration`` simulated seconds (``yield from``)."""
        yield self.request()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


class _Transfer:
    __slots__ = ("size", "remaining", "cap", "event")

    def __init__(self, nbytes: float, cap: float, event: Event) -> None:
        self.size = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = cap
        self.event = event


class SharedBandwidth:
    """Fluid-flow processor-sharing link of ``rate`` bytes/second.

    All active transfers progress simultaneously; each receives a
    water-filling share of the link rate, never exceeding its own per-transfer
    cap.  Membership changes (a transfer joining or completing) re-divide the
    rate instantly.
    """

    #: Residual-byte tolerance when deciding a transfer has completed.
    EPSILON = 1e-6

    def __init__(self, engine: Engine, rate: float, name: str | None = None) -> None:
        if not (rate > 0) or math.isinf(rate):
            raise SimulationError(f"link rate must be finite and positive, got {rate}")
        self.engine = engine
        self.rate = float(rate)
        self.name = name
        self._active: dict[int, _Transfer] = {}
        self._ids = itertools.count()
        self._last_settled = engine.now
        self._wake_version = 0
        #: Total bytes ever completed through this link (for audits/tests).
        self.bytes_transferred = 0.0
        monitor = engine.monitor
        self._timeline = (
            monitor.register(name, "bandwidth") if monitor is not None else None
        )

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._active)

    def transfer(self, nbytes: float, max_rate: float | None = None) -> Event:
        """Start moving ``nbytes`` through the link; returns a completion event.

        ``max_rate`` caps this transfer's share (e.g. one CPU's copy speed).
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer {nbytes} bytes")
        done = Event(self.engine, name=f"xfer:{self.name}")
        if nbytes == 0:
            done.succeed()
            return done
        cap = float("inf") if max_rate is None else float(max_rate)
        if cap <= 0:
            raise SimulationError(f"max_rate must be positive, got {max_rate}")
        self._settle()
        self._active[next(self._ids)] = _Transfer(nbytes, cap, done)
        self._reschedule()
        return done

    # -- fluid-flow internals ---------------------------------------------

    def _allocations(self) -> dict[int, float]:
        """Water-filling rate allocation over the active transfers."""
        allocations: dict[int, float] = {}
        budget = self.rate
        # Process in increasing cap order: once the tightest caps are paid
        # out, the rest share the remainder equally.
        pending = sorted(self._active.items(), key=lambda item: item[1].cap)
        count = len(pending)
        for transfer_id, transfer in pending:
            share = budget / count
            allocation = min(transfer.cap, share)
            allocations[transfer_id] = allocation
            budget -= allocation
            count -= 1
        return allocations

    def _settle(self) -> None:
        """Advance every active transfer's progress to the current time."""
        now = self.engine.now
        elapsed = now - self._last_settled
        self._last_settled = now
        if elapsed <= 0 or not self._active:
            return
        allocations = self._allocations()
        for transfer_id, transfer in self._active.items():
            transfer.remaining -= allocations[transfer_id] * elapsed

    def _complete_finished(self) -> None:
        finished = [
            transfer_id
            for transfer_id, transfer in self._active.items()
            if transfer.remaining <= self.EPSILON
        ]
        for transfer_id in finished:
            transfer = self._active.pop(transfer_id)
            self.bytes_transferred += transfer.size
            transfer.event.succeed()

    def _reschedule(self) -> None:
        """(Re)arm the wake-up for the earliest upcoming completion."""
        self._wake_version += 1
        timeline = self._timeline
        if not self._active:
            if timeline is not None:
                timeline.record(self.engine.now, 0, 0, False)
            return
        allocations = self._allocations()
        if timeline is not None:
            # Saturated: the water-filling pass spent the whole link rate,
            # so at least one transfer's share is squeezed below its cap.
            saturated = sum(allocations.values()) >= self.rate * (1.0 - 1e-9)
            timeline.record(self.engine.now, len(self._active), 0, saturated)
        next_completion = min(
            transfer.remaining / allocations[transfer_id]
            for transfer_id, transfer in self._active.items()
        )
        version = self._wake_version
        self.engine.call_at(self.engine.now + next_completion, lambda: self._wake(version))

    def _wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # membership changed since this wake-up was armed
        self._settle()
        self._complete_finished()
        self._reschedule()

    def __repr__(self) -> str:
        return f"<SharedBandwidth {self.name!r} rate={self.rate:.4g} active={len(self._active)}>"


class Gate:
    """A resettable broadcast condition.

    ``wait()`` completes immediately while the gate is open, otherwise when
    it next opens.  Closing the gate only affects future waiters.
    """

    def __init__(self, engine: Engine, open: bool = False, name: str | None = None) -> None:
        self.engine = engine
        self.name = name
        self._open = bool(open)
        self._waiting: list[Event] = []
        monitor = engine.monitor
        self._timeline = monitor.register(name, "gate") if monitor is not None else None

    def _record(self) -> None:
        timeline = self._timeline
        if timeline is not None:
            timeline.record(
                self.engine.now, 1 if self._open else 0, len(self._waiting), False
            )

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        """Event that fires when the gate is (or becomes) open."""
        passed = Event(self.engine, name=f"gate:{self.name}")
        if self._open:
            passed.succeed()
        else:
            self._waiting.append(passed)
            self._record()
        return passed

    def open(self) -> None:
        """Open the gate, releasing every current waiter."""
        self._open = True
        waiting, self._waiting = self._waiting, []
        for event in waiting:
            event.succeed()
        self._record()

    def close(self) -> None:
        """Close the gate for future waiters."""
        self._open = False
        self._record()
