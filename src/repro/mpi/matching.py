"""MPI message envelopes and tag matching.

Implements the matching machinery whose *cost* is one of the overheads SRM
eliminates (paper §1: "tag matching and dealing with early message
arrivals"): a posted-receive queue and an unexpected-message queue per task,
matched on ``(source, tag)`` with wildcards, preserving MPI's pairwise
ordering guarantee (queues are FIFO and scanned in order).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.sim.events import Event

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "PostedRecv", "MatchQueues", "Status"]

#: Wildcard source for :meth:`MpiEndpoint.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`MpiEndpoint.recv`.
ANY_TAG = -1


class Status:
    """Completion information returned by a receive."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int) -> None:
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return f"<Status source={self.source} tag={self.tag} nbytes={self.nbytes}>"


class Envelope:
    """An in-flight message as seen by the receiver's matching engine.

    ``kind`` is ``"eager"`` (payload snapshot attached, sender already done)
    or ``"rts"`` (rendezvous request-to-send; ``cts`` must be fired with the
    matched :class:`PostedRecv` so the sender can stream into the user
    buffer, and ``done`` fires when the data lands).
    """

    __slots__ = ("kind", "source", "tag", "nbytes", "data", "cts", "done")

    def __init__(
        self,
        kind: str,
        source: int,
        tag: int,
        nbytes: int,
        data: np.ndarray | None = None,
        cts: Event | None = None,
        done: Event | None = None,
    ) -> None:
        assert kind in ("eager", "rts")
        self.kind = kind
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.data = data
        self.cts = cts
        self.done = done

    def matches(self, source: int, tag: int) -> bool:
        """True when this envelope satisfies a receive for (source, tag)."""
        return (source in (ANY_SOURCE, self.source)) and (tag in (ANY_TAG, self.tag))


class PostedRecv:
    """A receive posted before its message arrived."""

    __slots__ = ("source", "tag", "buffer", "done")

    def __init__(self, source: int, tag: int, buffer: np.ndarray, done: Event) -> None:
        self.source = source
        self.tag = tag
        self.buffer = buffer
        self.done = done

    def accepts(self, envelope: Envelope) -> bool:
        """True when ``envelope`` satisfies this posted receive."""
        return (self.source in (ANY_SOURCE, envelope.source)) and (
            self.tag in (ANY_TAG, envelope.tag)
        )


class MatchQueues:
    """The posted and unexpected queues of one task."""

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Envelope] = []

    def match_arrival(self, envelope: Envelope) -> PostedRecv | None:
        """Match an arriving message; queues it as unexpected on a miss."""
        for index, posted in enumerate(self.posted):
            if posted.accepts(envelope):
                return self.posted.pop(index)
        self.unexpected.append(envelope)
        return None

    def match_receive(self, source: int, tag: int) -> Envelope | None:
        """Match a newly-posted receive against the unexpected queue."""
        for index, envelope in enumerate(self.unexpected):
            if envelope.matches(source, tag):
                return self.unexpected.pop(index)
        return None

    def post(self, posted: PostedRecv) -> None:
        """Queue a receive that found no unexpected message."""
        self.posted.append(posted)

    @property
    def depth(self) -> tuple[int, int]:
        """(posted, unexpected) queue depths, for tests and diagnostics."""
        return (len(self.posted), len(self.unexpected))
