"""Reduction operators for reduce/allreduce.

Each operator is an in-place combiner ``op(dst, src)`` meaning
``dst = dst OP src`` element-wise, implemented with NumPy out-parameters so
no temporaries are allocated (the simulated cost is charged separately by
:meth:`Task.reduce_into`).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ReduceOp", "SUM", "PROD", "MIN", "MAX", "LAND", "LOR", "BAND", "BOR", "by_name"]


class ReduceOp:
    """A named, associative, commutative element-wise reduction."""

    def __init__(
        self,
        name: str,
        combine: typing.Callable[[np.ndarray, np.ndarray], None],
        identity: typing.Callable[[np.dtype], typing.Any],
        ternary: typing.Callable[[np.ndarray, np.ndarray, np.ndarray], None] | None = None,
    ) -> None:
        self.name = name
        self._combine = combine
        self._identity = identity
        self._ternary = ternary

    def __call__(self, dst: np.ndarray, src: np.ndarray) -> None:
        """``dst = dst OP src`` in place."""
        self._combine(dst, src)

    def combine_into(self, dst: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
        """``dst = a OP b`` in one streaming pass (``dst`` may alias ``a``).

        This is how the SRM reduce root writes its final combine straight
        into the destination buffer instead of an intermediate (§4's
        comparison against Sistare et al.).
        """
        if self._ternary is not None:
            self._ternary(dst, a, b)
        else:  # pragma: no cover - all shipped ops define a ternary form
            np.copyto(dst, a)
            self._combine(dst, b)

    def identity_for(self, dtype: np.dtype) -> typing.Any:
        """The operator's identity element for ``dtype`` (for rooted inits)."""
        return self._identity(np.dtype(dtype))

    def __repr__(self) -> str:
        return f"<ReduceOp {self.name}>"


def _min_identity(dtype: np.dtype) -> typing.Any:
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _max_identity(dtype: np.dtype) -> typing.Any:
    if np.issubdtype(dtype, np.floating):
        return -np.inf
    return np.iinfo(dtype).min


SUM = ReduceOp(
    "sum", lambda d, s: np.add(d, s, out=d), lambda _dt: 0, lambda d, a, b: np.add(a, b, out=d)
)
PROD = ReduceOp(
    "prod",
    lambda d, s: np.multiply(d, s, out=d),
    lambda _dt: 1,
    lambda d, a, b: np.multiply(a, b, out=d),
)
MIN = ReduceOp(
    "min",
    lambda d, s: np.minimum(d, s, out=d),
    _min_identity,
    lambda d, a, b: np.minimum(a, b, out=d),
)
MAX = ReduceOp(
    "max",
    lambda d, s: np.maximum(d, s, out=d),
    _max_identity,
    lambda d, a, b: np.maximum(a, b, out=d),
)
LAND = ReduceOp(
    "land",
    # logical_and/or write their boolean result straight into the numeric
    # out array (0/1 in d's dtype) — no .astype(bool) temporaries.
    lambda d, s: np.logical_and(d, s, out=d),
    lambda _dt: 1,
    lambda d, a, b: np.logical_and(a, b, out=d),
)
LOR = ReduceOp(
    "lor",
    lambda d, s: np.logical_or(d, s, out=d),
    lambda _dt: 0,
    lambda d, a, b: np.logical_or(a, b, out=d),
)
BAND = ReduceOp(
    "band",
    lambda d, s: np.bitwise_and(d, s, out=d),
    lambda _dt: ~0,
    lambda d, a, b: np.bitwise_and(a, b, out=d),
)
BOR = ReduceOp(
    "bor",
    lambda d, s: np.bitwise_or(d, s, out=d),
    lambda _dt: 0,
    lambda d, a, b: np.bitwise_or(a, b, out=d),
)

_REGISTRY = {op.name: op for op in (SUM, PROD, MIN, MAX, LAND, LOR, BAND, BOR)}


def by_name(name: str) -> ReduceOp:
    """Look an operator up by name (``"sum"``, ``"max"``, ...)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown reduce op {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
