"""Message-passing collective algorithms over the p2p substrate.

These are the baselines the paper compares SRM against (§3): collectives
built the traditional way, on top of MPI send/receive, with shared memory
used only as a *point-to-point transport* inside a node ("in MPI, shared
memory was used to implement point-to-point message passing topped by
collective operations, whereas SRM used shared memory to implement
collective operations directly").

Algorithms (the 2002/2003 state of practice):

* broadcast / reduce — binomial trees over the rotated rank order (§2.1
  notes MPICH used binomial trees), with no topology awareness;
* allreduce — either recursive doubling ([15], the better algorithm IBM's
  MPI shipped) or reduce-then-broadcast (MPICH 1.2's composition),
  selected per stack;
* barrier — pairwise exchange with recursive doubling or the dissemination
  pattern [22], selected per stack.

Every transfer goes through :class:`~repro.mpi.p2p.MpiEndpoint`, so the
eager/rendezvous switching, P−1 eager buffer pools, tag matching, and
unexpected-message costs all apply — the overheads §1 and §2.3 blame.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.machine.cluster import Machine
from repro.mpi.ops import SUM, ReduceOp
from repro.sim.process import ProcessGenerator
from repro.trees.base import RankTree
from repro.trees.embedding import naive_rank_tree

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["MpiCollectives"]

_BCAST_TAG = 901
_REDUCE_TAG = 902
_ALLREDUCE_TAG = 903
_BARRIER_TAG = 904
_SCATTER_TAG = 905
_GATHER_TAG = 906
_ALLGATHER_TAG = 907
_SCAN_TAG = 908
_SIGNAL = np.zeros(0, dtype=np.uint8)


def _bytes(buffer: np.ndarray) -> np.ndarray:
    return buffer.reshape(-1).view(np.uint8)


class MpiCollectives:
    """Baseline collectives; subclasses pick the per-stack algorithms."""

    name = "MPI"
    #: "recursive_doubling" or "reduce_broadcast"
    allreduce_algorithm = "recursive_doubling"
    #: With recursive doubling, messages above this fall back to
    #: reduce+broadcast (RD sends the full message log2(P) times, so tuned
    #: stacks switch algorithms for large payloads).  None = never.
    allreduce_rd_max: int | None = None
    #: "recursive_doubling" (pairwise XOR with fold) or "dissemination"
    barrier_algorithm = "recursive_doubling"
    #: Tree family for broadcast/reduce.
    tree_family = "binomial"

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._trees: dict[int, RankTree] = {}

    def _tree(self, root: int) -> RankTree:
        if root not in self._trees:
            self._trees[root] = naive_rank_tree(self.machine.spec, root, self.tree_family)
        return self._trees[root]

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------

    def broadcast(self, task: "Task", buffer: np.ndarray, root: int = 0) -> ProcessGenerator:
        """Binomial-tree broadcast over point-to-point messages."""
        tree = self._tree(root)
        parent = tree.parent_of(task.rank)
        if parent is not None:
            yield from task.mpi.recv(parent, _BCAST_TAG, buffer)
        for child in tree.children_of(task.rank):
            yield from task.mpi.send(child, buffer, _BCAST_TAG)

    # ------------------------------------------------------------------
    # reduce
    # ------------------------------------------------------------------

    def reduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> ProcessGenerator:
        """Binomial-tree reduce: every edge is a full message + combine."""
        tree = self._tree(root)
        parent = tree.parent_of(task.rank)
        children = tree.children_of(task.rank)
        flat_src = src.reshape(-1)
        if parent is None and not children:
            # Single-rank job: the reduction is a copy.
            if dst is None:
                raise ValueError("the reduce root needs a destination buffer")
            yield from task.copy(dst.reshape(-1), flat_src)
            return
        if not children:
            yield from task.mpi.send(parent, flat_src, _REDUCE_TAG)
            return
        # Interior/root: accumulate in the destination (root) or a system
        # temporary (interior) — both start with a copy of the send buffer.
        if parent is None:
            if dst is None:
                raise ValueError("the reduce root needs a destination buffer")
            accumulator = dst.reshape(-1)
        else:
            accumulator = np.empty_like(flat_src)
        yield from task.copy(accumulator, flat_src)
        incoming = np.empty_like(flat_src)
        for child in reversed(children):  # smallest subtree checks in first
            yield from task.mpi.recv(child, _REDUCE_TAG, incoming)
            yield from task.reduce_into(accumulator, incoming, op)
        if parent is not None:
            yield from task.mpi.send(parent, accumulator, _REDUCE_TAG)

    # ------------------------------------------------------------------
    # allreduce
    # ------------------------------------------------------------------

    def allreduce(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Recursive doubling or reduce+broadcast, per stack."""
        if dst.nbytes != src.nbytes:
            raise ValueError("allreduce buffers must match in size")
        use_composition = self.allreduce_algorithm == "reduce_broadcast" or (
            self.allreduce_rd_max is not None and src.nbytes > self.allreduce_rd_max
        )
        if use_composition:
            yield from self.reduce(task, src, dst if task.rank == 0 else None, op, root=0)
            yield from self.broadcast(task, dst, root=0)
            return
        yield from self._allreduce_recursive_doubling(task, src, dst, op)

    def _allreduce_recursive_doubling(
        self, task: "Task", src: np.ndarray, dst: np.ndarray, op: ReduceOp
    ) -> ProcessGenerator:
        """MPICH's classic algorithm [15] with the non-power-of-two fold."""
        total = task.spec.total_tasks
        rank = task.rank
        accumulator = dst.reshape(-1)
        yield from task.copy(accumulator, src.reshape(-1))
        if total == 1:
            return
        incoming = np.empty_like(accumulator)
        group = 1 << ((total).bit_length() - 1)
        if group > total:
            group >>= 1
        excess = total - group

        if rank < 2 * excess:
            if rank % 2 == 0:
                # Fold into the odd partner; sit out; collect the result.
                yield from task.mpi.send(rank + 1, accumulator, _ALLREDUCE_TAG)
                yield from task.mpi.recv(rank + 1, _ALLREDUCE_TAG, accumulator)
                return
            yield from task.mpi.recv(rank - 1, _ALLREDUCE_TAG, incoming)
            yield from task.reduce_into(accumulator, incoming, op)
            virtual = rank // 2
        else:
            virtual = rank - excess

        rounds = group.bit_length() - 1
        for round_index in range(rounds):
            peer_virtual = virtual ^ (1 << round_index)
            peer = peer_virtual * 2 + 1 if peer_virtual < excess else peer_virtual + excess
            yield from task.mpi.sendrecv(peer, accumulator, peer, incoming, _ALLREDUCE_TAG)
            yield from task.reduce_into(accumulator, incoming, op)

        if rank < 2 * excess and rank % 2 == 1:
            yield from task.mpi.send(rank - 1, accumulator, _ALLREDUCE_TAG)

    # ------------------------------------------------------------------
    # scatter / gather / allgather (block-data collectives)
    # ------------------------------------------------------------------
    #
    # MPICH's binomial algorithms: in the rotated virtual-rank space the
    # subtree of vertex u occupies the contiguous range [u, u + lowbit(u))
    # (clipped at P), so interior vertices forward whole packed sub-ranges.

    @staticmethod
    def _subtree_span(virtual: int, total: int) -> int:
        """Number of virtual ranks in the binomial subtree rooted at u."""
        if virtual == 0:
            return total
        return min(virtual & -virtual, total - virtual)

    def scatter(
        self,
        task: "Task",
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> ProcessGenerator:
        """Binomial scatter: packed sub-ranges travel down the tree."""
        total = task.spec.total_tasks
        block = recvbuf.nbytes
        tree = self._tree(root)
        virtual = (task.rank - root) % total
        span = self._subtree_span(virtual, total)
        if virtual == 0:
            if sendbuf is None:
                raise ValueError("the scatter root needs a send buffer")
            if sendbuf.nbytes != block * total:
                raise ValueError("scatter send buffer must hold P blocks")
            if root == 0:
                packed = _bytes(sendbuf)
            else:
                # Rotate blocks into virtual order (the root-side copy the
                # rotated mapping costs on real MPICH too).
                packed = np.empty(block * total, np.uint8)
                source = _bytes(sendbuf)
                for v in range(total):
                    rank = (root + v) % total
                    yield from task.copy(
                        packed[v * block : (v + 1) * block],
                        source[rank * block : (rank + 1) * block],
                    )
        else:
            packed = np.empty(block * span, np.uint8)
            yield from task.mpi.recv(tree.parent_of(task.rank), _SCATTER_TAG, packed)
        yield from task.copy(_bytes(recvbuf), packed[:block])
        for child in tree.children_of(task.rank):
            child_virtual = (child - root) % total
            child_span = self._subtree_span(child_virtual, total)
            offset = (child_virtual - virtual) * block
            yield from task.mpi.send(
                child, packed[offset : offset + child_span * block], _SCATTER_TAG
            )

    def gather(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None,
        root: int = 0,
    ) -> ProcessGenerator:
        """Binomial gather: children's packed sub-ranges merge upward."""
        total = task.spec.total_tasks
        block = sendbuf.nbytes
        tree = self._tree(root)
        virtual = (task.rank - root) % total
        span = self._subtree_span(virtual, total)
        packed = np.empty(block * span, np.uint8)
        yield from task.copy(packed[:block], _bytes(sendbuf))
        for child in tree.children_of(task.rank):
            child_virtual = (child - root) % total
            child_span = self._subtree_span(child_virtual, total)
            offset = (child_virtual - virtual) * block
            # Received straight into the packed range: no repack copy.
            yield from task.mpi.recv(
                child, _GATHER_TAG, packed[offset : offset + child_span * block]
            )
        if virtual != 0:
            yield from task.mpi.send(tree.parent_of(task.rank), packed, _GATHER_TAG)
            return
        if recvbuf is None:
            raise ValueError("the gather root needs a receive buffer")
        if recvbuf.nbytes != block * total:
            raise ValueError("gather receive buffer must hold P blocks")
        destination = _bytes(recvbuf)
        if root == 0:
            yield from task.copy(destination, packed)
        else:
            for v in range(total):
                rank = (root + v) % total
                yield from task.copy(
                    destination[rank * block : (rank + 1) * block],
                    packed[v * block : (v + 1) * block],
                )

    def allgather(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
    ) -> ProcessGenerator:
        """Ring allgather: P-1 neighbour exchanges of one block each."""
        total = task.spec.total_tasks
        block = sendbuf.nbytes
        if recvbuf.nbytes != block * total:
            raise ValueError("allgather receive buffer must hold P blocks")
        rank = task.rank
        data = _bytes(recvbuf)
        yield from task.copy(data[rank * block : (rank + 1) * block], _bytes(sendbuf))
        if total == 1:
            return
        right = (rank + 1) % total
        left = (rank - 1) % total
        for step in range(total - 1):
            send_owner = (rank - step) % total
            recv_owner = (rank - step - 1) % total
            yield from task.mpi.sendrecv(
                right,
                data[send_owner * block : (send_owner + 1) * block],
                left,
                data[recv_owner * block : (recv_owner + 1) * block],
                _ALLGATHER_TAG + step,
            )

    def scan(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Inclusive prefix reduction via the classic linear chain:
        receive the running prefix from rank-1, combine, forward."""
        if dst.nbytes != src.nbytes:
            raise ValueError("scan buffers must match in size")
        total = task.spec.total_tasks
        rank = task.rank
        flat_src = src.reshape(-1)
        flat_dst = dst.reshape(-1)
        if rank == 0:
            yield from task.copy(flat_dst, flat_src)
        else:
            incoming = np.empty_like(flat_src)
            yield from task.mpi.recv(rank - 1, _SCAN_TAG, incoming)
            yield from task.combine_into(flat_dst, incoming, flat_src, op)
        if rank + 1 < total:
            yield from task.mpi.send(rank + 1, flat_dst, _SCAN_TAG)

    def reduce_scatter(
        self,
        task: "Task",
        src: np.ndarray,
        dst: np.ndarray,
        op: ReduceOp = SUM,
    ) -> ProcessGenerator:
        """Block-regular reduce-scatter as reduce + scatter (the MPICH 1.x
        composition): ``dst`` receives this rank's block of the full sum."""
        total = task.spec.total_tasks
        if src.nbytes != dst.nbytes * total:
            raise ValueError("reduce_scatter src must hold P blocks of dst's size")
        scratch = np.empty(src.reshape(-1).shape, dtype=src.dtype) if task.rank == 0 else None
        yield from self.reduce(task, src, scratch, op, root=0)
        yield from self.scatter(task, scratch, dst, root=0)

    def alltoall(
        self,
        task: "Task",
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
    ) -> ProcessGenerator:
        """Pairwise-exchange alltoall: P-1 shifted sendrecv steps."""
        total = task.spec.total_tasks
        if sendbuf.nbytes != recvbuf.nbytes or sendbuf.nbytes % total:
            raise ValueError("alltoall buffers must both hold P equal blocks")
        block = sendbuf.nbytes // total
        rank = task.rank
        send_data = _bytes(sendbuf)
        recv_data = _bytes(recvbuf)
        yield from task.copy(
            recv_data[rank * block : (rank + 1) * block],
            send_data[rank * block : (rank + 1) * block],
        )
        for step in range(1, total):
            to_peer = (rank + step) % total
            from_peer = (rank - step) % total
            yield from task.mpi.sendrecv(
                to_peer,
                send_data[to_peer * block : (to_peer + 1) * block],
                from_peer,
                recv_data[from_peer * block : (from_peer + 1) * block],
                _ALLGATHER_TAG + 100 + step,
            )

    # ------------------------------------------------------------------
    # barrier
    # ------------------------------------------------------------------

    def barrier(self, task: "Task") -> ProcessGenerator:
        """Zero-byte synchronization over all ranks (no SMP shortcut)."""
        total = task.spec.total_tasks
        if total == 1:
            return
        if self.barrier_algorithm == "dissemination":
            yield from self._barrier_dissemination(task)
        else:
            yield from self._barrier_recursive_doubling(task)

    def _barrier_dissemination(self, task: "Task") -> ProcessGenerator:
        total = task.spec.total_tasks
        rank = task.rank
        rounds = (total - 1).bit_length()
        scratch = np.zeros(0, dtype=np.uint8)
        for round_index in range(rounds):
            to_peer = (rank + (1 << round_index)) % total
            from_peer = (rank - (1 << round_index)) % total
            yield from task.mpi.sendrecv(
                to_peer, _SIGNAL, from_peer, scratch, _BARRIER_TAG + round_index
            )

    def _barrier_recursive_doubling(self, task: "Task") -> ProcessGenerator:
        """Pairwise XOR exchange with the fold for non-power-of-two P."""
        total = task.spec.total_tasks
        rank = task.rank
        scratch = np.zeros(0, dtype=np.uint8)
        group = 1 << (total.bit_length() - 1)
        if group > total:
            group >>= 1
        excess = total - group
        if rank >= group:
            yield from task.mpi.send(rank - group, _SIGNAL, _BARRIER_TAG)
            yield from task.mpi.recv(rank - group, _BARRIER_TAG, scratch)
            return
        if rank < excess:
            yield from task.mpi.recv(rank + group, _BARRIER_TAG, scratch)
        rounds = group.bit_length() - 1
        for round_index in range(rounds):
            peer = rank ^ (1 << round_index)
            yield from task.mpi.sendrecv(peer, _SIGNAL, peer, scratch, _BARRIER_TAG + 1 + round_index)
        if rank < excess:
            yield from task.mpi.send(rank + group, _SIGNAL, _BARRIER_TAG)
