"""Baseline message-passing collective stacks (the paper's comparison
points, §3)."""

from repro.mpi.collectives.base import MpiCollectives
from repro.mpi.collectives.ibm import IbmMpi
from repro.mpi.collectives.mpich import Mpich

__all__ = ["MpiCollectives", "IbmMpi", "Mpich"]
