"""The "MPICH"-like baseline stack.

Models ANL's MPICH running over MPL/MPCI on the SP (§3): the same binomial
broadcast/reduce trees (§2.1 notes MPICH used them), allreduce composed as
reduce + broadcast (the MPICH 1.2 implementation), a dissemination barrier,
and a *fixed* eager limit with heavier per-message software overheads — the
extra MPL→MPCI layering that made MPICH generally slower than the vendor
MPI in the paper's figures.
"""

from __future__ import annotations

from repro.machine.costmodel import CostModel, EagerLimitTable
from repro.mpi.collectives.base import MpiCollectives

__all__ = ["Mpich"]

#: Software-stack multiplier for the extra MPL/MPCI layering.
_LAYERING_FACTOR = 1.6


class Mpich(MpiCollectives):
    """MPICH-over-MPL-like collectives (the open-source baseline)."""

    name = "MPICH"
    allreduce_algorithm = "reduce_broadcast"
    barrier_algorithm = "dissemination"
    tree_family = "binomial"

    @classmethod
    def tune_cost(cls, cost: CostModel) -> CostModel:
        """Heavier per-message software path + a fixed 8 KB eager limit."""
        return cost.evolve(
            mpi_send_overhead=cost.mpi_send_overhead * _LAYERING_FACTOR,
            mpi_recv_overhead=cost.mpi_recv_overhead * _LAYERING_FACTOR,
            mpi_unexpected_overhead=cost.mpi_unexpected_overhead * _LAYERING_FACTOR,
            rendezvous_control_cost=cost.rendezvous_control_cost * _LAYERING_FACTOR,
            eager_limits=EagerLimitTable.fixed(8 * 1024),
        )
