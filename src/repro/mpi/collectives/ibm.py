"""The "IBM MPI"-like baseline stack.

Models the vendor MPI of the paper's testbed: binomial broadcast/reduce,
recursive-doubling allreduce and barrier, and — the §2.3 behaviour the paper
calls out — an eager limit that *shrinks with the task count* to bound the
P−1 eager-buffer pools (the default
:class:`~repro.machine.costmodel.EagerLimitTable`).
"""

from __future__ import annotations

from repro.machine.costmodel import CostModel
from repro.mpi.collectives.base import MpiCollectives

__all__ = ["IbmMpi"]


class IbmMpi(MpiCollectives):
    """IBM-MPI-like collectives (the tuned vendor baseline)."""

    name = "IBM MPI"
    allreduce_algorithm = "recursive_doubling"
    #: Vendor tuning: RD for latency-bound sizes, reduce+bcast beyond.
    allreduce_rd_max = 32 * 1024
    barrier_algorithm = "recursive_doubling"
    tree_family = "binomial"

    @classmethod
    def tune_cost(cls, cost: CostModel) -> CostModel:
        """The vendor stack runs at the machine's baseline protocol costs."""
        return cost
