"""MPI-flavoured datatype names mapped onto NumPy dtypes.

The paper's experiments use the ``double`` datatype with the ``sum`` operator
(§3); the helpers here keep benchmark code readable and validate buffer
compatibility at the API boundary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DOUBLE", "FLOAT", "INT", "LONG", "BYTE", "dtype_of", "element_count"]

DOUBLE = np.dtype(np.float64)
FLOAT = np.dtype(np.float32)
INT = np.dtype(np.int32)
LONG = np.dtype(np.int64)
BYTE = np.dtype(np.uint8)

_NAMES = {
    "double": DOUBLE,
    "float": FLOAT,
    "int": INT,
    "long": LONG,
    "byte": BYTE,
}


def dtype_of(name: str | np.dtype) -> np.dtype:
    """Resolve an MPI-style type name or NumPy dtype to a NumPy dtype."""
    if isinstance(name, np.dtype):
        return name
    try:
        return _NAMES[str(name).lower()]
    except KeyError:
        try:
            return np.dtype(name)
        except TypeError:
            raise ConfigurationError(f"unknown datatype {name!r}") from None


def element_count(nbytes: int, dtype: np.dtype) -> int:
    """Number of ``dtype`` elements in ``nbytes``, validating divisibility."""
    itemsize = np.dtype(dtype).itemsize
    if nbytes % itemsize:
        raise ConfigurationError(
            f"{nbytes} bytes is not a whole number of {dtype} elements"
        )
    return nbytes // itemsize
