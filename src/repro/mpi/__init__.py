"""MPI substrate: point-to-point protocols, ops, datatypes, and the
baseline (message-passing) collective implementations the paper compares
SRM against."""

from repro.mpi.matching import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, ReduceOp, by_name
from repro.mpi.p2p import EagerPool, MpiEndpoint

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "MpiEndpoint",
    "EagerPool",
    "ReduceOp",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "by_name",
]
