"""MPI point-to-point engine with Eager and Rendezvous protocols.

This is the substrate the *baseline* collectives are built on, implemented as
a real protocol state machine so that the overheads the paper attributes to
message-passing collectives (§1, §2.3) arise structurally instead of being
fudge factors:

* **Eager** (small messages): the payload is pushed immediately and lands in
  a bounded per-receiver buffer pool; the receiver pays an extra copy from
  the system buffer into the user buffer.  Pool capacity is
  :attr:`CostModel.eager_pool_bytes` per task, which together with the
  task-count-dependent :class:`~repro.machine.costmodel.EagerLimitTable`
  reproduces IBM MPI's shrinking eager limit at scale.
* **Rendezvous** (large messages): an RTS control message, a CTS grant once
  the receive is posted, then the payload streams directly into the user
  buffer (no extra copy inter-node; two copies through a shared-memory
  bounce intra-node).
* **Tag matching** with wildcards and MPI's pairwise FIFO ordering, plus an
  unexpected-message queue with its own handling cost.

Intra-node transport uses shared memory (two copies per message: sender into
the bounce region, receiver out of it) — the configuration the paper compares
against ("MPI (MPCI) was configured to use shared memory", §3).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ProtocolError, TruncationError
from repro.machine.network import network_transfer
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, Envelope, MatchQueues, PostedRecv, Status
from repro.sim.events import Event
from repro.sim.process import Process, ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import Task

__all__ = ["MpiEndpoint", "EagerPool", "ANY_SOURCE", "ANY_TAG", "Status"]


def _bytes_of(buffer: np.ndarray) -> np.ndarray:
    """A flat uint8 view of ``buffer`` for byte-granular copies."""
    return buffer.reshape(-1).view(np.uint8)


class EagerPool:
    """The byte budget of eager system buffers at one receiving task.

    Senders acquire space before pushing an eager message and the receiver
    releases it after draining the message into the user buffer — the
    credit-based flow control whose P−1-buffer memory footprint §2.3 blames
    for IBM MPI's shrinking eager limit.
    """

    def __init__(self, engine: typing.Any, capacity: int) -> None:
        self.engine = engine
        self.capacity = int(capacity)
        self.free = int(capacity)
        self._waiters: list[tuple[int, Event]] = []

    def acquire(self, nbytes: int) -> Event:
        """Event granting ``nbytes`` of pool space (FIFO, no overtaking)."""
        if nbytes > self.capacity:
            raise ProtocolError(
                f"eager message of {nbytes} B exceeds the {self.capacity} B pool"
            )
        grant = Event(self.engine, name="eager-credit")
        if not self._waiters and self.free >= nbytes:
            self.free -= nbytes
            grant.succeed()
        else:
            self._waiters.append((nbytes, grant))
        return grant

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool, waking queued senders in order."""
        self.free += nbytes
        if self.free > self.capacity:
            raise ProtocolError("eager pool over-released")
        while self._waiters and self._waiters[0][0] <= self.free:
            amount, grant = self._waiters.pop(0)
            self.free -= amount
            grant.succeed()


class MpiStats:
    """Per-endpoint protocol counters for audits and tests."""

    __slots__ = (
        "sends",
        "recvs",
        "eager_messages",
        "rendezvous_messages",
        "unexpected_arrivals",
        "bytes_sent",
    )

    def __init__(self) -> None:
        self.sends = 0
        self.recvs = 0
        self.eager_messages = 0
        self.rendezvous_messages = 0
        self.unexpected_arrivals = 0
        self.bytes_sent = 0


class MpiEndpoint:
    """The point-to-point interface of one task."""

    def __init__(self, task: "Task") -> None:
        self.task = task
        self.engine = task.engine
        self.cost = task.cost
        self.queues = MatchQueues()
        self.eager_pool = EagerPool(self.engine, self.cost.eager_pool_bytes)
        self.stats = MpiStats()

    @property
    def eager_limit(self) -> int:
        """The protocol switch point for this job's task count (§2.3)."""
        return self.cost.eager_limit(self.task.spec.total_tasks)

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------

    def send(self, dest: int, buffer: np.ndarray, tag: int = 0) -> ProcessGenerator:
        """Blocking standard-mode send (protocol chosen by message size)."""
        self.task.spec.check_rank(dest)
        self.stats.sends += 1
        self.stats.bytes_sent += buffer.nbytes
        yield self.engine.timeout(self.cost.mpi_send_overhead)
        if buffer.nbytes <= self.eager_limit:
            yield from self._eager_send(dest, buffer, tag)
        else:
            yield from self._rendezvous_send(dest, buffer, tag)

    def isend(self, dest: int, buffer: np.ndarray, tag: int = 0) -> Process:
        """Non-blocking send; join the returned process to complete it."""
        return self.engine.process(self.send(dest, buffer, tag), name=f"isend:{self.task.rank}->{dest}")

    def _eager_send(self, dest: int, buffer: np.ndarray, tag: int) -> ProcessGenerator:
        dest_task = self.task.machine.task(dest)
        dest_endpoint: MpiEndpoint = dest_task.mpi
        nbytes = int(buffer.nbytes)
        self.stats.eager_messages += 1
        if nbytes > 0:
            yield dest_endpoint.eager_pool.acquire(nbytes)
        snapshot = np.array(_bytes_of(buffer), copy=True)
        envelope = Envelope("eager", self.task.rank, tag, nbytes, data=snapshot)
        if dest_task.node is self.task.node:
            # First of the two intra-node copies: user buffer -> bounce.
            yield self.engine.timeout(self.cost.sm_copy_latency)
            if nbytes > 0:
                yield self.task.node.bus.transfer(nbytes, max_rate=self.cost.sm_copy_bandwidth)
                self.task.stats.copies += 1
                self.task.stats.bytes_copied += nbytes
            yield self.engine.timeout(self.cost.flag_set_cost)

            def announce_local() -> ProcessGenerator:
                yield self.engine.timeout(self.cost.flag_poll_interval)
                dest_endpoint._arrive(envelope)

            self.engine.process(announce_local(), name="eager-shm-arrive")
        else:
            # The sender is released once its outbound link accepts the
            # bytes; the receive-side stages overlap with the injection (the
            # message pipelines through the switch), so the bandwidth term is
            # paid once, not per stage.
            injection = (
                self.task.node.nic_out.transfer(nbytes) if nbytes > 0 else None
            )

            def deliver_remote() -> ProcessGenerator:
                yield self.engine.timeout(self.cost.net_latency)
                if nbytes > 0:
                    stages = [
                        dest_task.node.nic_in.transfer(nbytes),
                        dest_task.node.bus.transfer(nbytes),
                    ]
                    if injection is not None and not injection.processed:
                        stages.append(injection)
                    yield self.engine.all_of(stages)
                dest_endpoint._arrive(envelope)

            self.engine.process(deliver_remote(), name="eager-net-arrive")
            if injection is not None:
                yield injection

    def _rendezvous_send(self, dest: int, buffer: np.ndarray, tag: int) -> ProcessGenerator:
        dest_task = self.task.machine.task(dest)
        dest_endpoint: MpiEndpoint = dest_task.mpi
        nbytes = int(buffer.nbytes)
        same_node = dest_task.node is self.task.node
        self.stats.rendezvous_messages += 1
        cts = Event(self.engine, name=f"cts:{self.task.rank}->{dest}")
        envelope = Envelope("rts", self.task.rank, tag, nbytes, cts=cts)
        # Request-to-send control message.
        yield self.engine.timeout(self.cost.rendezvous_control_cost)
        rts_delay = self.cost.flag_poll_interval if same_node else self.cost.net_latency

        def announce_rts() -> ProcessGenerator:
            yield self.engine.timeout(rts_delay)
            dest_endpoint._arrive(envelope)

        self.engine.process(announce_rts(), name="rts-arrive")
        posted: PostedRecv = yield cts
        if envelope.nbytes > posted.buffer.nbytes:
            raise TruncationError(
                f"rendezvous message of {nbytes} B into a {posted.buffer.nbytes} B buffer"
            )
        status = Status(self.task.rank, tag, nbytes)
        if same_node:
            # Copy one: user buffer -> shared bounce (charged to the sender).
            snapshot = np.array(_bytes_of(buffer), copy=True)
            yield self.engine.timeout(self.cost.sm_copy_latency)
            yield self.task.node.bus.transfer(nbytes, max_rate=self.cost.sm_copy_bandwidth)
            self.task.stats.copies += 1
            self.task.stats.bytes_copied += nbytes

            def drain_local() -> ProcessGenerator:
                # Copy two: bounce -> user buffer (the receiver's timeline
                # advances when `done` fires).
                yield self.engine.timeout(self.cost.sm_copy_latency)
                yield dest_task.node.bus.transfer(nbytes, max_rate=self.cost.sm_copy_bandwidth)
                _bytes_of(posted.buffer)[:nbytes] = snapshot
                dest_task.stats.copies += 1
                dest_task.stats.bytes_copied += nbytes
                # The receiver slept through the transfer; wake it.
                yield self.engine.timeout(self.cost.mpi_shm_wakeup)
                posted.done.succeed(status)

            self.engine.process(drain_local(), name="rndv-shm-drain")
        else:
            # Payload streams straight into the posted user buffer — the
            # zero-extra-copy half of rendezvous.
            yield from network_transfer(self.task.node, dest_task.node, nbytes)
            _bytes_of(posted.buffer)[:nbytes] = _bytes_of(buffer)
            # Blocked-receiver wake-up happens off the sender's critical
            # path but before the receiver resumes.
            posted.done.succeed(status, delay=self.cost.mpi_blocked_recv_wakeup)

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        buffer: np.ndarray | None = None,
    ) -> typing.Generator[typing.Any, typing.Any, Status]:
        """Blocking receive into ``buffer``; returns a :class:`Status`."""
        if buffer is None:
            raise ProtocolError("recv() requires a destination buffer")
        if source is not ANY_SOURCE:
            self.task.spec.check_rank(source)
        self.stats.recvs += 1
        yield self.engine.timeout(self.cost.mpi_recv_overhead)
        envelope = self.queues.match_receive(source, tag)
        if envelope is None:
            done = Event(self.engine, name=f"recv:{self.task.rank}")
            self.queues.post(PostedRecv(source, tag, buffer, done))
            status = yield done
            return status
        # Unexpected-queue hit: pay the early-arrival handling cost (§1).
        self.stats.unexpected_arrivals += 1
        yield self.engine.timeout(self.cost.mpi_unexpected_overhead)
        if envelope.kind == "eager":
            status = yield from self._drain_eager(envelope, buffer)
            return status
        done = Event(self.engine, name=f"recv:{self.task.rank}")
        posted = PostedRecv(envelope.source, envelope.tag, buffer, done)
        self._grant_cts(envelope, posted)
        status = yield done
        return status

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, buffer: np.ndarray | None = None
    ) -> Process:
        """Non-blocking receive; joining the process yields the Status."""
        return self.engine.process(
            self.recv(source, tag, buffer), name=f"irecv:{self.task.rank}"
        )

    def sendrecv(
        self,
        dest: int,
        send_buffer: np.ndarray,
        source: int,
        recv_buffer: np.ndarray,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> typing.Generator[typing.Any, typing.Any, Status]:
        """Combined exchange (deadlock-free), as used by recursive doubling."""
        if recv_tag is None:
            recv_tag = send_tag
        send_process = self.isend(dest, send_buffer, send_tag)
        status = yield from self.recv(source, recv_tag, recv_buffer)
        yield send_process
        return status

    # ------------------------------------------------------------------
    # arrival path (runs in delivery processes)
    # ------------------------------------------------------------------

    def _arrive(self, envelope: Envelope) -> None:
        posted = self.queues.match_arrival(envelope)
        if posted is None:
            return  # queued as unexpected; a future recv pays the penalty
        if envelope.kind == "eager":

            def finish_eager() -> ProcessGenerator:
                # The receiver was already blocked in MPI_Recv: it pays the
                # progress-engine wake-up before it can drain the message
                # (cheaper for shared-memory arrivals: the poll loop catches
                # those before the receiver sleeps).
                source_task = self.task.machine.task(envelope.source)
                same_node = source_task.node is self.task.node
                yield self.engine.timeout(
                    self.cost.mpi_shm_wakeup if same_node else self.cost.mpi_blocked_recv_wakeup
                )
                try:
                    status = yield from self._drain_eager(envelope, posted.buffer)
                except ProtocolError as exc:
                    posted.done.fail(exc)
                    return
                posted.done.succeed(status)

            self.engine.process(finish_eager(), name="eager-finish")
        else:
            self._grant_cts(envelope, posted)

    def _drain_eager(
        self, envelope: Envelope, buffer: np.ndarray
    ) -> typing.Generator[typing.Any, typing.Any, Status]:
        """System buffer -> user buffer: the eager protocol's extra copy."""
        if envelope.nbytes > buffer.nbytes:
            raise TruncationError(
                f"eager message of {envelope.nbytes} B into a {buffer.nbytes} B buffer"
            )
        nbytes = envelope.nbytes
        yield self.engine.timeout(self.cost.sm_copy_latency)
        if nbytes > 0:
            yield self.task.node.bus.transfer(nbytes, max_rate=self.cost.sm_copy_bandwidth)
            assert envelope.data is not None
            _bytes_of(buffer)[:nbytes] = envelope.data
            self.task.stats.copies += 1
            self.task.stats.bytes_copied += nbytes
            self.eager_pool.release(nbytes)
        return Status(envelope.source, envelope.tag, nbytes)

    def _grant_cts(self, envelope: Envelope, posted: PostedRecv) -> None:
        """Clear-to-send back to the sender, delayed by the return path.

        The sender has been blocked in MPI_Send since the RTS went out, so
        it also pays the progress-engine wake-up when the CTS lands.
        """
        source_task = self.task.machine.task(envelope.source)
        same_node = source_task.node is self.task.node
        delay = self.cost.rendezvous_control_cost + (
            self.cost.flag_poll_interval + self.cost.mpi_shm_wakeup
            if same_node
            else self.cost.net_latency + self.cost.mpi_blocked_recv_wakeup
        )
        assert envelope.cts is not None
        envelope.cts.succeed(posted, delay=delay)
