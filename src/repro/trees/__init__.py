"""Communication-tree library: families (§2.1) and SMP-cluster embedding
(Fig. 1)."""

from repro.trees.base import RankTree, Tree, map_to_ranks
from repro.trees.binomial import binomial_rounds, binomial_tree
from repro.trees.embedding import (
    TREE_FAMILIES,
    EmbeddedTrees,
    build_tree,
    group_embedding,
    naive_rank_tree,
    smp_embedding,
)
from repro.trees.families import (
    binary_tree,
    delayed_tree,
    fibonacci_tree,
    flat_tree,
    kary_tree,
)

__all__ = [
    "Tree",
    "RankTree",
    "map_to_ranks",
    "binomial_tree",
    "binomial_rounds",
    "binary_tree",
    "kary_tree",
    "flat_tree",
    "fibonacci_tree",
    "delayed_tree",
    "build_tree",
    "naive_rank_tree",
    "smp_embedding",
    "group_embedding",
    "EmbeddedTrees",
    "TREE_FAMILIES",
]
