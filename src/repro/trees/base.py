"""Tree representations for collective communication graphs.

Two layers:

* :class:`Tree` — a tree over *virtual* participants ``0..size-1`` with the
  root at 0.  Builders (:mod:`repro.trees.binomial` etc.) produce these.
* :class:`RankTree` — a tree over *global MPI ranks*, produced by mapping a
  virtual tree onto an ordering of ranks (:func:`map_to_ranks`).  Collective
  algorithms walk rank trees.

Children are kept in send order: for a broadcast the root sends to
``children[0]`` first.  Builders order children by descending subtree size
(send to the deepest subtree first), the standard choice that keeps tree
height on the critical path.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, TopologyError

__all__ = ["Tree", "RankTree", "map_to_ranks"]


class Tree:
    """A rooted tree over virtual participants ``0..size-1`` (root = 0)."""

    def __init__(self, parents: typing.Sequence[int | None]) -> None:
        self.parents: tuple[int | None, ...] = tuple(parents)
        if not self.parents:
            raise TopologyError("tree needs at least one participant")
        if self.parents[0] is not None:
            raise TopologyError("virtual participant 0 must be the root")
        self.children: list[list[int]] = [[] for _ in self.parents]
        for vertex, parent in enumerate(self.parents):
            if vertex == 0:
                continue
            if parent is None or not 0 <= parent < len(self.parents):
                raise TopologyError(f"vertex {vertex} has invalid parent {parent!r}")
            self.children[parent].append(vertex)
        self._validate_connected()
        self._levels: list[int] | None = None

    @property
    def size(self) -> int:
        """Number of participants."""
        return len(self.parents)

    def _validate_connected(self) -> None:
        seen = [False] * self.size
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            vertex = stack.pop()
            for child in self.children[vertex]:
                if seen[child]:
                    raise TopologyError(f"vertex {child} reachable twice (cycle)")
                seen[child] = True
                count += 1
                stack.append(child)
        if count != self.size:
            raise TopologyError(
                f"tree disconnected: reached {count} of {self.size} vertices"
            )

    def level_of(self, vertex: int) -> int:
        """Depth of ``vertex`` (root = 0)."""
        if self._levels is None:
            levels = [0] * self.size
            stack = [0]
            while stack:
                current = stack.pop()
                for child in self.children[current]:
                    levels[child] = levels[current] + 1
                    stack.append(child)
            self._levels = levels
        return self._levels[vertex]

    @property
    def height(self) -> int:
        """Maximum depth over all participants."""
        return max(self.level_of(v) for v in range(self.size))

    def subtree_size(self, vertex: int) -> int:
        """Number of vertices in the subtree rooted at ``vertex``."""
        total = 1
        for child in self.children[vertex]:
            total += self.subtree_size(child)
        return total

    def sort_children_by_subtree(self) -> "Tree":
        """Reorder every child list by descending subtree size, in place."""
        for vertex in range(self.size):
            self.children[vertex].sort(key=self.subtree_size, reverse=True)
        return self

    def leaves(self) -> list[int]:
        """All vertices with no children."""
        return [v for v in range(self.size) if not self.children[v]]

    def max_degree(self) -> int:
        """Largest fan-out of any vertex (sizes the SRM buffer pool, §2.3)."""
        return max(len(kids) for kids in self.children)

    def __repr__(self) -> str:
        return f"<Tree size={self.size} height={self.height}>"


@dataclass
class RankTree:
    """A communication tree over global MPI ranks."""

    root: int
    parent: dict[int, int | None]
    children: dict[int, list[int]] = field(repr=False)

    def __post_init__(self) -> None:
        if self.parent.get(self.root, "missing") is not None:
            raise TopologyError(f"root {self.root} must have parent None")

    @property
    def ranks(self) -> list[int]:
        """All participating ranks."""
        return list(self.parent)

    @property
    def size(self) -> int:
        return len(self.parent)

    def parent_of(self, rank: int) -> int | None:
        """Parent rank, or None for the root."""
        try:
            return self.parent[rank]
        except KeyError:
            raise TopologyError(f"rank {rank} is not in this tree") from None

    def children_of(self, rank: int) -> list[int]:
        """Child ranks in send order."""
        try:
            return self.children[rank]
        except KeyError:
            raise TopologyError(f"rank {rank} is not in this tree") from None

    def height(self) -> int:
        """Maximum depth over all ranks."""
        depth = {self.root: 0}
        stack = [self.root]
        while stack:
            current = stack.pop()
            for child in self.children[current]:
                depth[child] = depth[current] + 1
                stack.append(child)
        return max(depth.values())

    def cross_node_edges(self, spec: typing.Any) -> int:
        """Number of parent→child edges crossing SMP node boundaries."""
        return sum(
            1
            for rank, parent in self.parent.items()
            if parent is not None and not spec.same_node(rank, parent)
        )

    def __repr__(self) -> str:
        return f"<RankTree root={self.root} size={self.size}>"


def map_to_ranks(tree: Tree, ranks: typing.Sequence[int]) -> RankTree:
    """Map a virtual tree onto ``ranks`` (``ranks[0]`` becomes the root)."""
    if len(ranks) != tree.size:
        raise ConfigurationError(
            f"tree of size {tree.size} cannot map onto {len(ranks)} ranks"
        )
    if len(set(ranks)) != len(ranks):
        raise ConfigurationError("rank list contains duplicates")
    parent: dict[int, int | None] = {}
    children: dict[int, list[int]] = {}
    for vertex in range(tree.size):
        rank = ranks[vertex]
        vparent = tree.parents[vertex]
        parent[rank] = None if vparent is None else ranks[vparent]
        children[rank] = [ranks[child] for child in tree.children[vertex]]
    return RankTree(root=ranks[0], parent=parent, children=children)
