"""The other tree families the paper implemented and compared (§2.1):
binary, k-ary, flat, and Fibonacci (postal-model) trees."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.trees.base import Tree

__all__ = ["binary_tree", "kary_tree", "flat_tree", "fibonacci_tree", "delayed_tree"]


def kary_tree(size: int, arity: int) -> Tree:
    """Complete k-ary tree: children of ``v`` are ``k*v+1 .. k*v+k``."""
    if size < 1:
        raise ConfigurationError(f"tree size must be >= 1, got {size}")
    if arity < 1:
        raise ConfigurationError(f"arity must be >= 1, got {arity}")
    parents: list[int | None] = [None] * size
    for vertex in range(1, size):
        parents[vertex] = (vertex - 1) // arity
    return Tree(parents)


def binary_tree(size: int) -> Tree:
    """Complete binary tree."""
    return kary_tree(size, 2)


def flat_tree(size: int) -> Tree:
    """Root directly parents everyone — the paper's SMP barrier shape (§2.2)."""
    if size < 1:
        raise ConfigurationError(f"tree size must be >= 1, got {size}")
    parents: list[int | None] = [None] + [0] * (size - 1)
    return Tree(parents)


def delayed_tree(size: int, delay: int) -> Tree:
    """Postal-model broadcast tree: a participant received at time ``t`` can
    forward from time ``t + delay`` on, one send per unit time.

    ``delay=1`` reproduces the binomial tree's growth (doubling per round);
    ``delay=2`` gives Fibonacci growth — the λ-tree family of Bar-Noy &
    Kipnis [5] the paper cites.
    """
    if size < 1:
        raise ConfigurationError(f"tree size must be >= 1, got {size}")
    if delay < 1:
        raise ConfigurationError(f"delay must be >= 1, got {delay}")
    parents: list[int | None] = [None] * size
    # ready_at[v]: earliest step at which v may send; a participant informed
    # at step t becomes ready at t + delay and sends once per step after.
    ready_at = [delay]
    assigned = 1
    time = 0
    while assigned < size:
        time += 1
        for vertex in range(assigned):
            if assigned >= size:
                break
            if ready_at[vertex] <= time:
                parents[assigned] = vertex
                ready_at.append(time + delay)
                ready_at[vertex] = time + 1
                assigned += 1
    return Tree(parents).sort_children_by_subtree()


def fibonacci_tree(size: int) -> Tree:
    """Fibonacci broadcast tree (postal model with send delay 2)."""
    return delayed_tree(size, delay=2)
