"""Embedding collective trees into an SMP cluster (paper §2.1, Fig. 1).

Two embeddings are provided:

* :func:`naive_rank_tree` — the topology-*oblivious* mapping the MPI
  baselines use: one tree over all global ranks in rotated rank order.  Its
  edges freely cross node boundaries, which is exactly why message-passing
  collectives underuse shared memory.
* :func:`smp_embedding` — the SRM mapping: one *inter-node* tree over a
  single representative per node (the node master; on the root's node, the
  root itself) and one *intra-node* tree per node over its local tasks,
  rooted at the representative.  With ``p`` tasks on each of ``n`` nodes this
  adds no height over the flat tree because
  ``log(P) >= log(n) + log(p)`` — paper equation (1)'s optimality argument.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.spec import ClusterSpec
from repro.trees.base import RankTree, Tree, map_to_ranks
from repro.trees.binomial import binomial_tree
from repro.trees.families import binary_tree, fibonacci_tree, flat_tree, kary_tree

__all__ = ["build_tree", "naive_rank_tree", "smp_embedding", "group_embedding", "EmbeddedTrees", "TREE_FAMILIES"]

#: Name → builder for the tree families of §2.1.
TREE_FAMILIES: dict[str, typing.Callable[[int], Tree]] = {
    "binomial": binomial_tree,
    "binary": binary_tree,
    "fibonacci": fibonacci_tree,
    "flat": flat_tree,
}


def build_tree(family: str, size: int, arity: int | None = None) -> Tree:
    """Build a virtual tree of the named family over ``size`` participants."""
    if family == "kary":
        if arity is None:
            raise ConfigurationError("kary trees need an explicit arity")
        return kary_tree(size, arity)
    try:
        builder = TREE_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown tree family {family!r}; available: {sorted(TREE_FAMILIES)} + 'kary'"
        ) from None
    return builder(size)


def naive_rank_tree(spec: ClusterSpec, root: int, family: str = "binomial") -> RankTree:
    """Topology-oblivious tree over all ranks (virtual v ↦ (root+v) mod P)."""
    spec.check_rank(root)
    total = spec.total_tasks
    order = [(root + offset) % total for offset in range(total)]
    return map_to_ranks(build_tree(family, total), order)


@dataclass
class EmbeddedTrees:
    """The SRM two-level communication structure for one rooted operation."""

    spec: ClusterSpec
    root: int
    #: Per-node representative: the one task that talks to the network (§2.3).
    representatives: dict[int, int]
    #: Inter-node tree over the representatives, rooted at the root task.
    inter: RankTree
    #: Per-node intra trees over local ranks, rooted at the representative.
    intra: dict[int, RankTree]

    def representative_of(self, rank: int) -> int:
        """The network-facing task of ``rank``'s node."""
        return self.representatives[self.spec.node_of(rank)]

    def is_representative(self, rank: int) -> bool:
        """True when ``rank`` does this node's network communication."""
        return self.representative_of(rank) == rank

    def combined(self) -> RankTree:
        """Flatten into one rank tree (intra edges + inter edges)."""
        parent: dict[int, int | None] = {}
        children: dict[int, list[int]] = {}
        for node_tree in self.intra.values():
            for rank in node_tree.ranks:
                parent[rank] = node_tree.parent_of(rank)
                # Inter-node children go first: network sends are issued
                # before the local shared-memory fan-out so they overlap.
                children[rank] = list(node_tree.children_of(rank))
        for rank in self.inter.ranks:
            inter_parent = self.inter.parent_of(rank)
            if inter_parent is not None:
                parent[rank] = inter_parent
            children[rank] = self.inter.children_of(rank) + children[rank]
        return RankTree(root=self.root, parent=parent, children=children)

    def height(self) -> int:
        """Height of the combined tree."""
        return self.combined().height()


def smp_embedding(
    spec: ClusterSpec,
    root: int,
    inter_family: str = "binomial",
    intra_family: str = "binomial",
) -> EmbeddedTrees:
    """The SRM embedding: Fig. 1's binomial-subtree-per-node structure."""
    return group_embedding(
        spec,
        range(spec.total_tasks),
        root,
        inter_family=inter_family,
        intra_family=intra_family,
    )


def group_embedding(
    spec: ClusterSpec,
    members: typing.Iterable[int],
    root: int,
    inter_family: str = "binomial",
    intra_family: str = "binomial",
) -> EmbeddedTrees:
    """The Fig. 1 embedding restricted to an arbitrary task group.

    This is the §5 open problem ("optimal embedding spanning trees for
    arbitrary MPI task groups in the SMP clusters"): only nodes hosting at
    least one group member join the inter-node tree; each such node's
    representative is the root (on the root's node) or its lowest member
    rank; intra-node trees span just the members.  With m members per used
    node and k used nodes the height stays within
    ``ceil(log2 k) + ceil(log2 max_m)`` — the same no-extra-steps argument
    as equation (1).
    """
    member_list = sorted(set(members))
    if not member_list:
        raise ConfigurationError("a task group needs at least one member")
    for rank in member_list:
        spec.check_rank(rank)
    if root not in member_list:
        raise ConfigurationError(f"root {root} is not a member of the group")

    members_by_node: dict[int, list[int]] = {}
    for rank in member_list:
        members_by_node.setdefault(spec.node_of(rank), []).append(rank)

    root_node = spec.node_of(root)
    node_order = [root_node] + [n for n in sorted(members_by_node) if n != root_node]

    representatives: dict[int, int] = {}
    for node, node_members in members_by_node.items():
        representatives[node] = root if node == root_node else node_members[0]

    inter_tree = map_to_ranks(
        build_tree(inter_family, len(node_order)),
        [representatives[node] for node in node_order],
    )

    intra_trees: dict[int, RankTree] = {}
    for node, node_members in members_by_node.items():
        representative = representatives[node]
        local_order = [representative] + [r for r in node_members if r != representative]
        intra_trees[node] = map_to_ranks(
            build_tree(intra_family, len(node_members)), local_order
        )

    return EmbeddedTrees(
        spec=spec,
        root=root,
        representatives=representatives,
        inter=inter_tree,
        intra=intra_trees,
    )
