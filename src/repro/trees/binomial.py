"""Binomial (distance power-of-two) trees.

The family the paper found fastest for inter-node communication (§2.1) and
the one MPICH's broadcast/reduce used.  Virtual participant ``v``'s parent is
``v`` with its *lowest* set bit cleared (the MPICH orientation), so ``v``'s
depth is its popcount and the operation completes in ``ceil(log2 p)``
communication rounds — paper equation (1).  A vertex's children are
``v + 2^k`` for ``2^k`` above ``v``'s lowest set bit; the largest subtree
(highest ``2^k``) is sent to first.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.trees.base import Tree

__all__ = ["binomial_tree", "binomial_rounds"]


def binomial_tree(size: int) -> Tree:
    """The binomial broadcast tree over ``size`` virtual participants."""
    if size < 1:
        raise ConfigurationError(f"tree size must be >= 1, got {size}")
    parents: list[int | None] = [None] * size
    for vertex in range(1, size):
        # Clear the lowest set bit: 13 (0b1101) hangs off 12 (0b1100).
        parents[vertex] = vertex & (vertex - 1)
    return Tree(parents).sort_children_by_subtree()


def binomial_rounds(size: int) -> int:
    """Communication rounds a binomial operation takes: ``ceil(log2 size)``."""
    if size < 1:
        raise ConfigurationError(f"tree size must be >= 1, got {size}")
    return (size - 1).bit_length()
