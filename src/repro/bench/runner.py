"""Measurement harness: build stacks, time collectives in simulated time.

Mirrors the paper's protocol (§3): each data point is the average execution
time of repeated back-to-back calls of one operation (the paper used 1000
calls; the simulator is deterministic so a handful suffices — consecutive
calls still exercise buffer alternation and cross-call pipelining), on a
16-tasks-per-node cluster, with the ``sum`` operator over ``double``
elements for the reductions.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core import SRM, SRMConfig
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.mpi.collectives import IbmMpi, Mpich
from repro.mpi.ops import SUM, ReduceOp

__all__ = [
    "STACKS",
    "OPERATIONS",
    "build",
    "operation_body",
    "looped_program",
    "time_operation",
    "Measurement",
]

#: Stack registry: name -> builder.
STACKS = ("srm", "ibm", "mpich")

#: The paper's common set, i.e. every operation the harness can time.
OPERATIONS = ("broadcast", "reduce", "allreduce", "barrier")


def build(
    stack: str,
    spec: ClusterSpec,
    cost: CostModel | None = None,
    srm_config: SRMConfig | None = None,
    seed: int = 0,
    policy: typing.Any = None,
) -> tuple[Machine, typing.Any]:
    """Build a fresh machine plus the named collective stack on it.

    Each stack gets its own machine so per-stack cost tuning (MPICH's
    layering overheads) and persistent state never leak across comparisons.
    ``policy`` overrides the SRM stack's protocol-selection policy (a
    :class:`~repro.core.dispatch.SelectionPolicy`); the MPI stacks, which
    have no dispatch layer, ignore it.
    """
    base = cost if cost is not None else CostModel.ibm_sp_colony()
    if stack == "srm":
        machine = Machine(spec, cost=base, seed=seed)
        return machine, SRM(machine, config=srm_config, policy=policy)
    if stack == "ibm":
        machine = Machine(spec, cost=IbmMpi.tune_cost(base), seed=seed)
        return machine, IbmMpi(machine)
    if stack == "mpich":
        machine = Machine(spec, cost=Mpich.tune_cost(base), seed=seed)
        return machine, Mpich(machine)
    raise ConfigurationError(f"unknown stack {stack!r}; expected one of {STACKS}")


class Measurement:
    """One timed data point."""

    __slots__ = ("stack", "operation", "nbytes", "total_tasks", "seconds", "repeats", "nodes")

    def __init__(
        self,
        stack: str,
        operation: str,
        nbytes: int,
        total_tasks: int,
        seconds: float,
        repeats: int,
        nodes: int = 0,
    ) -> None:
        self.stack = stack
        self.operation = operation
        self.nbytes = nbytes
        self.total_tasks = total_tasks
        self.seconds = seconds
        self.repeats = repeats
        #: Node count of the cluster shape (0 when built by hand without one).
        self.nodes = nodes

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6

    def __repr__(self) -> str:
        return (
            f"<{self.stack} {self.operation} {self.nbytes}B P={self.total_tasks}: "
            f"{self.microseconds:.2f}us>"
        )


def _element_count(nbytes: int) -> int:
    """Reductions run on doubles (§3); round byte sizes to whole elements."""
    return max(1, nbytes // 8)


def operation_body(
    machine: Machine,
    stack: typing.Any,
    operation: str,
    nbytes: int = 0,
    root: int = 0,
    op: ReduceOp = SUM,
) -> typing.Callable:
    """The per-task generator body for one call of ``operation``.

    Shared by :func:`time_operation` and the snapshot capture in
    :mod:`repro.bench.snapshot`, so both time exactly the same workload
    (buffers allocated once and reused call-to-call, sum over doubles).
    """
    if operation not in OPERATIONS:
        raise ConfigurationError(f"unknown operation {operation!r}")
    total = machine.spec.total_tasks

    if operation == "broadcast":
        buffers = {rank: np.zeros(max(1, nbytes), dtype=np.uint8) for rank in range(total)}
        buffers[root][:] = 7

        def body(task, _iteration):
            yield from stack.broadcast(task, buffers[task.rank], root=root)

    elif operation == "reduce":
        count = _element_count(nbytes)
        sources = {rank: np.full(count, float(rank + 1)) for rank in range(total)}
        destination = np.zeros(count)

        def body(task, _iteration):
            dst = destination if task.rank == root else None
            yield from stack.reduce(task, sources[task.rank], dst, op, root=root)

    elif operation == "allreduce":
        count = _element_count(nbytes)
        sources = {rank: np.full(count, float(rank + 1)) for rank in range(total)}
        destinations = {rank: np.zeros(count) for rank in range(total)}

        def body(task, _iteration):
            yield from stack.allreduce(task, sources[task.rank], destinations[task.rank], op)

    else:  # barrier

        def body(task, _iteration):
            yield from stack.barrier(task)

    return body


def looped_program(body: typing.Callable, iterations: int) -> typing.Callable:
    """A per-task program running ``body`` ``iterations`` times back-to-back."""

    def program(task):
        for iteration in range(iterations):
            yield from body(task, iteration)

    return program


def time_operation(
    machine: Machine,
    stack: typing.Any,
    operation: str,
    nbytes: int = 0,
    root: int = 0,
    op: ReduceOp = SUM,
    repeats: int = 3,
    warmup: int = 1,
) -> Measurement:
    """Average simulated seconds per call of ``operation`` on ``stack``.

    ``warmup`` unmeasured calls first populate buffers/plans (and leave the
    double-buffer cursors mid-stream, like the paper's 1000-call loops),
    then ``repeats`` back-to-back calls are timed as one launch.
    """
    if repeats < 1 or warmup < 0:
        raise ConfigurationError("repeats must be >= 1 and warmup >= 0")
    body = operation_body(machine, stack, operation, nbytes, root, op)
    if warmup:
        machine.launch(looped_program(body, warmup))
    result = machine.launch(looped_program(body, repeats))
    return Measurement(
        stack=getattr(stack, "name", type(stack).__name__),
        operation=operation,
        nbytes=nbytes,
        total_tasks=machine.spec.total_tasks,
        seconds=result.elapsed / repeats,
        repeats=repeats,
        nodes=machine.spec.nodes,
    )
