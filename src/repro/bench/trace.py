"""Collective-call tracing and ASCII timeline rendering.

A :class:`Tracer` wraps any collective stack (SRM or a baseline) and records
one span per (rank, operation) call, plus the per-task substrate counters
accumulated inside it (copies, reduce passes, puts, MPI messages, interrupts,
yields).  The timeline renderer draws rank lanes against simulated time —
a poor man's Vampir — which makes the pipelining structure of the SRM
protocols (and the serial hops of the baselines) directly visible:

    rank  0 BBBBBBBB............
    rank  1 ...BBBBBBBBBB.......
    rank  4 ......BBBBBBBBBBB...

Used by ``python -m repro trace`` and handy in tests to assert *how* an
operation executed, not just how long it took.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.machine.cluster import Machine, Task
from repro.sim.process import ProcessGenerator

__all__ = ["Span", "Tracer", "TracedStack", "assign_glyphs"]


def assign_glyphs(operations: typing.Iterable[str]) -> dict[str, str]:
    """One *distinct* glyph per operation name.

    Naive first-letter glyphs collide (``broadcast`` and ``barrier`` both
    render ``B``); here each operation, in sorted order, takes the first
    unused character from its own letters, falling back to digits.
    """
    glyphs: dict[str, str] = {}
    used: set[str] = set()
    for operation in sorted(set(operations)):
        candidates = [ch.upper() for ch in operation if ch.isalnum()]
        candidates += list("0123456789")
        glyph = next((c for c in candidates if c not in used), "?")
        glyphs[operation] = glyph
        used.add(glyph)
    return glyphs


@dataclass(frozen=True)
class Span:
    """One rank's participation in one collective call."""

    rank: int
    operation: str
    call_index: int
    start: float
    end: float
    copies: int
    bytes_copied: int
    reduce_ops: int
    puts: int
    mpi_sends: int
    interrupts: int
    yields: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Records spans for every traced collective call on one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.spans: list[Span] = []
        self._call_counter: dict[str, int] = {}

    def wrap(self, stack: typing.Any) -> "TracedStack":
        """A stack façade whose operations record spans into this tracer."""
        return TracedStack(self, stack)

    # -- recording ----------------------------------------------------------

    def _snapshot(self, task: Task) -> tuple[int, ...]:
        return (
            task.stats.copies,
            task.stats.bytes_copied,
            task.stats.reduce_ops,
            task.lapi.stats.puts,
            task.mpi.stats.sends,
            task.stats.interrupts,
            task.stats.yields,
        )

    def _record(
        self,
        task: Task,
        operation: str,
        call_index: int,
        start: float,
        before: tuple[int, ...],
    ) -> None:
        after = self._snapshot(task)
        delta = tuple(a - b for a, b in zip(after, before))
        self.spans.append(
            Span(
                rank=task.rank,
                operation=operation,
                call_index=call_index,
                start=start,
                end=task.engine.now,
                copies=delta[0],
                bytes_copied=delta[1],
                reduce_ops=delta[2],
                puts=delta[3],
                mpi_sends=delta[4],
                interrupts=delta[5],
                yields=delta[6],
            )
        )

    def _next_call(self, operation: str) -> int:
        index = self._call_counter.get(operation, 0)
        self._call_counter[operation] = index + 1
        return index

    # -- queries -------------------------------------------------------------

    def calls(self, operation: str | None = None) -> list[Span]:
        """Spans, optionally filtered by operation name."""
        if operation is None:
            return list(self.spans)
        return [span for span in self.spans if span.operation == operation]

    def makespan(self, operation: str, call_index: int = 0) -> float:
        """Latest end minus earliest start across ranks for one call."""
        spans = [
            s for s in self.spans if s.operation == operation and s.call_index == call_index
        ]
        if not spans:
            raise ValueError(f"no spans recorded for {operation}[{call_index}]")
        return max(s.end for s in spans) - min(s.start for s in spans)

    def totals(self) -> dict[str, int]:
        """Aggregate substrate counters over every recorded span."""
        keys = ("copies", "bytes_copied", "reduce_ops", "puts", "mpi_sends", "interrupts", "yields")
        return {key: sum(getattr(span, key) for span in self.spans) for key in keys}

    def to_chrome_trace(self) -> list[dict]:
        """Spans as Chrome ``chrome://tracing`` / Perfetto JSON events.

        Load the dumped list (``json.dump``) in the browser's tracing UI:
        one row per rank, one complete event per collective call, with the
        substrate counters attached as event args.
        """
        events = []
        for span in self.spans:
            events.append(
                {
                    "name": f"{span.operation}[{span.call_index}]",
                    "cat": span.operation,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": span.rank,
                    "args": {
                        "copies": span.copies,
                        "bytes_copied": span.bytes_copied,
                        "reduce_ops": span.reduce_ops,
                        "puts": span.puts,
                        "mpi_sends": span.mpi_sends,
                        "interrupts": span.interrupts,
                        "yields": span.yields,
                    },
                }
            )
        return events

    # -- rendering -------------------------------------------------------------

    def timeline(
        self,
        operation: str | None = None,
        width: int = 72,
        max_lanes: int = 32,
    ) -> str:
        """ASCII gantt: one lane per rank, one block per active span."""
        spans = self.calls(operation)
        if not spans:
            return "(no spans recorded)"
        start = min(s.start for s in spans)
        end = max(s.end for s in spans)
        extent = max(end - start, 1e-12)
        ranks = sorted({s.rank for s in spans})[:max_lanes]
        operations = sorted({s.operation for s in spans})
        glyphs = assign_glyphs(operations)
        lines = [
            f"t = {start * 1e6:.1f} .. {end * 1e6:.1f} us "
            f"({extent * 1e6:.1f} us span, {len(spans)} spans)"
        ]
        for rank in ranks:
            lane = ["."] * width
            for span in spans:
                if span.rank != rank:
                    continue
                first = int((span.start - start) / extent * (width - 1))
                last = int((span.end - start) / extent * (width - 1))
                for column in range(first, max(last, first) + 1):
                    lane[column] = glyphs[span.operation]
            lines.append(f"rank {rank:>4} " + "".join(lane))
        if len(ranks) < len({s.rank for s in spans}):
            lines.append(f"... ({len({s.rank for s in spans}) - len(ranks)} more lanes)")
        lines.append("legend: " + "  ".join(f"{glyphs[op]}={op}" for op in operations))
        return "\n".join(lines)


class TracedStack:
    """Duck-typed collective stack recording spans into a Tracer."""

    def __init__(self, tracer: Tracer, stack: typing.Any) -> None:
        self._tracer = tracer
        self._stack = stack
        self.name = f"traced:{getattr(stack, 'name', type(stack).__name__)}"

    def _traced(
        self, operation: str, task: Task, call: typing.Callable[[], ProcessGenerator]
    ) -> ProcessGenerator:
        call_index = self._tracer._next_call(f"{operation}:{task.rank}")
        start = task.engine.now
        before = self._tracer._snapshot(task)
        yield from call()
        self._tracer._record(task, operation, call_index, start, before)

    def broadcast(self, task: Task, buffer, root: int = 0) -> ProcessGenerator:
        yield from self._traced(
            "broadcast", task, lambda: self._stack.broadcast(task, buffer, root)
        )

    def reduce(self, task: Task, src, dst=None, op=None, root: int = 0) -> ProcessGenerator:
        from repro.mpi.ops import SUM

        yield from self._traced(
            "reduce", task, lambda: self._stack.reduce(task, src, dst, op or SUM, root)
        )

    def allreduce(self, task: Task, src, dst, op=None) -> ProcessGenerator:
        from repro.mpi.ops import SUM

        yield from self._traced(
            "allreduce", task, lambda: self._stack.allreduce(task, src, dst, op or SUM)
        )

    def barrier(self, task: Task) -> ProcessGenerator:
        yield from self._traced("barrier", task, lambda: self._stack.barrier(task))
