"""Parallel grid executor: fan independent benchmark cells over cores.

Every paper figure, snapshot, regression gate, and ``tune`` race is a grid
of fully independent deterministic simulations — one fresh machine per
(operation, stack, size, nodes) cell (§3's measurement protocol).  This
module is the one shared way to run such a grid:

    results = run_grid(cells, worker, jobs=4)

``worker`` is applied to every cell; with ``jobs > 1`` the cells run in a
``multiprocessing`` pool of *spawned* workers, and with ``jobs == 1`` (the
default) the exact serial path runs in-process — no pool, no pickling, no
child interpreters.  Either way the returned list is in **cell order**, not
completion order, so a caller that serializes results sorted by cell key
produces byte-identical artifacts at any ``jobs`` setting.

Spawn-safety contract for workers:

* ``worker`` must be a module-level function (spawned children import it by
  qualified name; lambdas and closures will not pickle);
* cells and results must pickle (plain tuples/dicts/dataclasses);
* everything a cell's simulation depends on — including its RNG seed —
  must travel *inside* the cell, never through process-global state.
  Parent-process mutations (monkeypatches, caches) are invisible to
  spawned children by design; that isolation is what makes parallel runs
  reproduce serial ones.

``jobs=0`` means "all cores" (``os.cpu_count()``).  Worker exceptions
propagate to the caller in both modes.
"""

from __future__ import annotations

import multiprocessing
import os
import typing

from repro.errors import ConfigurationError

__all__ = ["resolve_jobs", "run_grid"]

Cell = typing.TypeVar("Cell")
Result = typing.TypeVar("Result")

#: Progress callback: (cell, completed count, total cells).
ProgressFn = typing.Callable[[typing.Any, int, int], None]


def resolve_jobs(jobs: int, cells: int | None = None) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``0`` resolves to ``os.cpu_count()``; negatives are rejected; the result
    is clamped to the number of cells (a pool of idle workers costs spawn
    time for nothing).
    """
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if cells is not None:
        jobs = min(jobs, max(1, cells))
    return jobs


def _invoke(payload: tuple[int, typing.Callable, typing.Any]) -> tuple[int, typing.Any]:
    """Pool shim: run one indexed cell in a child, return (index, result)."""
    index, worker, cell = payload
    return index, worker(cell)


def run_grid(
    cells: typing.Iterable[Cell],
    worker: typing.Callable[[Cell], Result],
    jobs: int = 1,
    progress: ProgressFn | None = None,
) -> list[Result]:
    """Apply ``worker`` to every cell, results in deterministic cell order.

    ``jobs=1`` is the exact serial path (in-process, no multiprocessing
    machinery touched); ``jobs>1`` fans cells out over a spawn pool;
    ``jobs=0`` uses every core.  ``progress`` (if given) is called with
    ``(cell, completed, total)`` as each cell finishes — in cell order when
    serial, in completion order when parallel.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs, len(cells))
    if not cells:
        return []
    if jobs == 1:
        results: list[Result] = []
        for done, cell in enumerate(cells, start=1):
            results.append(worker(cell))
            if progress is not None:
                progress(cell, done, len(cells))
        return results

    # Spawned (not forked) children: every worker re-imports its modules
    # from scratch, so a cell's outcome is a pure function of the cell —
    # the property the byte-identity guarantee rests on.
    context = multiprocessing.get_context("spawn")
    slots: list[Result | None] = [None] * len(cells)
    payloads = [(index, worker, cell) for index, cell in enumerate(cells)]
    done = 0
    with context.Pool(processes=jobs) as pool:
        for index, value in pool.imap_unordered(_invoke, payloads):
            slots[index] = value
            done += 1
            if progress is not None:
                progress(cells[index], done, len(cells))
    return typing.cast("list[Result]", slots)
