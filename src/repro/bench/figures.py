"""ASCII renditions of the paper's figures.

The paper plots its evaluation as log-log / log-linear charts; this module
draws the same series as terminal scatter plots so a reproduction run can be
eyeballed against the paper without any plotting dependency.  Used by
``python -m repro figures``.
"""

from __future__ import annotations

import math
import typing

__all__ = ["ascii_chart", "calibration_scatter", "Series"]

#: One plotted curve: a label, a glyph, and (x, y) points.
Series = tuple[str, str, list[tuple[float, float]]]


def _log_position(value: float, low: float, high: float, extent: int) -> int:
    if value <= 0 or low <= 0:
        raise ValueError("log-scale values must be positive")
    span = math.log10(high) - math.log10(low)
    if span == 0:
        return 0
    fraction = (math.log10(value) - math.log10(low)) / span
    return round(fraction * (extent - 1))


def _linear_position(value: float, low: float, high: float, extent: int) -> int:
    span = high - low
    if span == 0:
        return 0
    return round((value - low) / span * (extent - 1))


def ascii_chart(
    title: str,
    series: typing.Sequence[Series],
    width: int = 68,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "bytes",
    y_label: str = "us",
) -> str:
    """Render curves as an ASCII chart (log axes by default, like Figs 6-8)."""
    points = [point for _label, _glyph, data in series for point in data]
    if not points:
        return f"{title}\n(no data)"
    x_low = min(x for x, _y in points)
    x_high = max(x for x, _y in points)
    y_low = min(y for _x, y in points)
    y_high = max(y for _x, y in points)
    x_place = _log_position if log_x else _linear_position
    y_place = _log_position if log_y else _linear_position

    grid = [[" "] * width for _ in range(height)]
    for _label, glyph, data in series:
        for x, y in data:
            column = x_place(x, x_low, x_high, width)
            row = height - 1 - y_place(y, y_low, y_high, height)
            grid[row][column] = glyph

    def fmt(value: float) -> str:
        if value >= 1e6:
            return f"{value / 1e6:.3g}M"
        if value >= 1e3:
            return f"{value / 1e3:.3g}K"
        return f"{value:.3g}"

    lines = [title]
    top_label = f"{fmt(y_high)} {y_label}"
    bottom_label = f"{fmt(y_low)} {y_label}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_axis = f"{fmt(x_low)} {x_label}".ljust(width // 2) + f"{fmt(x_high)} {x_label}".rjust(
        width // 2
    )
    lines.append(" " * (margin + 1) + x_axis)
    legend = "   ".join(f"{glyph}={label}" for label, glyph, _data in series)
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


#: Scatter glyph per operation (falls back to the op's first letter).
_SCATTER_GLYPHS = {"allgather": "g", "allreduce": "a", "broadcast": "b", "reduce": "r"}


def calibration_scatter(document: typing.Mapping[str, typing.Any]) -> str:
    """Predicted-vs-measured scatter from a ``repro calibrate`` report.

    Every measured (variant, size, nodes) candidate becomes one point —
    measured latency on the x axis, the cost hook's analytic prediction on
    the y axis — glyphed per operation, with the ``predicted = measured``
    diagonal dotted in for reference.  Points above the diagonal are
    overpredictions; the vertical spread is exactly the model error the
    report's ``model_error`` section quantifies per term.
    """
    by_op: dict[str, list[tuple[float, float]]] = {}
    for cell in document["cells"]:
        for entry in cell["variants"].values():
            measured = entry["measured_us"]
            predicted = entry["predicted_us"]
            if measured is None or measured <= 0 or predicted <= 0:
                continue
            by_op.setdefault(cell["operation"], []).append((measured, predicted))
    points = [value for data in by_op.values() for point in data for value in point]
    if not points:
        return "calibration scatter: no measured cells"
    low, high = min(points), max(points)
    steps = 24
    if high > low:
        ratio = (high / low) ** (1 / (steps - 1))
        diagonal = [(low * ratio**i,) * 2 for i in range(steps)]
    else:
        diagonal = [(low, low)]
    series: list[Series] = [("predicted=measured", ".", diagonal)]
    series += [
        (op, _SCATTER_GLYPHS.get(op, op[:1]), data)
        for op, data in sorted(by_op.items())
    ]
    return ascii_chart(
        f"predicted vs measured latency [{document.get('label', 'calibration')}]",
        series,
        x_label="measured us",
        y_label="predicted us",
    )
