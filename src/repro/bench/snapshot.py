"""Schema-versioned benchmark telemetry snapshots (``BENCH_<label>.json``).

One snapshot captures one run of the benchmark grid as a machine-readable
artifact: for every (operation, stack, size, nodes) cell it records

* the simulated latency (the number the paper's figures plot),
* the obs metrics summary — copy counts, puts issued, flag spins, counter
  waits — from the cell's own fresh machine, and
* the critical-path per-phase breakdown of the timed window, so a later
  regression can be *attributed* ("+38% on internode reduce 64 KB,
  localized to counter-wait") instead of merely detected, and
* the wait-state breakdown (``state|context|resource -> us``, see
  :mod:`repro.obs.waits`), so that attribution can go one level deeper and
  name the *cause* — "+340 us of bandwidth-contention on ``bus[0]`` during
  ``ring-step``".

Cells are emitted sorted by ``(operation, stack, nbytes, nodes)`` and every
map inside a cell is key-sorted, so two runs of an identical tree serialize
byte-identically: a snapshot diff is a measurement diff.

The default grid is the *quick bench grid* — the figure quick grid capped at
1 MB, because an 8 MB cell costs ~1 wall-minute each and a perf gate that
takes half an hour never gets run.  ``REPRO_BENCH_FULL=1`` widens to the
full paper grid, 8 MB included.
"""

from __future__ import annotations

import json
import typing
import zlib

from repro.bench.export import bench_identity, identity_fingerprint
from repro.bench.pool import run_grid
from repro.bench.runner import OPERATIONS, build, looped_program, operation_body
from repro.bench.sweeps import MB, full_grid, message_sizes, processor_configs
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec
from repro.obs.critical import critical_path
from repro.obs.waits import classify_waits

__all__ = [
    "SCHEMA_VERSION",
    "SNAPSHOT_KIND",
    "bench_sizes",
    "bench_nodes",
    "cell_key",
    "cell_seed",
    "capture_cell",
    "collect_snapshot",
    "write_snapshot",
    "load_snapshot",
]

#: Bump on any incompatible change to the snapshot document layout.
SCHEMA_VERSION = 1

#: Document marker, so a stray JSON file is rejected with a clear error.
SNAPSHOT_KIND = "repro-bench-snapshot"

#: Cap for the quick gate grid: 8 MB cells cost ~1 wall-minute each.
_QUICK_SIZE_CAP = MB


def bench_sizes() -> list[int]:
    """Message sizes of the snapshot grid (quick: figure grid capped at 1 MB)."""
    sizes = message_sizes()
    if full_grid():
        return sizes
    return [size for size in sizes if size <= _QUICK_SIZE_CAP]


def bench_nodes() -> list[int]:
    """Node counts of the snapshot grid (same axis as the figures)."""
    return processor_configs()


def cell_key(cell: dict) -> tuple:
    """The identity of one cell: (operation, stack, nbytes, nodes)."""
    return (cell["operation"], cell["stack"], cell["nbytes"], cell["nodes"])


def cell_seed(operation: str, stack: str, nbytes: int, nodes: int) -> int:
    """Deterministic per-cell machine RNG seed.

    A pure function of the cell key (CRC32, stable across interpreters and
    processes — unlike ``hash()``), so serial and parallel grid runs seed
    every cell's machine identically, and stochastic cost features (daemon
    noise) draw independent streams per cell instead of sharing seed 0.
    """
    return zlib.crc32(f"{operation}:{stack}:{nbytes}:{nodes}".encode())


def capture_cell(
    stack: str,
    operation: str,
    nbytes: int = 0,
    nodes: int = 16,
    tasks_per_node: int = 16,
    repeats: int | None = None,
    warmup: int = 1,
    seed: int = 0,
) -> dict:
    """Measure one grid cell on a fresh machine, with full telemetry.

    Mirrors :func:`~repro.bench.runner.time_operation` (same bodies, same
    warmup-then-timed launches) but keeps the machine's observability: the
    recorder is cleared after warmup so the critical path partitions exactly
    the timed window, while the metrics registry keeps machine-lifetime
    totals (deterministic either way — the simulator has no noise).
    """
    if repeats is None:
        repeats = 2 if nbytes >= MB else 3
    spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks_per_node)
    machine, collectives = build(stack, spec, seed=seed)
    body = operation_body(machine, collectives, operation, nbytes)
    if warmup:
        machine.launch(looped_program(body, warmup))
        machine.obs.recorder.clear()
    result = machine.launch(looped_program(body, repeats))

    cell: dict[str, typing.Any] = {
        "operation": operation,
        "stack": stack,
        "nbytes": nbytes,
        "nodes": nodes,
        "total_tasks": spec.total_tasks,
        "repeats": repeats,
        "seed": seed,
        "microseconds": result.elapsed / repeats * 1e6,
        "metrics": machine.obs.metrics.summary(),
    }
    if machine.obs.recorder.spans:
        path = critical_path(
            machine.obs.recorder, start=result.start_time, end=result.end_time
        )
        cell["critical_path"] = path.to_dict()
        waits = classify_waits(
            machine, start=result.start_time, end=result.end_time, critical=path
        )
        cell["wait_states"] = waits.summary_us()
    else:
        # A machine that recorded no spans at all still gates on latency.
        cell["critical_path"] = None
        cell["wait_states"] = {}
    return cell


def _capture_worker(spec: tuple) -> dict:
    """Spawn-safe worker: one grid cell from one self-contained spec tuple."""
    stack, operation, nbytes, nodes, tasks_per_node, seed = spec
    return capture_cell(
        stack, operation, nbytes, nodes, tasks_per_node, seed=seed
    )


def collect_snapshot(
    label: str = "head",
    operations: typing.Sequence[str] = OPERATIONS,
    stacks: typing.Sequence[str] = ("srm", "ibm", "mpich"),
    tasks_per_node: int = 16,
    progress: typing.Callable[[str], None] | None = None,
    jobs: int = 1,
) -> dict:
    """Run the snapshot grid and assemble one snapshot document.

    ``jobs`` fans the (fully independent) cells out over a worker pool; the
    document — cells, seeds, serialization — is byte-identical at every
    ``jobs`` setting because each cell travels with its own seed and the
    result list comes back in deterministic cell order.
    """
    for operation in operations:
        if operation not in OPERATIONS:
            raise ConfigurationError(f"unknown operation {operation!r}")
    sizes = bench_sizes()
    nodes_axis = bench_nodes()
    specs: list[tuple] = []
    for operation in sorted(operations):
        cell_sizes = [0] if operation == "barrier" else sizes
        for stack in sorted(stacks):
            for nbytes in cell_sizes:
                for nodes in nodes_axis:
                    specs.append(
                        (
                            stack,
                            operation,
                            nbytes,
                            nodes,
                            tasks_per_node,
                            cell_seed(operation, stack, nbytes, nodes),
                        )
                    )
    pool_progress = None
    if progress is not None:

        def pool_progress(spec: tuple, done: int, total: int) -> None:
            stack, operation, nbytes, nodes = spec[:4]
            progress(f"{operation} {stack} {nbytes}B x{nodes} nodes")

    cells = run_grid(specs, _capture_worker, jobs=jobs, progress=pool_progress)
    cells.sort(key=cell_key)
    identity = bench_identity(tasks_per_node=tasks_per_node)
    return {
        "kind": SNAPSHOT_KIND,
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "identity": identity,
        "fingerprint": identity_fingerprint(identity),
        "grid": {
            "sizes": sizes,
            "nodes": nodes_axis,
            "operations": sorted(operations),
            "stacks": sorted(stacks),
            "full": full_grid(),
        },
        "cells": cells,
    }


def write_snapshot(path: str, snapshot: dict) -> None:
    """Serialize a snapshot ('-' writes to stdout)."""
    text = json.dumps(snapshot, indent=1, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def load_snapshot(path: str) -> dict:
    """Load and structurally validate a snapshot document."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or snapshot.get("kind") != SNAPSHOT_KIND:
        raise ConfigurationError(f"{path} is not a {SNAPSHOT_KIND} document")
    for field in ("schema_version", "label", "identity", "cells"):
        if field not in snapshot:
            raise ConfigurationError(f"{path} is missing snapshot field {field!r}")
    return snapshot
