"""Plain-text series/table output mirroring the paper's figures.

Benchmarks print the same rows the paper plots — one line per message size,
one column per processor count or per stack — so a run of
``pytest benchmarks/ --benchmark-only -s`` reads like the evaluation section.
"""

from __future__ import annotations

import typing

__all__ = ["format_bytes", "format_us", "table", "print_table"]


def format_bytes(nbytes: int) -> str:
    """Human-readable byte count (8B, 4KB, 8MB)."""
    if nbytes >= 1024 * 1024 and nbytes % (1024 * 1024) == 0:
        return f"{nbytes // (1024 * 1024)}MB"
    if nbytes >= 1024 and nbytes % 1024 == 0:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


def format_us(seconds: float) -> str:
    """Microseconds with sensible precision."""
    us = seconds * 1e6
    if us >= 10000:
        return f"{us:,.0f}"
    if us >= 100:
        return f"{us:.1f}"
    return f"{us:.2f}"


def table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
) -> str:
    """Fixed-width table as a string."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
) -> None:
    """Print a titled table (benchmarks call this under ``-s``)."""
    print(f"\n== {title} ==")
    print(table(headers, rows))
