"""Benchmark harness: stack builders, timed runs, sweep grids, reporting,
the parallel grid executor (``repro.bench.pool``), telemetry snapshots
(``repro.bench.snapshot``), the perf regression gate (``repro.bench.regress``),
figure-shape assertions (``repro.bench.shapes``), and the kernel wall-clock
self-benchmark (``repro.bench.selfbench``)."""

from repro.bench.pool import resolve_jobs, run_grid
from repro.bench.report import format_bytes, format_us, print_table, table
from repro.bench.runner import OPERATIONS, STACKS, Measurement, build, time_operation
from repro.bench.sweeps import (
    clear_cache,
    full_grid,
    measure,
    message_sizes,
    processor_configs,
    ratio_percent,
    small_message_sizes,
    sweep,
    warm_cache,
)

__all__ = [
    "STACKS",
    "OPERATIONS",
    "Measurement",
    "build",
    "time_operation",
    "measure",
    "sweep",
    "ratio_percent",
    "message_sizes",
    "small_message_sizes",
    "processor_configs",
    "full_grid",
    "clear_cache",
    "warm_cache",
    "run_grid",
    "resolve_jobs",
    "format_bytes",
    "format_us",
    "table",
    "print_table",
]
