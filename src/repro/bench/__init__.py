"""Benchmark harness: stack builders, timed runs, sweep grids, reporting."""

from repro.bench.report import format_bytes, format_us, print_table, table
from repro.bench.runner import STACKS, Measurement, build, time_operation
from repro.bench.sweeps import (
    clear_cache,
    full_grid,
    measure,
    message_sizes,
    processor_configs,
    ratio_percent,
    small_message_sizes,
    sweep,
)

__all__ = [
    "STACKS",
    "Measurement",
    "build",
    "time_operation",
    "measure",
    "sweep",
    "ratio_percent",
    "message_sizes",
    "small_message_sizes",
    "processor_configs",
    "full_grid",
    "clear_cache",
    "format_bytes",
    "format_us",
    "table",
    "print_table",
]
