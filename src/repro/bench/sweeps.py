"""Sweep grids and memoized measurements for the paper's figures.

The paper's evaluation grid (§3): message sizes 8 B – 8 MB on log scale,
processor counts 16–256 at 16 tasks per node.  The default grid here is a
subsample that keeps ``pytest benchmarks/`` quick; set ``REPRO_BENCH_FULL=1``
for the full paper grid.

Measurements are memoized per (stack, operation, size, nodes) because the
figure benchmarks overlap heavily (Fig. 6 and Fig. 9 share every broadcast
point).
"""

from __future__ import annotations

import os
import typing

from repro.bench.runner import Measurement, build, time_operation
from repro.machine import ClusterSpec

__all__ = [
    "full_grid",
    "message_sizes",
    "small_message_sizes",
    "processor_configs",
    "measure",
    "ratio_percent",
    "clear_cache",
    "warm_cache",
]

KB = 1024
MB = 1024 * 1024

_FULL_SIZES = [8, 32, 128, 512, 2 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 256 * KB, MB, 4 * MB, 8 * MB]
_QUICK_SIZES = [8, 512, 8 * KB, 64 * KB, MB, 8 * MB]
_FULL_SMALL = [8, 32, 128, 512, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]
_QUICK_SMALL = [8, 512, 4 * KB, 16 * KB, 64 * KB]
_FULL_CONFIGS = [1, 2, 4, 8, 16]  # nodes, at 16 tasks each -> P = 16..256
_QUICK_CONFIGS = [1, 4, 16]


def full_grid() -> bool:
    """True when the full paper grid was requested via REPRO_BENCH_FULL."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def message_sizes() -> list[int]:
    """The 8 B – 8 MB sweep of Figures 6–11."""
    return list(_FULL_SIZES if full_grid() else _QUICK_SIZES)


def small_message_sizes() -> list[int]:
    """The <= 64 KB sub-range of the Figures 6–8 right panels."""
    return list(_FULL_SMALL if full_grid() else _QUICK_SMALL)


def processor_configs() -> list[int]:
    """Node counts at 16 tasks/node (P = 16 ... 256)."""
    return list(_FULL_CONFIGS if full_grid() else _QUICK_CONFIGS)


_CACHE: dict[tuple, Measurement] = {}


def clear_cache() -> None:
    """Drop memoized measurements (used by tests)."""
    _CACHE.clear()


def _default_repeats(nbytes: int) -> int:
    """Timed calls per point: big cells are slow, two repeats suffice."""
    return 2 if nbytes >= MB else 3


def measure(
    stack: str,
    operation: str,
    nbytes: int = 0,
    nodes: int = 16,
    tasks_per_node: int = 16,
    repeats: int | None = None,
) -> Measurement:
    """One memoized data point on the paper's standard cluster shape."""
    if repeats is None:
        repeats = _default_repeats(nbytes)
    key = (stack, operation, nbytes, nodes, tasks_per_node, repeats)
    if key not in _CACHE:
        spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks_per_node)
        machine, collectives = build(stack, spec)
        _CACHE[key] = time_operation(
            machine, collectives, operation, nbytes, repeats=repeats, warmup=1
        )
    return _CACHE[key]


def _measure_worker(spec: tuple) -> Measurement:
    """Spawn-safe worker: one sweep point from a self-contained spec tuple."""
    stack, operation, nbytes, nodes, tasks_per_node, repeats = spec
    return measure(stack, operation, nbytes, nodes, tasks_per_node, repeats)


def warm_cache(
    specs: typing.Iterable[tuple],
    jobs: int = 1,
    progress: typing.Callable[[typing.Any, int, int], None] | None = None,
) -> int:
    """Measure many grid points (possibly in parallel) into the memo cache.

    ``specs`` are ``(stack, operation, nbytes, nodes[, tasks_per_node
    [, repeats]])`` tuples — the same arguments :func:`measure` takes.
    Already-cached and duplicate points are skipped; the rest fan out over
    :func:`repro.bench.pool.run_grid` and land in the cache, so subsequent
    serial :func:`measure` calls (the figure renderers, the export loops)
    are cache hits.  Returns the number of points actually measured.

    Results are identical to serial ``measure`` calls: each point runs on a
    fresh machine either way, so only wall-clock changes with ``jobs``.
    """
    from repro.bench.pool import run_grid

    pending: list[tuple[tuple, tuple]] = []
    seen: set[tuple] = set()
    for spec in specs:
        stack, operation, nbytes, nodes = spec[:4]
        tasks_per_node = spec[4] if len(spec) > 4 else 16
        repeats = spec[5] if len(spec) > 5 else None
        if repeats is None:
            repeats = _default_repeats(nbytes)
        key = (stack, operation, nbytes, nodes, tasks_per_node, repeats)
        if key in seen or key in _CACHE:
            continue
        seen.add(key)
        pending.append((key, key))  # a fully-resolved key doubles as the spec
    measurements = run_grid(
        [spec for _key, spec in pending], _measure_worker, jobs=jobs,
        progress=progress,
    )
    for (key, _spec), measurement in zip(pending, measurements):
        _CACHE[key] = measurement
    return len(pending)


def ratio_percent(numerator: Measurement, denominator: Measurement) -> float:
    """The paper's comparison metric: T_a / T_b * 100% (lower = faster)."""
    return 100.0 * numerator.seconds / denominator.seconds


def sweep(
    stack: str,
    operation: str,
    sizes: typing.Iterable[int],
    nodes: int,
) -> list[Measurement]:
    """Measure ``operation`` across ``sizes`` on one cluster shape."""
    return [measure(stack, operation, nbytes, nodes) for nbytes in sizes]
