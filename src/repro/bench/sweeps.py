"""Sweep grids and memoized measurements for the paper's figures.

The paper's evaluation grid (§3): message sizes 8 B – 8 MB on log scale,
processor counts 16–256 at 16 tasks per node.  The default grid here is a
subsample that keeps ``pytest benchmarks/`` quick; set ``REPRO_BENCH_FULL=1``
for the full paper grid.

Measurements are memoized per (stack, operation, size, nodes) because the
figure benchmarks overlap heavily (Fig. 6 and Fig. 9 share every broadcast
point).
"""

from __future__ import annotations

import os
import typing

from repro.bench.runner import Measurement, build, time_operation
from repro.machine import ClusterSpec

__all__ = [
    "full_grid",
    "message_sizes",
    "small_message_sizes",
    "processor_configs",
    "measure",
    "ratio_percent",
    "clear_cache",
]

KB = 1024
MB = 1024 * 1024

_FULL_SIZES = [8, 32, 128, 512, 2 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 256 * KB, MB, 4 * MB, 8 * MB]
_QUICK_SIZES = [8, 512, 8 * KB, 64 * KB, MB, 8 * MB]
_FULL_SMALL = [8, 32, 128, 512, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]
_QUICK_SMALL = [8, 512, 4 * KB, 16 * KB, 64 * KB]
_FULL_CONFIGS = [1, 2, 4, 8, 16]  # nodes, at 16 tasks each -> P = 16..256
_QUICK_CONFIGS = [1, 4, 16]


def full_grid() -> bool:
    """True when the full paper grid was requested via REPRO_BENCH_FULL."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def message_sizes() -> list[int]:
    """The 8 B – 8 MB sweep of Figures 6–11."""
    return list(_FULL_SIZES if full_grid() else _QUICK_SIZES)


def small_message_sizes() -> list[int]:
    """The <= 64 KB sub-range of the Figures 6–8 right panels."""
    return list(_FULL_SMALL if full_grid() else _QUICK_SMALL)


def processor_configs() -> list[int]:
    """Node counts at 16 tasks/node (P = 16 ... 256)."""
    return list(_FULL_CONFIGS if full_grid() else _QUICK_CONFIGS)


_CACHE: dict[tuple, Measurement] = {}


def clear_cache() -> None:
    """Drop memoized measurements (used by tests)."""
    _CACHE.clear()


def measure(
    stack: str,
    operation: str,
    nbytes: int = 0,
    nodes: int = 16,
    tasks_per_node: int = 16,
    repeats: int | None = None,
) -> Measurement:
    """One memoized data point on the paper's standard cluster shape."""
    if repeats is None:
        repeats = 2 if nbytes >= MB else 3
    key = (stack, operation, nbytes, nodes, tasks_per_node, repeats)
    if key not in _CACHE:
        spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks_per_node)
        machine, collectives = build(stack, spec)
        _CACHE[key] = time_operation(
            machine, collectives, operation, nbytes, repeats=repeats, warmup=1
        )
    return _CACHE[key]


def ratio_percent(numerator: Measurement, denominator: Measurement) -> float:
    """The paper's comparison metric: T_a / T_b * 100% (lower = faster)."""
    return 100.0 * numerator.seconds / denominator.seconds


def sweep(
    stack: str,
    operation: str,
    sizes: typing.Iterable[int],
    nodes: int,
) -> list[Measurement]:
    """Measure ``operation`` across ``sizes`` on one cluster shape."""
    return [measure(stack, operation, nbytes, nodes) for nbytes in sizes]
