"""Kernel wall-clock self-benchmark: simulator events per second.

Every simulated microsecond this project reports is produced by
:class:`~repro.sim.engine.Engine` popping events off a heap, so the
kernel's *wall-clock* throughput is the single multiplier on every figure,
snapshot, regression gate, and ``tune`` race.  This module measures it —
``python -m repro bench --self`` — so events/second becomes a tracked
number next to the latency snapshots instead of folklore.

The workload is synthetic but mix-faithful: mostly bare Timeouts (the
zero-callback fast lane) and single-callback process resumptions (the
``yield timeout`` ping of every protocol spin loop), plus a sprinkling of
``AllOf``/``AnyOf`` conditions (barrier joins, first-of waits).  It runs a
few times and reports the best run — wall-clock benchmarks are noisy and
the *capability* is the ceiling, not the average.

The resulting document deliberately does **not** live inside a bench
snapshot: snapshots are byte-stable measurement artifacts, while
events/second varies with the host.  It is written as a sibling JSON
(``kind: "repro-kernel-selfbench"``) and uploaded as its own CI artifact.

Schema v2 adds a **persistent-replay** scenario: the per-start *setup* cost
(validate + plan lookup + dispatch + window reservation + generator
creation) of N repeated small broadcasts issued as N independent blocking
calls versus N ``start()``\\ s of one persistent plan — the amortization the
request layer exists to provide, measured on the wall clock rather than
asserted.  Simulated time is untouched: only the Python-side setup path is
timed, no engine runs.

Schema v3 adds the **compiled-replay** scenario: full persistent-plan
windows driven end to end with compiled-schedule replay
(:mod:`repro.core.replay`) on versus off.  Unlike the setup-only scenario
above, this one runs the engine: the slow path re-drives every process and
generator per window; the replay path applies the recorded trace with the
vectorized kernel.  The report carries per-window buffer digests from both
paths so CI can fail on any replay-vs-slow-path drift, and the effective
events/second (recorded schedule events delivered per wall-clock second),
which the tentpole requires to be >= 10x the slow path.
"""

from __future__ import annotations

import hashlib
import time
import typing

from repro.sim import Engine

__all__ = [
    "SELFBENCH_KIND",
    "SELFBENCH_SCHEMA_VERSION",
    "kernel_selfbench",
    "persistent_replay_selfbench",
    "compiled_replay_selfbench",
]

SELFBENCH_KIND = "repro-kernel-selfbench"
SELFBENCH_SCHEMA_VERSION = 3


def _workload(engine: Engine, width: int, rounds: int) -> None:
    """Seed one engine with the representative event mix (not yet run)."""

    def spinner(phase: int) -> typing.Generator:
        # The shape of every flag/counter spin loop: yield a short timeout,
        # wake up (one callback: the process resumption), repeat.
        for i in range(rounds):
            yield engine.timeout(1e-6 * ((i + phase) % 7 + 1))

    def joiner() -> typing.Generator:
        # Condition traffic: barrier-style AllOf joins and first-of AnyOf
        # waits over small timeout fans.
        for i in range(rounds // 8):
            yield engine.all_of([engine.timeout(1e-6 * (j + 1)) for j in range(4)])
            yield engine.any_of([engine.timeout(1e-6 * (j + 1)) for j in range(4)])

    for phase in range(width):
        engine.process(spinner(phase), name=f"spin{phase}")
    for _ in range(max(1, width // 8)):
        engine.process(joiner(), name="join")
    # Fire-and-forget timeouts: the callback-free fast lane.
    for i in range(width * rounds // 2):
        engine.timeout(1e-6 * (i % 11 + 1))


def kernel_selfbench(
    width: int = 32,
    rounds: int = 1500,
    repeats: int = 3,
    compiled_replay: bool = True,
) -> dict:
    """Measure engine throughput; returns the self-benchmark document.

    Each repeat builds a fresh engine, seeds the synthetic workload, and
    drains it while timing with ``time.perf_counter``.  ``events`` is the
    engine's own processed-event count (identical across repeats — the
    workload is deterministic), ``events_per_second`` the best repeat.
    ``compiled_replay=False`` (the CLI's ``--no-replay``) skips the
    compiled-replay scenario, storing ``None`` in its slot.
    """
    runs: list[dict] = []
    for _ in range(max(1, repeats)):
        engine = Engine()
        _workload(engine, width, rounds)
        started = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - started
        runs.append(
            {
                "events": engine.events_processed,
                "seconds": round(elapsed, 6),
                "events_per_second": round(engine.events_processed / elapsed, 1),
            }
        )
    best = max(runs, key=lambda run: run["events_per_second"])
    return {
        "kind": SELFBENCH_KIND,
        "schema_version": SELFBENCH_SCHEMA_VERSION,
        "workload": {"width": width, "rounds": rounds, "repeats": len(runs)},
        "events": best["events"],
        "events_per_second": best["events_per_second"],
        "runs": runs,
        "persistent_replay": persistent_replay_selfbench(),
        "compiled_replay": compiled_replay_selfbench() if compiled_replay else None,
    }


def persistent_replay_selfbench(
    starts: int = 2000, nbytes: int = 1024, repeats: int = 3
) -> dict:
    """Per-start setup cost: N blocking-call setups vs one replayed plan.

    Both paths run on a throwaway 2x2 machine and stop short of executing
    anything — what is timed is exactly the work a call pays *before* its
    first simulated event: the blocking path re-validates, re-looks-up the
    plan, re-dispatches, reserves, and builds the body generator per call;
    the persistent path does all of that once at plan init and then only
    reserves + builds per ``start()``.  Reports the best (lowest) ns/start
    of each path and their ratio, ``amortization_speedup``.
    """
    import numpy as np

    from repro.core import SRM
    from repro.core import requests as request_layer
    from repro.machine import ClusterSpec, Machine

    count = max(1, starts)
    blocking_ns = []
    replay_ns = []
    for _ in range(max(1, repeats)):
        machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
        srm = SRM(machine)
        task = machine.task(0)
        buffer = np.zeros(nbytes, dtype=np.uint8)
        # Resolve the decision cache once so the blocking loop measures the
        # steady state (cache hit per call), not the first-call dispatch.
        request_layer.start_broadcast(srm.ctx, task, buffer, 0, inline=True)

        started = time.perf_counter()
        for _ in range(count):
            request_layer.start_broadcast(srm.ctx, task, buffer, 0, inline=True)
        blocking_ns.append((time.perf_counter() - started) / count * 1e9)

        plan = srm.plan_broadcast(task, buffer, root=0)
        started = time.perf_counter()
        for _ in range(count):
            plan.prepare_start()
        replay_ns.append((time.perf_counter() - started) / count * 1e9)

    blocking_best = min(blocking_ns)
    replay_best = min(replay_ns)
    return {
        "starts": count,
        "nbytes": nbytes,
        "repeats": max(1, repeats),
        "blocking_ns_per_start": round(blocking_best, 1),
        "replay_ns_per_start": round(replay_best, 1),
        "amortization_speedup": round(blocking_best / replay_best, 2),
    }


def compiled_replay_selfbench(
    windows: int = 10,
    warmup: int = 6,
    digest_windows: int = 6,
    nbytes: int = 65536,
    repeats: int = 2,
) -> dict:
    """Full persistent-allreduce windows: compiled replay on vs off.

    The workload is a 4x4 cluster running persistent SUM allreduces of
    exactly ``small_protocol_max`` bytes — the event-densest point of the
    paper's protocol map (the pipelined reduce+broadcast pushes sixteen
    4 KB chunks through the shared buffers per window), which is where the
    slow path's per-event interpreter cost is most representative.  Each
    window rewrites one rank's contribution, starts every rank's persistent
    plan, and runs the engine to quiescence.  ``warmup`` windows populate
    the schedule cache (both slot parities plus the self-healing re-record)
    before timing starts, so what is measured is the steady state.  After
    the timed block, ``digest_windows`` more windows record per-window
    result digests — identical window indices on both paths, so the digest
    lists must match byte for byte (the CI drift gate).
    ``events_per_second_effective`` counts the *recorded schedule's* events
    delivered per wall-clock second: the replay path's wall time divided
    into the event count the slow path processes for the same windows.
    """
    import numpy as np

    from repro.core import SRM, SRMConfig
    from repro.machine import ClusterSpec, Machine
    from repro.mpi.ops import SUM

    count = nbytes // 8  # float64 elements

    def drive(replay: bool) -> dict:
        machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
        srm = SRM(machine, config=SRMConfig(compiled_replay=replay))
        ranks = list(range(16))
        sources = {rank: np.ones(count, dtype=np.float64) for rank in ranks}
        buffers = {rank: np.zeros(count, dtype=np.float64) for rank in ranks}
        plans = {
            rank: srm.plan_allreduce(
                machine.task(rank), sources[rank], buffers[rank], op=SUM
            )
            for rank in ranks
        }
        pattern = np.arange(count, dtype=np.float64)

        def window(index: int) -> None:
            sources[0][:] = (pattern + index) % 251.0
            for rank in ranks:
                plans[rank].start()
            machine.engine.run()

        for index in range(warmup):
            window(index)
        events_before = machine.engine.events_processed
        started = time.perf_counter()
        for index in range(windows):
            window(warmup + index)
        elapsed = time.perf_counter() - started
        events = machine.engine.events_processed - events_before
        digests = []
        for index in range(digest_windows):
            window(warmup + windows + index)
            digest = hashlib.blake2b(digest_size=16)
            for rank in ranks:
                digest.update(buffers[rank].tobytes())
            digests.append(digest.hexdigest())
        manager = machine.engine.trace
        return {
            "seconds": elapsed,
            "events": events,
            "digests": digests,
            "hits": getattr(manager, "hit_count", 0),
            "misses": getattr(manager, "miss_count", 0),
        }

    best_slow: dict | None = None
    best_replay: dict | None = None
    for _ in range(max(1, repeats)):
        slow = drive(replay=False)
        fast = drive(replay=True)
        if best_slow is None or slow["seconds"] < best_slow["seconds"]:
            best_slow = slow
        if best_replay is None or fast["seconds"] < best_replay["seconds"]:
            best_replay = fast
    assert best_slow is not None and best_replay is not None
    slow_rate = best_slow["events"] / best_slow["seconds"]
    # The replay path delivers the same recorded schedule; its effective
    # event rate is the schedule's event count over the replay wall time.
    effective_rate = best_slow["events"] / best_replay["seconds"]
    return {
        "windows": windows,
        "warmup": warmup,
        "digest_windows": digest_windows,
        "nbytes": nbytes,
        "repeats": max(1, repeats),
        "schedule_events_per_window": round(best_slow["events"] / windows, 1),
        "events_per_second_slow": round(slow_rate, 1),
        "events_per_second_effective": round(effective_rate, 1),
        "speedup": round(best_slow["seconds"] / best_replay["seconds"], 2),
        "replay_hits": best_replay["hits"],
        "replay_misses": best_replay["misses"],
        "digests_slow": best_slow["digests"],
        "digests_replay": best_replay["digests"],
        "cells_identical": best_slow["digests"] == best_replay["digests"],
    }
