"""Kernel wall-clock self-benchmark: simulator events per second.

Every simulated microsecond this project reports is produced by
:class:`~repro.sim.engine.Engine` popping events off a heap, so the
kernel's *wall-clock* throughput is the single multiplier on every figure,
snapshot, regression gate, and ``tune`` race.  This module measures it —
``python -m repro bench --self`` — so events/second becomes a tracked
number next to the latency snapshots instead of folklore.

The workload is synthetic but mix-faithful: mostly bare Timeouts (the
zero-callback fast lane) and single-callback process resumptions (the
``yield timeout`` ping of every protocol spin loop), plus a sprinkling of
``AllOf``/``AnyOf`` conditions (barrier joins, first-of waits).  It runs a
few times and reports the best run — wall-clock benchmarks are noisy and
the *capability* is the ceiling, not the average.

The resulting document deliberately does **not** live inside a bench
snapshot: snapshots are byte-stable measurement artifacts, while
events/second varies with the host.  It is written as a sibling JSON
(``kind: "repro-kernel-selfbench"``) and uploaded as its own CI artifact.

Schema v2 adds a **persistent-replay** scenario: the per-start *setup* cost
(validate + plan lookup + dispatch + window reservation + generator
creation) of N repeated small broadcasts issued as N independent blocking
calls versus N ``start()``\\ s of one persistent plan — the amortization the
request layer exists to provide, measured on the wall clock rather than
asserted.  Simulated time is untouched: only the Python-side setup path is
timed, no engine runs.
"""

from __future__ import annotations

import time
import typing

from repro.sim import Engine

__all__ = [
    "SELFBENCH_KIND",
    "SELFBENCH_SCHEMA_VERSION",
    "kernel_selfbench",
    "persistent_replay_selfbench",
]

SELFBENCH_KIND = "repro-kernel-selfbench"
SELFBENCH_SCHEMA_VERSION = 2


def _workload(engine: Engine, width: int, rounds: int) -> None:
    """Seed one engine with the representative event mix (not yet run)."""

    def spinner(phase: int) -> typing.Generator:
        # The shape of every flag/counter spin loop: yield a short timeout,
        # wake up (one callback: the process resumption), repeat.
        for i in range(rounds):
            yield engine.timeout(1e-6 * ((i + phase) % 7 + 1))

    def joiner() -> typing.Generator:
        # Condition traffic: barrier-style AllOf joins and first-of AnyOf
        # waits over small timeout fans.
        for i in range(rounds // 8):
            yield engine.all_of([engine.timeout(1e-6 * (j + 1)) for j in range(4)])
            yield engine.any_of([engine.timeout(1e-6 * (j + 1)) for j in range(4)])

    for phase in range(width):
        engine.process(spinner(phase), name=f"spin{phase}")
    for _ in range(max(1, width // 8)):
        engine.process(joiner(), name="join")
    # Fire-and-forget timeouts: the callback-free fast lane.
    for i in range(width * rounds // 2):
        engine.timeout(1e-6 * (i % 11 + 1))


def kernel_selfbench(width: int = 32, rounds: int = 1500, repeats: int = 3) -> dict:
    """Measure engine throughput; returns the self-benchmark document.

    Each repeat builds a fresh engine, seeds the synthetic workload, and
    drains it while timing with ``time.perf_counter``.  ``events`` is the
    engine's own processed-event count (identical across repeats — the
    workload is deterministic), ``events_per_second`` the best repeat.
    """
    runs: list[dict] = []
    for _ in range(max(1, repeats)):
        engine = Engine()
        _workload(engine, width, rounds)
        started = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - started
        runs.append(
            {
                "events": engine.events_processed,
                "seconds": round(elapsed, 6),
                "events_per_second": round(engine.events_processed / elapsed, 1),
            }
        )
    best = max(runs, key=lambda run: run["events_per_second"])
    return {
        "kind": SELFBENCH_KIND,
        "schema_version": SELFBENCH_SCHEMA_VERSION,
        "workload": {"width": width, "rounds": rounds, "repeats": len(runs)},
        "events": best["events"],
        "events_per_second": best["events_per_second"],
        "runs": runs,
        "persistent_replay": persistent_replay_selfbench(),
    }


def persistent_replay_selfbench(
    starts: int = 2000, nbytes: int = 1024, repeats: int = 3
) -> dict:
    """Per-start setup cost: N blocking-call setups vs one replayed plan.

    Both paths run on a throwaway 2x2 machine and stop short of executing
    anything — what is timed is exactly the work a call pays *before* its
    first simulated event: the blocking path re-validates, re-looks-up the
    plan, re-dispatches, reserves, and builds the body generator per call;
    the persistent path does all of that once at plan init and then only
    reserves + builds per ``start()``.  Reports the best (lowest) ns/start
    of each path and their ratio, ``amortization_speedup``.
    """
    import numpy as np

    from repro.core import SRM
    from repro.core import requests as request_layer
    from repro.machine import ClusterSpec, Machine

    count = max(1, starts)
    blocking_ns = []
    replay_ns = []
    for _ in range(max(1, repeats)):
        machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
        srm = SRM(machine)
        task = machine.task(0)
        buffer = np.zeros(nbytes, dtype=np.uint8)
        # Resolve the decision cache once so the blocking loop measures the
        # steady state (cache hit per call), not the first-call dispatch.
        request_layer.start_broadcast(srm.ctx, task, buffer, 0, inline=True)

        started = time.perf_counter()
        for _ in range(count):
            request_layer.start_broadcast(srm.ctx, task, buffer, 0, inline=True)
        blocking_ns.append((time.perf_counter() - started) / count * 1e9)

        plan = srm.plan_broadcast(task, buffer, root=0)
        started = time.perf_counter()
        for _ in range(count):
            plan.prepare_start()
        replay_ns.append((time.perf_counter() - started) / count * 1e9)

    blocking_best = min(blocking_ns)
    replay_best = min(replay_ns)
    return {
        "starts": count,
        "nbytes": nbytes,
        "repeats": max(1, repeats),
        "blocking_ns_per_start": round(blocking_best, 1),
        "replay_ns_per_start": round(replay_best, 1),
        "amortization_speedup": round(blocking_best / replay_best, 2),
    }
