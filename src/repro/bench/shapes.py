"""Executable figure-shape assertions, evaluated from a snapshot.

EXPERIMENTS.md argues that the accountable claims of this reproduction are
*shapes* — who wins, where the crossovers and protocol switches fall — not
absolute microseconds.  This module turns those prose claims into checks a
CI gate can run against any ``BENCH_*.json`` snapshot:

* ``monotone-in-size`` / ``monotone-in-procs`` — Figs. 6-8's log-log curves
  grow with message size and with processor count, for every stack;
* ``srm-wins-small`` — SRM at or under both MPI baselines for every size
  ≤ 64 KB at the largest P, on broadcast/reduce/allreduce (the headline of
  Figs. 6-8's right panels);
* ``srm-wins-barrier`` — Fig. 12: SRM fastest at every processor count;
* ``fig8-baseline-crossing`` — MPICH above IBM MPI for tiny allreduces but
  below it in the 4-16 KB band at the largest P (the visible crossing caused
  by IBM's recursive doubling paying rendezvous handshakes);
* ``broadcast-protocol-switch`` — the paper's §2.4 switch points are intact
  (64 KB small→large, 8 KB pipelining threshold) and the cost *per byte*
  falls from the latency-bound small regime through 64 KB to the streamed
  large protocol, i.e. each protocol earns its regime.

A slowdown that preserves all shapes is a calibration question; a shape
violation means the reproduction no longer shows what the paper showed —
the gate fails on either, but reports them differently.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.bench.report import format_bytes

__all__ = ["ShapeResult", "check_shapes", "format_shape_results", "SMALL_MAX"]

#: The paper's small-message band (and broadcast protocol switch): 64 KB.
SMALL_MAX = 64 * 1024

#: Slack for the monotonicity checks: simulated curves are deterministic,
#: but buffer-alternation effects allow a hair of non-monotone jitter.
_MONOTONE_SLACK = 0.02


@dataclass(frozen=True)
class ShapeResult:
    """One shape claim's verdict against one snapshot."""

    name: str
    ok: bool
    detail: str


class _Grid:
    """Index of snapshot cells: (operation, stack, nbytes, nodes) -> µs."""

    def __init__(self, snapshot: dict) -> None:
        self.cells: dict[tuple, float] = {}
        for cell in snapshot["cells"]:
            key = (cell["operation"], cell["stack"], cell["nbytes"], cell["nodes"])
            self.cells[key] = cell["microseconds"]
        self.operations = sorted({key[0] for key in self.cells})
        self.stacks = sorted({key[1] for key in self.cells})
        self.nodes = sorted({key[3] for key in self.cells})

    def us(self, operation: str, stack: str, nbytes: int, nodes: int) -> float | None:
        return self.cells.get((operation, stack, nbytes, nodes))

    def sizes(self, operation: str, stack: str, nodes: int) -> list[int]:
        return sorted(
            key[2]
            for key in self.cells
            if key[0] == operation and key[1] == stack and key[3] == nodes
        )


def check_shapes(snapshot: dict) -> list[ShapeResult]:
    """Every shape claim the snapshot's grid can support, evaluated."""
    grid = _Grid(snapshot)
    results = [
        _monotone_in_size(grid),
        _monotone_in_procs(grid),
        _srm_wins_small(grid),
        _srm_wins_barrier(grid),
        _fig8_crossing(grid),
        _broadcast_protocol_switch(grid, snapshot),
    ]
    return [result for result in results if result is not None]


def format_shape_results(results: typing.Sequence[ShapeResult]) -> str:
    lines = []
    for result in results:
        mark = "ok " if result.ok else "FAIL"
        lines.append(f"  [{mark}] {result.name}: {result.detail}")
    failed = sum(1 for result in results if not result.ok)
    lines.append(
        f"shapes: {len(results) - failed}/{len(results)} hold"
        + ("" if not failed else f" ({failed} violated)")
    )
    return "\n".join(lines)


def _monotone_in_size(grid: _Grid) -> ShapeResult:
    violations = []
    for operation in grid.operations:
        if operation == "barrier":
            continue
        for stack in grid.stacks:
            for nodes in grid.nodes:
                sizes = grid.sizes(operation, stack, nodes)
                for small, large in zip(sizes, sizes[1:]):
                    t_small = grid.us(operation, stack, small, nodes)
                    t_large = grid.us(operation, stack, large, nodes)
                    if t_large < t_small * (1 - _MONOTONE_SLACK):
                        violations.append(
                            f"{operation}/{stack} x{nodes}: "
                            f"{format_bytes(large)} ({t_large:.1f}us) < "
                            f"{format_bytes(small)} ({t_small:.1f}us)"
                        )
    return _verdict(
        "monotone-in-size", violations, "latency grows with message size everywhere"
    )


def _monotone_in_procs(grid: _Grid) -> ShapeResult:
    violations = []
    for operation in grid.operations:
        for stack in grid.stacks:
            sizes = {key[2] for key in grid.cells if key[0] == operation and key[1] == stack}
            for nbytes in sorted(sizes):
                for few, many in zip(grid.nodes, grid.nodes[1:]):
                    t_few = grid.us(operation, stack, nbytes, few)
                    t_many = grid.us(operation, stack, nbytes, many)
                    if t_few is None or t_many is None:
                        continue
                    if t_many < t_few * (1 - _MONOTONE_SLACK):
                        violations.append(
                            f"{operation}/{stack} {format_bytes(nbytes)}: "
                            f"x{many} nodes ({t_many:.1f}us) < x{few} ({t_few:.1f}us)"
                        )
    return _verdict(
        "monotone-in-procs", violations, "latency grows with processor count everywhere"
    )


def _srm_wins_small(grid: _Grid) -> ShapeResult | None:
    if "srm" not in grid.stacks:
        return None
    baselines = [stack for stack in grid.stacks if stack != "srm"]
    top = grid.nodes[-1]
    violations = []
    checked = 0
    for operation in ("allreduce", "broadcast", "reduce"):
        if operation not in grid.operations:
            continue
        for nbytes in grid.sizes(operation, "srm", top):
            if nbytes > SMALL_MAX:
                continue
            srm = grid.us(operation, "srm", nbytes, top)
            for baseline in baselines:
                other = grid.us(operation, baseline, nbytes, top)
                if other is None:
                    continue
                checked += 1
                if srm > other:
                    violations.append(
                        f"{operation} {format_bytes(nbytes)} x{top}: "
                        f"srm {srm:.1f}us > {baseline} {other:.1f}us"
                    )
    return _verdict(
        "srm-wins-small",
        violations,
        f"SRM <= both baselines at every size <= 64KB, x{top} nodes "
        f"({checked} comparisons)",
    )


def _srm_wins_barrier(grid: _Grid) -> ShapeResult | None:
    if "barrier" not in grid.operations or "srm" not in grid.stacks:
        return None
    violations = []
    for nodes in grid.nodes:
        srm = grid.us("barrier", "srm", 0, nodes)
        for baseline in grid.stacks:
            if baseline == "srm":
                continue
            other = grid.us("barrier", baseline, 0, nodes)
            if other is not None and srm is not None and srm >= other:
                violations.append(
                    f"x{nodes} nodes: srm {srm:.1f}us >= {baseline} {other:.1f}us"
                )
    return _verdict(
        "srm-wins-barrier", violations, "SRM barrier fastest at every node count"
    )


def _fig8_crossing(grid: _Grid) -> ShapeResult | None:
    if "ibm" not in grid.stacks or "mpich" not in grid.stacks:
        return None
    if "allreduce" not in grid.operations:
        return None
    top = grid.nodes[-1]
    sizes = grid.sizes("allreduce", "ibm", top)
    if not sizes:
        return None
    tiny = sizes[0]
    mid_band = [nbytes for nbytes in sizes if 4 * 1024 <= nbytes <= 16 * 1024]
    violations = []
    ibm_tiny = grid.us("allreduce", "ibm", tiny, top)
    mpich_tiny = grid.us("allreduce", "mpich", tiny, top)
    if mpich_tiny <= ibm_tiny:
        violations.append(
            f"{format_bytes(tiny)}: mpich {mpich_tiny:.1f}us <= ibm {ibm_tiny:.1f}us "
            f"(expected MPICH above IBM for tiny messages)"
        )
    if not mid_band:
        violations.append("grid has no 4-16KB cell to probe the crossing")
    for nbytes in mid_band:
        ibm_mid = grid.us("allreduce", "ibm", nbytes, top)
        mpich_mid = grid.us("allreduce", "mpich", nbytes, top)
        if mpich_mid >= ibm_mid:
            violations.append(
                f"{format_bytes(nbytes)}: mpich {mpich_mid:.1f}us >= ibm "
                f"{ibm_mid:.1f}us (expected the IBM curve above MPICH mid-band)"
            )
    return _verdict(
        "fig8-baseline-crossing",
        violations,
        f"MPICH above IBM at {format_bytes(tiny)}, below in the 4-16KB band, x{top} nodes",
    )


def _broadcast_protocol_switch(grid: _Grid, snapshot: dict) -> ShapeResult | None:
    if "broadcast" not in grid.operations or "srm" not in grid.stacks:
        return None
    violations = []
    config = snapshot.get("identity", {}).get("srm_config", {})
    if config.get("small_protocol_max") != SMALL_MAX:
        violations.append(
            f"small_protocol_max moved off the paper's 64KB: "
            f"{config.get('small_protocol_max')}"
        )
    if config.get("pipeline_min") != 8 * 1024:
        violations.append(
            f"pipeline_min moved off the paper's 8KB: {config.get('pipeline_min')}"
        )
    top = grid.nodes[-1]
    sizes = grid.sizes("broadcast", "srm", top)
    small = [nbytes for nbytes in sizes if nbytes <= 1024]
    large = [nbytes for nbytes in sizes if nbytes > SMALL_MAX]
    if small and SMALL_MAX in sizes:
        per_byte_small = grid.us("broadcast", "srm", small[-1], top) / small[-1]
        per_byte_switch = grid.us("broadcast", "srm", SMALL_MAX, top) / SMALL_MAX
        if per_byte_switch >= per_byte_small:
            violations.append(
                f"per-byte cost did not fall from {format_bytes(small[-1])} to 64KB "
                f"({per_byte_small:.4f} -> {per_byte_switch:.4f} us/B)"
            )
        if large:
            per_byte_large = grid.us("broadcast", "srm", large[-1], top) / large[-1]
            if per_byte_large >= per_byte_switch:
                violations.append(
                    f"streamed large protocol not cheaper per byte than the 64KB "
                    f"switch point ({per_byte_large:.4f} vs {per_byte_switch:.4f} us/B)"
                )
    return _verdict(
        "broadcast-protocol-switch",
        violations,
        "64KB/8KB switch points intact; per-byte cost falls into each regime",
    )


def _verdict(name: str, violations: list[str], ok_detail: str) -> ShapeResult:
    if violations:
        return ShapeResult(name, False, "; ".join(violations))
    return ShapeResult(name, True, ok_detail)
