"""``python -m repro tune`` — measure a :class:`TunedPolicy` decision table.

Barchet-Estefanel & Mounié's point (PAPERS.md): protocol switch points
should be *measured on the target machine*, not transplanted from the
paper's hardware.  The simulator makes that cheap — this module sweeps every
registered algorithm variant of every tunable collective over the bench grid
(same sizes and node counts as the snapshots), times each candidate with the
exact harness the figures use, and writes the per-cell winners as a
schema-versioned JSON decision table that
:class:`repro.core.dispatch.TunedPolicy` loads::

    python -m repro tune -o TUNED.json
    srm = SRM(machine, policy=TunedPolicy.load("TUNED.json"))

Candidates outside their default applicability envelope are probed through
the variant's ``tune_config`` hook (e.g. the exchange allreduce gets its
staging capacity raised to the probe size), so the sweep explores choices
the paper's thresholds would never make; candidates with no such hook that
stay inapplicable (the ring families on one node) are skipped.

The artifact reuses the ``bench.snapshot`` serialization discipline —
sorted keys, the same cost-model identity fingerprint — so a tuned table
records *which machine* it was measured on, and a later ``TunedPolicy``
user can detect a stale table by comparing fingerprints.

``--dry-run`` sweeps a two-size, one-node-count micro-grid, round-trips the
resulting document through ``TunedPolicy`` to prove it loads, and writes
nothing — the CI ``tune-check`` step runs exactly this.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.bench.export import bench_identity, identity_fingerprint
from repro.bench.pool import run_grid
from repro.bench.runner import OPERATIONS, looped_program, operation_body
from repro.bench.snapshot import bench_nodes, bench_sizes, write_snapshot
from repro.bench.sweeps import KB, full_grid
from repro.core import SRM, SRMConfig
from repro.core.dispatch import (
    TUNED_TABLE_KIND,
    TUNED_TABLE_SCHEMA_VERSION,
    FixedPolicy,
    SelectionEnv,
    TunedPolicy,
    variants_for,
)
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, CostModel, Machine

__all__ = ["TUNABLE_OPERATIONS", "tune_cell", "collect_table", "run_tune"]

#: Operations with more than one registered variant worth racing.  The
#: single-variant ops (scatter/gather/alltoall/scan/barrier) have nothing to
#: choose between; the tree families are structural (they change plan
#: caches, not per-size decisions) and stay policy-directed.
TUNABLE_OPERATIONS = ("allgather", "allreduce", "broadcast", "reduce")


def _allgather_body(machine: Machine, stack: SRM, nbytes: int) -> typing.Callable:
    """Per-task allgather body (the runner's OPERATIONS lacks allgather).

    ``nbytes`` is the *total* concatenated result — the quantity the
    dispatch layer selects on — split into one equal block per task.
    """
    total = machine.spec.total_tasks
    block = max(1, nbytes // total)
    sends = {rank: np.full(block, rank % 251, dtype=np.uint8) for rank in range(total)}
    recvs = {rank: np.zeros(block * total, dtype=np.uint8) for rank in range(total)}

    def body(task, _iteration):
        yield from stack.allgather(task, sends[task.rank], recvs[task.rank])

    return body


def tune_cell(
    operation: str,
    variant_name: str,
    nbytes: int,
    nodes: int,
    tasks_per_node: int = 16,
    repeats: int = 2,
    warmup: int = 1,
    cost: CostModel | None = None,
) -> float | None:
    """Microseconds per call of one (op, variant, size, nodes) candidate.

    Returns ``None`` when the variant is structurally inapplicable at this
    cell even after its ``tune_config`` hook (e.g. ring families on one
    node).  Each candidate gets a fresh machine so capacity-evolved configs
    and persistent plan caches never leak between probes.
    """
    base_cost = cost if cost is not None else CostModel.ibm_sp_colony()
    entry = next(
        (v for v in variants_for(operation) if v.name == variant_name), None
    )
    if entry is None:
        raise ConfigurationError(f"unknown variant {operation}/{variant_name}")
    config = SRMConfig()
    if entry.tune_config is not None:
        config = entry.tune_config(config, nbytes)
    env = SelectionEnv(
        op=operation, nbytes=nbytes, nodes=nodes, ppn=tasks_per_node,
        config=config, cost=base_cost,
    )
    if not entry.applicable(env):
        return None

    spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks_per_node)
    machine = Machine(spec, cost=base_cost)
    stack = SRM(machine, config=config, policy=FixedPolicy({operation: variant_name}))
    if operation == "allgather":
        body = _allgather_body(machine, stack, nbytes)
    else:
        body = operation_body(machine, stack, operation, nbytes)
    if warmup:
        machine.launch(looped_program(body, warmup))
    result = machine.launch(looped_program(body, repeats))
    # The forced variant must actually have run — a dispatcher fallback here
    # would time the wrong algorithm and silently corrupt the table.
    if machine.obs.metrics.summary().get("dispatch.fallbacks", 0):
        return None
    return result.elapsed / repeats * 1e6


def _tune_worker(spec: tuple) -> float | None:
    """Spawn-safe worker: time one (op, variant, size, nodes) candidate."""
    operation, variant_name, nbytes, nodes, tasks_per_node, repeats = spec
    return tune_cell(
        operation, variant_name, nbytes, nodes,
        tasks_per_node=tasks_per_node, repeats=repeats,
    )


def collect_table(
    operations: typing.Sequence[str] = TUNABLE_OPERATIONS,
    sizes: typing.Sequence[int] | None = None,
    nodes_axis: typing.Sequence[int] | None = None,
    tasks_per_node: int = 16,
    repeats: int = 2,
    label: str = "tuned",
    progress: typing.Callable[[str], None] | None = None,
    jobs: int = 1,
) -> dict:
    """Sweep the grid and assemble one tuned-policy document.

    Every candidate probe runs on its own fresh machine, so the race is
    embarrassingly parallel: ``jobs`` fans the probes out over a worker
    pool and the resulting decision table is byte-identical at any ``jobs``
    setting (winners are decided from the same deterministic timings).
    """
    for operation in operations:
        if operation not in TUNABLE_OPERATIONS:
            raise ConfigurationError(
                f"operation {operation!r} is not tunable; "
                f"choose from {TUNABLE_OPERATIONS}"
            )
    if sizes is None:
        sizes = bench_sizes()
    if nodes_axis is None:
        nodes_axis = bench_nodes()

    probes: list[tuple] = []
    for operation in sorted(operations):
        for nodes in nodes_axis:
            for nbytes in sizes:
                for entry in variants_for(operation):
                    probes.append(
                        (operation, entry.name, nbytes, nodes, tasks_per_node, repeats)
                    )
    pool_progress = None
    if progress is not None:

        def pool_progress(spec: tuple, done: int, total: int) -> None:
            operation, variant_name, nbytes, nodes = spec[:4]
            progress(f"{operation}/{variant_name} {nbytes}B x{nodes} nodes")

    measured = run_grid(probes, _tune_worker, jobs=jobs, progress=pool_progress)
    micros_by_probe = {probe[:4]: micros for probe, micros in zip(probes, measured)}

    table: dict[str, dict[str, list]] = {}
    cells: list[dict] = []
    for operation in sorted(operations):
        rows_by_nodes: dict[str, list] = {}
        for nodes in nodes_axis:
            rows: list[list] = []
            for nbytes in sizes:
                timings: dict[str, float] = {}
                for entry in variants_for(operation):
                    micros = micros_by_probe[(operation, entry.name, nbytes, nodes)]
                    if micros is not None:
                        timings[entry.name] = micros
                if not timings:
                    continue
                winner = min(timings, key=lambda name: timings[name])
                rows.append([nbytes, winner, round(timings[winner], 3)])
                cells.append(
                    {
                        "operation": operation,
                        "nbytes": nbytes,
                        "nodes": nodes,
                        "winner": winner,
                        "microseconds": {
                            name: round(micros, 3)
                            for name, micros in sorted(timings.items())
                        },
                    }
                )
            if rows:
                rows_by_nodes[str(nodes)] = rows
        if rows_by_nodes:
            table[operation] = rows_by_nodes
    identity = bench_identity(tasks_per_node=tasks_per_node)
    return {
        "kind": TUNED_TABLE_KIND,
        "schema_version": TUNED_TABLE_SCHEMA_VERSION,
        "label": label,
        "identity": identity,
        "fingerprint": identity_fingerprint(identity),
        "grid": {
            "sizes": list(sizes),
            "nodes": list(nodes_axis),
            "operations": sorted(operations),
            "tasks_per_node": tasks_per_node,
            "full": full_grid(),
        },
        "table": table,
        "cells": cells,
    }


def run_tune(
    out: str = "TUNED.json",
    dry_run: bool = False,
    operations: typing.Sequence[str] = TUNABLE_OPERATIONS,
    label: str = "tuned",
    progress: typing.Callable[[str], None] | None = None,
    jobs: int = 1,
) -> dict:
    """Entry point behind ``python -m repro tune``.

    A dry run sweeps a micro-grid (two sizes, the smallest multi-node shape,
    4 tasks/node, one repeat), validates the document round-trips through
    :class:`TunedPolicy`, and writes nothing.
    """
    if dry_run:
        document = collect_table(
            operations=operations,
            sizes=[8, 8 * KB],
            nodes_axis=[min(bench_nodes(), key=lambda n: (n == 1, n))],
            tasks_per_node=4,
            repeats=1,
            label=f"{label}-dry-run",
            progress=progress,
            jobs=jobs,
        )
    else:
        document = collect_table(
            operations=operations, label=label, progress=progress, jobs=jobs
        )
    TunedPolicy(document)  # must load, whatever else happens
    if not dry_run:
        write_snapshot(out, document)
    return document
