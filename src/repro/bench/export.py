"""Export sweep results as CSV or JSON.

A reproduction is only useful if its numbers leave the terminal: this module
serializes :class:`~repro.bench.runner.Measurement` collections (and the
derived SRM/baseline ratios) into machine-readable files for plotting or
regression tracking, and backs ``python -m repro export``.
"""

from __future__ import annotations

import csv
import io
import json
import typing

from repro.bench.runner import Measurement
from repro.bench.sweeps import measure, message_sizes, processor_configs

__all__ = ["rows_from_measurements", "to_csv", "to_json", "collect_sweep"]

_FIELDS = ("stack", "operation", "nbytes", "total_tasks", "repeats", "microseconds")


def rows_from_measurements(
    measurements: typing.Iterable[Measurement],
) -> list[dict[str, typing.Any]]:
    """Flatten measurements into plain dict rows (stable field order)."""
    rows = []
    for m in measurements:
        rows.append(
            {
                "stack": m.stack,
                "operation": m.operation,
                "nbytes": m.nbytes,
                "total_tasks": m.total_tasks,
                "repeats": m.repeats,
                "microseconds": m.microseconds,
            }
        )
    return rows


def to_csv(measurements: typing.Iterable[Measurement]) -> str:
    """Measurements as CSV text (header + one row each)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS, lineterminator="\n")
    writer.writeheader()
    for row in rows_from_measurements(measurements):
        writer.writerow(row)
    return buffer.getvalue()


def to_json(measurements: typing.Iterable[Measurement], indent: int = 2) -> str:
    """Measurements as a JSON array."""
    return json.dumps(rows_from_measurements(measurements), indent=indent)


def collect_sweep(
    operations: typing.Sequence[str] = ("broadcast", "reduce", "allreduce", "barrier"),
    stacks: typing.Sequence[str] = ("srm", "ibm", "mpich"),
) -> list[Measurement]:
    """The full figure grid (sizes x processor counts x stacks x operations).

    Barrier ignores the size axis (measured once per processor count).
    """
    results: list[Measurement] = []
    for operation in operations:
        for nodes in processor_configs():
            if operation == "barrier":
                for stack in stacks:
                    results.append(measure(stack, "barrier", 0, nodes))
                continue
            for nbytes in message_sizes():
                for stack in stacks:
                    results.append(measure(stack, operation, nbytes, nodes))
    return results
