"""Export sweep results as CSV or JSON.

A reproduction is only useful if its numbers leave the terminal: this module
serializes :class:`~repro.bench.runner.Measurement` collections (and the
derived SRM/baseline ratios) into machine-readable files for plotting or
regression tracking, and backs ``python -m repro export``.

Output is deterministic: rows are always emitted sorted by
``(operation, stack, nbytes, nodes)`` regardless of collection order, and
every export carries the cost-model / cluster identity (plus a short
fingerprint of it), so diffing two exports compares measurements — never
iteration-order or calibration noise.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import io
import json
import typing

from repro._version import __version__
from repro.bench.runner import Measurement
from repro.bench.sweeps import measure, message_sizes, processor_configs, warm_cache
from repro.core import SRMConfig
from repro.machine import CostModel

__all__ = [
    "bench_identity",
    "identity_fingerprint",
    "rows_from_measurements",
    "to_csv",
    "to_json",
    "collect_sweep",
]

_FIELDS = ("operation", "stack", "nbytes", "nodes", "total_tasks", "repeats", "microseconds")


def bench_identity(
    cost: CostModel | None = None,
    srm_config: SRMConfig | None = None,
    tasks_per_node: int = 16,
) -> dict[str, typing.Any]:
    """The calibration identity measurements were taken under.

    Embedded in every export and snapshot so a diff can tell a protocol
    regression apart from a deliberate constant retune: when the identity
    changed, the numbers were *expected* to move.
    """
    cost = cost if cost is not None else CostModel.ibm_sp_colony()
    srm_config = srm_config if srm_config is not None else SRMConfig()
    return {
        "version": __version__,
        "tasks_per_node": tasks_per_node,
        "cost_model": {
            field.name: _jsonable(getattr(cost, field.name))
            for field in dataclasses.fields(CostModel)
        },
        "srm_config": {
            field.name: _jsonable(getattr(srm_config, field.name))
            for field in dataclasses.fields(SRMConfig)
        },
    }


def _jsonable(value: typing.Any) -> typing.Any:
    """Scalars pass through; nested config dataclasses (EagerLimitTable)
    flatten to dicts; tuples become lists so json round-trips compare equal."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return value


def identity_fingerprint(identity: dict[str, typing.Any]) -> str:
    """A short stable hash of an identity dict (for one-line provenance)."""
    canonical = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def _row_key(row: dict[str, typing.Any]) -> tuple:
    return (row["operation"], row["stack"], row["nbytes"], row["nodes"])


def rows_from_measurements(
    measurements: typing.Iterable[Measurement],
) -> list[dict[str, typing.Any]]:
    """Flatten measurements into dict rows sorted by (op, stack, size, nodes)."""
    rows = []
    for m in measurements:
        rows.append(
            {
                "operation": m.operation,
                "stack": m.stack,
                "nbytes": m.nbytes,
                "nodes": m.nodes,
                "total_tasks": m.total_tasks,
                "repeats": m.repeats,
                "microseconds": m.microseconds,
            }
        )
    rows.sort(key=_row_key)
    return rows


def to_csv(measurements: typing.Iterable[Measurement]) -> str:
    """Measurements as CSV text: one identity comment line, header, rows."""
    identity = bench_identity()
    buffer = io.StringIO()
    buffer.write(
        f"# repro-bench identity {identity_fingerprint(identity)} "
        f"{json.dumps(identity, sort_keys=True)}\n"
    )
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS, lineterminator="\n")
    writer.writeheader()
    for row in rows_from_measurements(measurements):
        writer.writerow(row)
    return buffer.getvalue()


def to_json(measurements: typing.Iterable[Measurement], indent: int = 2) -> str:
    """Measurements as a JSON document: ``{identity, fingerprint, rows}``."""
    identity = bench_identity()
    document = {
        "identity": identity,
        "fingerprint": identity_fingerprint(identity),
        "rows": rows_from_measurements(measurements),
    }
    return json.dumps(document, indent=indent)


def collect_sweep(
    operations: typing.Sequence[str] = ("broadcast", "reduce", "allreduce", "barrier"),
    stacks: typing.Sequence[str] = ("srm", "ibm", "mpich"),
    jobs: int = 1,
) -> list[Measurement]:
    """The full figure grid (sizes x processor counts x stacks x operations).

    Barrier ignores the size axis (measured once per processor count).
    ``jobs > 1`` measures the grid points through the parallel pool first
    (deterministic per point, so the export is byte-identical either way);
    the loops below then read straight from the memo cache.
    """
    specs: list[tuple] = []
    for operation in operations:
        for nodes in processor_configs():
            sizes = [0] if operation == "barrier" else message_sizes()
            for nbytes in sizes:
                for stack in stacks:
                    specs.append((stack, operation, nbytes, nodes))
    if jobs != 1:
        warm_cache(specs, jobs=jobs)
    results: list[Measurement] = []
    for stack, operation, nbytes, nodes in specs:
        results.append(measure(stack, operation, nbytes, nodes))
    return results
