"""Snapshot-vs-baseline comparison: the perf regression gate.

Compares a candidate snapshot (see :mod:`repro.bench.snapshot`) against a
committed baseline cell-by-cell with a configurable relative tolerance.
Because the simulator is deterministic, any drift at all is a real change in
the modelled protocol work — the tolerance exists to absorb *deliberate*
small retunes, not measurement noise.

When a cell regresses, the report does not stop at "slower": it diffs the
two critical-path phase breakdowns and names the dominant phase — the phase
whose critical-path share grew the most — so "allreduce 64 KB on 16 nodes is
+38%" arrives already localized to, say, ``counter-wait``.  When the cells
carry wait-state breakdowns (schema v1 with :mod:`repro.obs.waits` data),
it goes one level deeper via :func:`repro.obs.diff.diff_cells` and names the
cause: "+340 us of bandwidth-contention on ``bus[0]`` during ``ring-step``".
:func:`diff_document` assembles the full differential analysis of every
moved cell as a JSON artifact for CI upload (``regress --diff-out``).

Exit policy (:attr:`RegressionReport.ok`): regressions and vanished cells
fail the gate; improvements, new cells, and in-tolerance drift pass.  A
schema-version or document-kind mismatch raises — an incomparable pair must
never report success.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.bench.report import format_bytes
from repro.bench.snapshot import SCHEMA_VERSION, cell_key
from repro.errors import ConfigurationError
from repro.obs.diff import diff_cells

__all__ = [
    "DEFAULT_TOLERANCE",
    "DIFF_KIND",
    "SchemaMismatchError",
    "CellDelta",
    "RegressionReport",
    "compare_snapshots",
    "diff_document",
    "format_report",
]

#: Document marker for the differential-analysis artifact (``--diff-out``).
DIFF_KIND = "repro-trace-diff"

#: Relative slowdown tolerated before a cell counts as a regression (5%).
DEFAULT_TOLERANCE = 0.05

#: Relative change below which a cell is byte-for-byte "pass", not "drift".
_EXACT_EPSILON = 1e-9


class SchemaMismatchError(ConfigurationError):
    """Baseline and candidate snapshots use incompatible schemas."""


@dataclass
class CellDelta:
    """One compared cell."""

    operation: str
    stack: str
    nbytes: int
    nodes: int
    baseline_us: float
    candidate_us: float
    #: candidate / baseline (1.0 = unchanged, 2.0 = twice as slow).
    ratio: float
    #: "pass" | "drift" | "regression" | "improvement"
    status: str
    #: For regressions: the critical-path phase that grew the most.
    dominant_phase: str | None = None
    #: Phase -> candidate-minus-baseline critical-path microseconds.
    phase_deltas_us: dict[str, float] = field(default_factory=dict)
    #: For regressions with wait-state data: the (state, context, resource)
    #: bucket that grew the most, phrased for humans ("bandwidth-contention
    #: on bus[0] during ring-step"), and how much it grew.
    dominant_wait: str | None = None
    wait_delta_us: float = 0.0

    @property
    def label(self) -> str:
        return (
            f"{self.operation} {self.stack} {format_bytes(self.nbytes)} "
            f"x{self.nodes} nodes"
        )


@dataclass
class RegressionReport:
    """The gate's verdict over a whole snapshot pair."""

    tolerance: float
    cells: list[CellDelta] = field(default_factory=list)
    #: Keys present in the baseline but absent from the candidate.
    missing: list[tuple] = field(default_factory=list)
    #: Keys present in the candidate but absent from the baseline.
    added: list[tuple] = field(default_factory=list)
    #: Identity fields that differ between the two snapshots.
    identity_drift: list[str] = field(default_factory=list)

    def by_status(self, status: str) -> list[CellDelta]:
        return [cell for cell in self.cells if cell.status == status]

    @property
    def regressions(self) -> list[CellDelta]:
        return self.by_status("regression")

    @property
    def improvements(self) -> list[CellDelta]:
        return self.by_status("improvement")

    @property
    def ok(self) -> bool:
        """True when the gate passes: no regressions, no vanished cells."""
        return not self.regressions and not self.missing


def _phase_map(cell: dict) -> dict[str, float]:
    path = cell.get("critical_path")
    if not path:
        return {}
    return dict(path.get("phases_us", {}))


def _attribute(baseline: dict, candidate: dict) -> tuple[str | None, dict[str, float]]:
    """Name the phase responsible for a slowdown.

    Primary signal: the largest positive critical-path phase delta.  When the
    breakdowns are unavailable (baseline MPI stacks) or cancel out (a
    hand-scaled snapshot), fall back to the candidate's heaviest phase — the
    report must always name where the time is going.
    """
    base_phases = _phase_map(baseline)
    cand_phases = _phase_map(candidate)
    deltas = {
        phase: cand_phases.get(phase, 0.0) - base_phases.get(phase, 0.0)
        for phase in sorted(set(base_phases) | set(cand_phases))
    }
    positive = {phase: delta for phase, delta in deltas.items() if delta > 0}
    if positive:
        return max(positive, key=lambda phase: positive[phase]), deltas
    if cand_phases:
        return max(cand_phases, key=lambda phase: cand_phases[phase]), deltas
    return None, deltas


def compare_snapshots(
    baseline: dict,
    candidate: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> RegressionReport:
    """Diff ``candidate`` against ``baseline`` cell-by-cell."""
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    base_version = baseline.get("schema_version")
    cand_version = candidate.get("schema_version")
    if base_version != SCHEMA_VERSION or cand_version != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"snapshot schema mismatch: baseline v{base_version}, candidate "
            f"v{cand_version}, this tool speaks v{SCHEMA_VERSION} — "
            f"regenerate the stale snapshot with 'python -m repro bench'"
        )

    report = RegressionReport(tolerance=tolerance)
    report.identity_drift = _identity_drift(
        baseline.get("identity", {}), candidate.get("identity", {})
    )

    base_cells = {cell_key(cell): cell for cell in baseline["cells"]}
    cand_cells = {cell_key(cell): cell for cell in candidate["cells"]}
    report.missing = sorted(set(base_cells) - set(cand_cells))
    report.added = sorted(set(cand_cells) - set(base_cells))

    for key in sorted(set(base_cells) & set(cand_cells)):
        base, cand = base_cells[key], cand_cells[key]
        base_us, cand_us = base["microseconds"], cand["microseconds"]
        ratio = cand_us / base_us if base_us > 0 else float("inf")
        relative = ratio - 1.0
        dominant, deltas = None, {}
        dominant_wait, wait_delta_us = None, 0.0
        if abs(relative) <= _EXACT_EPSILON:
            status = "pass"
        elif relative > tolerance:
            status = "regression"
            dominant, deltas = _attribute(base, cand)
            grown = diff_cells(base, cand).dominant_wait()
            if grown is not None:
                dominant_wait, wait_delta_us = grown.label, grown.delta_us
        elif relative < -tolerance:
            status = "improvement"
        else:
            status = "drift"
        operation, stack, nbytes, nodes = key
        report.cells.append(
            CellDelta(
                operation=operation,
                stack=stack,
                nbytes=nbytes,
                nodes=nodes,
                baseline_us=base_us,
                candidate_us=cand_us,
                ratio=ratio,
                status=status,
                dominant_phase=dominant,
                phase_deltas_us=deltas,
                dominant_wait=dominant_wait,
                wait_delta_us=wait_delta_us,
            )
        )
    return report


def diff_document(baseline: dict, candidate: dict, report: RegressionReport) -> dict:
    """The full differential trace analysis of every moved cell, JSON-ready.

    One :class:`~repro.obs.diff.TraceDiff` per non-"pass" cell — phase and
    wait-state alignment included — suitable for ``regress --diff-out`` and
    CI artifact upload.  Cells are emitted in grid order; all maps inside are
    key-sorted, so the artifact is byte-stable.
    """
    base_cells = {cell_key(cell): cell for cell in baseline["cells"]}
    cand_cells = {cell_key(cell): cell for cell in candidate["cells"]}
    cells = []
    for delta in report.cells:
        if delta.status == "pass":
            continue
        key = (delta.operation, delta.stack, delta.nbytes, delta.nodes)
        trace = diff_cells(base_cells[key], cand_cells[key])
        cells.append({"key": list(key), "status": delta.status, **trace.to_dict()})
    return {
        "kind": DIFF_KIND,
        "schema_version": SCHEMA_VERSION,
        "baseline_label": baseline.get("label"),
        "candidate_label": candidate.get("label"),
        "tolerance": report.tolerance,
        "ok": report.ok,
        "compared": len(report.cells),
        "cells": cells,
    }


def _identity_drift(base: dict, cand: dict, prefix: str = "") -> list[str]:
    drift = []
    for key in sorted(set(base) | set(cand)):
        label = f"{prefix}{key}"
        base_value, cand_value = base.get(key), cand.get(key)
        if isinstance(base_value, dict) and isinstance(cand_value, dict):
            drift.extend(_identity_drift(base_value, cand_value, prefix=f"{label}."))
        elif base_value != cand_value:
            drift.append(label)
    return drift


def format_report(report: RegressionReport, verbose: bool = False) -> str:
    """The gate's human-readable verdict."""
    lines: list[str] = []
    counts = {
        status: len(report.by_status(status))
        for status in ("pass", "drift", "regression", "improvement")
    }
    lines.append(
        f"compared {len(report.cells)} cells "
        f"(tolerance ±{report.tolerance * 100:.1f}%): "
        f"{counts['pass']} identical, {counts['drift']} within tolerance, "
        f"{counts['improvement']} improved, {counts['regression']} regressed, "
        f"{len(report.missing)} missing, {len(report.added)} new"
    )
    if report.identity_drift:
        lines.append(
            "identity drift (expected movement — constants were retuned): "
            + ", ".join(report.identity_drift)
        )
    for cell in report.regressions:
        change = (cell.ratio - 1.0) * 100
        line = f"  REGRESSION {cell.label}: {cell.baseline_us:.1f} -> " \
               f"{cell.candidate_us:.1f} us (+{change:.1f}%)"
        if cell.dominant_wait is not None:
            line += f" -- +{cell.wait_delta_us:.1f} us of {cell.dominant_wait}"
        elif cell.dominant_phase is not None:
            grew = cell.phase_deltas_us.get(cell.dominant_phase, 0.0)
            if grew > 0:
                line += f", localized to {cell.dominant_phase} (+{grew:.1f} us on the critical path)"
            else:
                line += f", dominant critical-path phase: {cell.dominant_phase}"
        lines.append(line)
    for key in report.missing:
        operation, stack, nbytes, nodes = key
        lines.append(
            f"  MISSING {operation} {stack} {format_bytes(nbytes)} x{nodes} nodes: "
            f"in baseline but not in candidate"
        )
    cells_shown = report.improvements if not verbose else report.cells
    for cell in cells_shown:
        if cell.status == "improvement":
            change = (1.0 - cell.ratio) * 100
            lines.append(
                f"  improvement {cell.label}: {cell.baseline_us:.1f} -> "
                f"{cell.candidate_us:.1f} us (-{change:.1f}%)"
            )
        elif verbose and cell.status in ("drift", "pass"):
            lines.append(
                f"  {cell.status} {cell.label}: {cell.baseline_us:.1f} -> "
                f"{cell.candidate_us:.1f} us"
            )
    lines.append("gate: " + ("PASS" if report.ok else "FAIL"))
    return "\n".join(lines)
