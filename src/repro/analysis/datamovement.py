"""Data-movement accounting — the paper's Fig. 2 argument, made executable.

The paper's intra-node case for SRM rests on counting memory copies: an SMP
reduce over 8 tasks needs **4 copies** (one per binomial-tree leaf) plus
operator executions, while a message-passing implementation moves data on
every one of its 7 tree edges — "these seven operations might internally
involve 7 or even 14 memory copies".

Two views are provided:

* *analytic* — closed-form counts from the tree structure;
* *audited* — run the real implementations on a simulated node and read the
  copy counters out of :class:`~repro.machine.cluster.TaskStats`, proving
  the implementation moves exactly as much data as the paper claims.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

import numpy as np

from repro.core import SRM
from repro.machine import ClusterSpec, Machine
from repro.mpi.collectives import IbmMpi
from repro.mpi.ops import SUM
from repro.trees.base import Tree
from repro.trees.binomial import binomial_tree

__all__ = ["MovementCounts", "smp_reduce_analytic", "message_passing_reduce_analytic", "audit_reduce"]


@dataclass(frozen=True)
class MovementCounts:
    """Copy / operator-execution counts for one intra-node reduce."""

    tasks: int
    copies: int
    operator_executions: int
    #: For message passing: per-edge data movements (send+recv pairs).
    messages: int = 0

    def copies_per_task(self) -> float:
        return self.copies / self.tasks


def smp_reduce_analytic(tasks: int, tree: Tree | None = None) -> MovementCounts:
    """Fig. 2 left: copies = leaves of the binomial tree; ops = edges.

    Leaves copy their contribution into shared memory; every edge costs one
    operator execution; interior tasks and the root move no data.
    """
    if tree is None:
        tree = binomial_tree(tasks)
    leaves = len(tree.leaves()) if tasks > 1 else 0
    return MovementCounts(
        tasks=tasks,
        copies=leaves,
        operator_executions=tasks - 1 if tasks > 1 else 0,
    )


def message_passing_reduce_analytic(tasks: int, copies_per_message: int = 2) -> MovementCounts:
    """Fig. 2 right: P-1 messages; shared-memory p2p costs 2 copies each
    (sender into the bounce buffer, receiver out — the "7 or even 14" range
    corresponds to ``copies_per_message`` of 1 or 2)."""
    messages = tasks - 1 if tasks > 1 else 0
    return MovementCounts(
        tasks=tasks,
        copies=messages * copies_per_message,
        operator_executions=messages,
        messages=messages,
    )


def audit_reduce(tasks: int, stack: str = "srm", count: int = 128) -> MovementCounts:
    """Run a single-node reduce and count the *actual* data movements.

    ``stack``: ``"srm"`` (shared-memory reduce) or ``"mpi"`` (point-to-point
    over the shared-memory transport).
    """
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=tasks))
    sources = {r: np.full(count, float(r + 1)) for r in range(tasks)}
    destination = np.zeros(count)

    if stack == "srm":
        collectives: typing.Any = SRM(machine)
    elif stack == "mpi":
        collectives = IbmMpi(machine)
    else:
        raise ValueError(f"unknown stack {stack!r}")

    def program(task):
        dst = destination if task.rank == 0 else None
        yield from collectives.reduce(task, sources[task.rank], dst, SUM, root=0)

    machine.launch(program)
    assert np.all(destination == sum(range(1, tasks + 1))), "audit reduce must be correct"

    # Count payload-sized movements by total bytes copied: flag traffic is
    # synchronization, not data, and never reaches TaskStats.bytes_copied.
    payload_bytes = count * 8
    total_copied = sum(task.stats.bytes_copied for task in machine.tasks)
    operator_executions = sum(task.stats.reduce_ops for task in machine.tasks)
    messages = sum(task.mpi.stats.sends for task in machine.tasks)
    return MovementCounts(
        tasks=tasks,
        copies=int(total_copied // payload_bytes),
        operator_executions=operator_executions,
        messages=messages,
    )
