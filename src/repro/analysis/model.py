"""Analytical performance model of the SRM collectives.

The paper's §5 names this as future work: "development of an analytical
performance model of the SRM collectives to better understand, model, and
evaluate effectiveness of this technique under different assumptions and
parameter values such as the SMP node size, intra-SMP memory bandwidth, and
performance of inter-node communication."

The model below is a LogGP-flavoured closed form over the same
:class:`~repro.machine.costmodel.CostModel` parameters the simulator uses.
It deliberately ignores second-order effects (bus contention between
simultaneous readers, interrupt stalls, daemon noise), so it *underestimates*
the simulation slightly; the validation benchmark
(``benchmarks/bench_model_validation.py``) records the model/simulation ratio
across a sweep and asserts it stays within a calibrated band.  Besides
validation, the model answers the paper's what-if questions analytically —
see :func:`crossover_node_size` for an example (at what node size does SRM's
shared-memory advantage saturate?).
"""

from __future__ import annotations

import math

from repro.core.config import SRMConfig
from repro.machine.costmodel import CostModel
from repro.machine.spec import ClusterSpec

__all__ = [
    "smp_broadcast_time",
    "smp_reduce_time",
    "smp_barrier_time",
    "srm_broadcast_time",
    "srm_reduce_time",
    "srm_allreduce_time",
    "srm_barrier_time",
    "mpi_p2p_time",
    "mpi_broadcast_time",
    "mpi_barrier_time",
    "predicted_broadcast_ratio",
    "crossover_node_size",
]


def _put_time(cost: CostModel, nbytes: int) -> float:
    """One counter-signalled LAPI put, origin call to target counter."""
    return (
        cost.rma_origin_overhead
        + cost.net_latency
        + nbytes / cost.net_bandwidth
        + cost.rma_target_overhead
        + cost.counter_update_cost
    )


def _inter_rounds(nodes: int) -> int:
    """Binomial rounds between node masters."""
    return (nodes - 1).bit_length()


# ---------------------------------------------------------------------------
# intra-node stages
# ---------------------------------------------------------------------------


def smp_broadcast_time(cost: CostModel, node_size: int, nbytes: int) -> float:
    """Flat two-buffer SMP broadcast of one chunk (paper Fig. 3).

    fill (copy in + set P-1 flags) then the readers' concurrent drain; the
    drain is one copy at per-CPU speed unless the readers together exceed
    the bus, in which case the bus divides among them.
    """
    if node_size <= 1:
        return 0.0
    fill = cost.copy_time(nbytes) + (node_size - 1) * cost.flag_set_cost
    readers = node_size - 1
    drain_rate = min(cost.sm_copy_bandwidth, cost.memory_bus_bandwidth / readers)
    drain = cost.flag_poll_interval + cost.sm_copy_latency + nbytes / drain_rate
    return fill + drain


def smp_reduce_time(cost: CostModel, node_size: int, nbytes: int) -> float:
    """Binomial SMP reduce of one chunk (paper Fig. 2).

    One leaf copy, then one operator execution per tree level on the
    critical path (the root combines ceil(log2 p) children serially).
    """
    if node_size <= 1:
        return 0.0
    levels = (node_size - 1).bit_length()
    leaf_copy = cost.copy_time(nbytes) + cost.flag_set_cost
    combines = sum(
        cost.flag_poll_interval + cost.reduce_time(nbytes) for _ in range(levels)
    )
    return leaf_copy + combines


def smp_barrier_time(cost: CostModel, node_size: int) -> float:
    """Flat flag barrier: check-in, master scan, reset, release."""
    if node_size <= 1:
        return 0.0
    check_in = cost.flag_set_cost + cost.flag_poll_interval
    reset = (node_size - 1) * cost.flag_set_cost
    release = cost.flag_poll_interval
    return check_in + reset + release


# ---------------------------------------------------------------------------
# integrated operations
# ---------------------------------------------------------------------------


def srm_broadcast_time(
    cost: CostModel,
    spec: ClusterSpec,
    nbytes: int,
    config: SRMConfig | None = None,
) -> float:
    """End-to-end SRM broadcast latency."""
    config = config or SRMConfig()
    node_size = max(spec.node_sizes)
    rounds = _inter_rounds(spec.nodes)
    chunks = config.chunks(nbytes)
    chunk_bytes = chunks[0][1]
    n_chunks = len(chunks)

    if not config.is_large(nbytes):
        # Small protocol: per chunk, `rounds` pipelined put stages plus the
        # SMP fan-out; extra chunks cost one more slowest-stage each.
        stage_net = _put_time(cost, chunk_bytes)
        stage_smp = smp_broadcast_time(cost, node_size, chunk_bytes)
        first_chunk = rounds * stage_net + stage_smp
        steady = max(stage_net, stage_smp)
        return first_chunk + (n_chunks - 1) * steady

    # Large protocol: address exchange, then the root streams the whole
    # message to each child (its NIC serializes over children on the top
    # level), overlapped with per-node SMP pipelines.
    children_of_root = min(rounds, spec.nodes - 1)
    address = _put_time(cost, 0)
    stream = children_of_root * nbytes / cost.net_bandwidth + cost.net_latency * rounds
    smp_pipe = smp_broadcast_time(cost, node_size, chunk_bytes) * n_chunks
    return address + max(stream, smp_pipe) + smp_broadcast_time(cost, node_size, chunk_bytes)


def srm_reduce_time(
    cost: CostModel,
    spec: ClusterSpec,
    nbytes: int,
    config: SRMConfig | None = None,
) -> float:
    """End-to-end SRM reduce latency."""
    config = config or SRMConfig()
    node_size = max(spec.node_sizes)
    rounds = _inter_rounds(spec.nodes)
    chunks = config.chunks(nbytes)
    chunk_bytes = chunks[0][1]
    n_chunks = len(chunks)
    stage_smp = smp_reduce_time(cost, node_size, chunk_bytes)
    stage_net = _put_time(cost, chunk_bytes) + cost.reduce_time(chunk_bytes)
    first_chunk = stage_smp + rounds * stage_net
    steady = max(stage_net, stage_smp)
    return first_chunk + (n_chunks - 1) * steady


def srm_allreduce_time(
    cost: CostModel,
    spec: ClusterSpec,
    nbytes: int,
    config: SRMConfig | None = None,
) -> float:
    """End-to-end SRM allreduce latency."""
    config = config or SRMConfig()
    node_size = max(spec.node_sizes)
    if nbytes <= config.allreduce_exchange_max:
        rd_rounds = int(math.log2(max(1, 1 << ((spec.nodes).bit_length() - 1))))
        exchange = rd_rounds * (_put_time(cost, nbytes) + cost.reduce_time(nbytes))
        return (
            smp_reduce_time(cost, node_size, nbytes)
            + exchange
            + smp_broadcast_time(cost, node_size, nbytes)
        )
    # Pipelined reduce + broadcast (Fig. 5): the stages overlap chunk-wise,
    # so the total is one traversal plus (n_chunks - 1) slowest stages.
    chunks = config.chunks(nbytes)
    chunk_bytes = chunks[0][1]
    n_chunks = len(chunks)
    rounds = _inter_rounds(spec.nodes)
    stages = [
        smp_reduce_time(cost, node_size, chunk_bytes),
        _put_time(cost, chunk_bytes) + cost.reduce_time(chunk_bytes),
        _put_time(cost, chunk_bytes),
        smp_broadcast_time(cost, node_size, chunk_bytes),
    ]
    first_chunk = stages[0] + rounds * stages[1] + rounds * stages[2] + stages[3]
    steady = max(max(stages), 2 * rounds * chunk_bytes / cost.net_bandwidth)
    return first_chunk + (n_chunks - 1) * steady


def srm_barrier_time(cost: CostModel, spec: ClusterSpec) -> float:
    """End-to-end SRM barrier latency."""
    node_size = max(spec.node_sizes)
    rounds = (spec.nodes - 1).bit_length()
    return smp_barrier_time(cost, node_size) + rounds * _put_time(cost, 0)


# ---------------------------------------------------------------------------
# baseline (message-passing) counterparts — for analytic ratio predictions
# ---------------------------------------------------------------------------


def mpi_p2p_time(cost: CostModel, nbytes: int, total_tasks: int, intra_node: bool) -> float:
    """One blocking MPI send/receive, eager or rendezvous per the limit."""
    overheads = cost.mpi_send_overhead + cost.mpi_recv_overhead
    if intra_node:
        transport = 2 * cost.copy_time(nbytes)  # bounce-buffer double copy
        wakeup = cost.mpi_shm_wakeup
        hop = cost.flag_poll_interval
        handshake = 2 * (cost.rendezvous_control_cost + hop + cost.mpi_shm_wakeup)
    else:
        transport = cost.wire_time(nbytes)
        wakeup = cost.mpi_blocked_recv_wakeup
        hop = cost.net_latency
        handshake = 2 * (cost.rendezvous_control_cost + hop) + cost.mpi_blocked_recv_wakeup
    if nbytes <= cost.eager_limit(total_tasks):
        # Eager: receiver additionally drains the system buffer.
        return overheads + transport + cost.copy_time(nbytes) + wakeup
    return overheads + handshake + transport + wakeup


def mpi_broadcast_time(cost: CostModel, spec: ClusterSpec, nbytes: int) -> float:
    """Binomial broadcast over ranks: critical path = inter-node rounds over
    nodes + intra-node rounds within one node (the root-0 block-mapped
    tree's structure)."""
    total = spec.total_tasks
    inter_hops = _inter_rounds(spec.nodes)
    intra_hops = _inter_rounds(max(spec.node_sizes))
    return inter_hops * mpi_p2p_time(cost, nbytes, total, intra_node=False) + (
        intra_hops * mpi_p2p_time(cost, nbytes, total, intra_node=True)
    )


def mpi_barrier_time(cost: CostModel, spec: ClusterSpec) -> float:
    """Recursive-doubling barrier over all ranks (zero-byte exchanges)."""
    total = spec.total_tasks
    intra_rounds = _inter_rounds(max(spec.node_sizes))
    inter_rounds = _inter_rounds(spec.nodes)
    return intra_rounds * mpi_p2p_time(cost, 0, total, intra_node=True) + (
        inter_rounds * mpi_p2p_time(cost, 0, total, intra_node=False)
    )


def predicted_broadcast_ratio(cost: CostModel, spec: ClusterSpec, nbytes: int) -> float:
    """Analytic T_SRM / T_MPI * 100 % — the paper's Figs. 9–11 metric,
    answerable without running the simulator."""
    return 100.0 * srm_broadcast_time(cost, spec, nbytes) / mpi_broadcast_time(cost, spec, nbytes)


def crossover_node_size(cost: CostModel, nbytes: int, max_size: int = 512) -> int:
    """Smallest node size at which the SMP drain (bus-bound) becomes slower
    than one network hop — the "how fat can nodes get" question of §5."""
    for node_size in range(2, max_size + 1):
        if smp_broadcast_time(cost, node_size, nbytes) > _put_time(cost, nbytes):
            return node_size
    return max_size
