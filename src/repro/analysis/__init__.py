"""Analysis companions: data-movement audits (Fig. 2) and the analytical
performance model the paper's §5 proposes as future work."""

from repro.analysis.datamovement import (
    MovementCounts,
    audit_reduce,
    message_passing_reduce_analytic,
    smp_reduce_analytic,
)
from repro.analysis.model import (
    crossover_node_size,
    mpi_barrier_time,
    mpi_broadcast_time,
    mpi_p2p_time,
    predicted_broadcast_ratio,
    smp_barrier_time,
    smp_broadcast_time,
    smp_reduce_time,
    srm_allreduce_time,
    srm_barrier_time,
    srm_broadcast_time,
    srm_reduce_time,
)

__all__ = [
    "MovementCounts",
    "smp_reduce_analytic",
    "message_passing_reduce_analytic",
    "audit_reduce",
    "smp_broadcast_time",
    "smp_reduce_time",
    "smp_barrier_time",
    "srm_broadcast_time",
    "srm_reduce_time",
    "srm_allreduce_time",
    "srm_barrier_time",
    "mpi_p2p_time",
    "mpi_broadcast_time",
    "mpi_barrier_time",
    "predicted_broadcast_ratio",
    "crossover_node_size",
]
