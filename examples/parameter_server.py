"""Synchronous data-parallel training loop (broadcast + reduce pattern).

The second application family from the paper's introduction: broadcasting
data and combining distributed contributions.  A root rank holds model
parameters; every step it **broadcasts** them, each rank computes a local
gradient on its shard of synthetic data, and the gradients are **reduced**
(summed) back to the root, which applies the update.  A final **barrier**
closes each epoch.

The model is linear least-squares so convergence is checkable exactly; the
interesting output is how much wall-clock (simulated) time each collective
stack spends communicating.

Run:  python examples/parameter_server.py
"""

import numpy as np

from repro.bench import build, format_us
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM

NODES = 4
TASKS_PER_NODE = 8
FEATURES = 4096  # 32 KB of parameters -> exercises the pipelined protocols
SAMPLES_PER_RANK = 64
STEPS = 25
LEARNING_RATE = 0.15


def make_shards(total_ranks: int) -> tuple[dict[int, tuple[np.ndarray, np.ndarray]], np.ndarray]:
    rng = np.random.default_rng(17)
    truth = rng.normal(size=FEATURES)
    shards = {}
    for rank in range(total_ranks):
        features = rng.normal(size=(SAMPLES_PER_RANK, FEATURES)) / np.sqrt(FEATURES)
        labels = features @ truth
        shards[rank] = (features, labels)
    return shards, truth


def run(stack_name: str) -> tuple[float, float]:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=TASKS_PER_NODE)
    machine, stack = build(stack_name, spec)
    total = spec.total_tasks
    shards, truth = make_shards(total)

    weights = {rank: np.zeros(FEATURES) for rank in range(total)}
    gradient_sum = np.zeros(FEATURES)
    losses = []

    def program(task):
        rank = task.rank
        features, labels = shards[rank]
        for _step in range(STEPS):
            # 1. Parameters out to every worker.
            yield from stack.broadcast(task, weights[rank], root=0)
            # 2. Local gradient of 0.5 * ||X w - y||^2 (pure CPU work).
            residual = features @ weights[rank] - labels
            gradient = features.T @ residual
            yield from task.compute(2e-5)  # the matmul's CPU time
            # 3. Sum of gradients back at the root.
            dst = gradient_sum if rank == 0 else None
            yield from stack.reduce(task, gradient, dst, SUM, root=0)
            # 4. Root applies the update; everyone re-synchronizes.
            if rank == 0:
                weights[0] -= LEARNING_RATE * gradient_sum / (total * SAMPLES_PER_RANK)
                losses.append(float(np.mean(residual**2)))
            yield from stack.barrier(task)

    result = machine.launch(program)
    assert losses[-1] < losses[0], "training must reduce the loss"
    return result.elapsed, (losses[0], losses[-1])


def main() -> None:
    print(
        f"data-parallel least squares: {FEATURES} params, "
        f"{NODES * TASKS_PER_NODE} ranks, {STEPS} steps"
    )
    times = {}
    for name in ("srm", "ibm", "mpich"):
        elapsed, (first_loss, last_loss) = run(name)
        times[name] = elapsed
        print(
            f"  {name:5s} {format_us(elapsed):>10} us simulated, "
            f"loss {first_loss:.3f} -> {last_loss:.3f}"
        )
    print(f"  communication stack speedup SRM vs IBM: {times['ibm'] / times['srm']:.2f}x")


if __name__ == "__main__":
    main()
