"""Task-group collectives: two teams, then a global combine (§5 extension).

The paper leaves collectives over *arbitrary MPI task groups* as future
work; this library implements them (``SRM(machine, group=...)``).  The
pattern here is the classic two-level parallelism: the machine is split into
two teams that each run an independent ensemble computation (team-local
broadcasts + allreduces, fully concurrent because each group owns its own
shared buffers and counters), and a final world allreduce combines the
ensembles.

Run:  python examples/subgroup_teams.py
"""

import numpy as np

from repro.bench import format_us
from repro.core import SRM
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM

NODES = 8
TASKS_PER_NODE = 8
VECTOR = 2048
TEAM_STEPS = 5


def main() -> None:
    machine = Machine(ClusterSpec(nodes=NODES, tasks_per_node=TASKS_PER_NODE))
    total = machine.spec.total_tasks
    left_team = [r for node in range(NODES // 2) for r in machine.spec.ranks_on_node(node)]
    right_team = [r for r in range(total) if r not in left_team]

    world = SRM(machine)
    srm_left = SRM(machine, group=left_team)
    srm_right = SRM(machine, group=right_team)

    rng = np.random.default_rng(0)
    state = {r: rng.random(VECTOR) for r in range(total)}
    team_sum = {r: np.zeros(VECTOR) for r in range(total)}
    world_sum = {r: np.zeros(VECTOR) for r in range(total)}
    team_time = {}

    def program(task):
        team = srm_left if task.rank in left_team else srm_right
        team_root = team.members[0]
        start = task.engine.now
        for _step in range(TEAM_STEPS):
            # Team-local parameter share + ensemble statistic.
            yield from team.broadcast(task, state[team_root], root=team_root)
            yield from team.allreduce(task, state[task.rank], team_sum[task.rank], SUM)
            yield from team.barrier(task)
        team_time[task.rank] = task.engine.now - start
        # Global combine across both teams.
        yield from world.allreduce(task, team_sum[task.rank], world_sum[task.rank], SUM)

    result = machine.launch(program)

    # Correctness: each team's sum, then the world sum of team sums.
    left_expected = np.sum([state[r] for r in left_team], axis=0)
    right_expected = np.sum([state[r] for r in right_team], axis=0)
    assert all(np.allclose(team_sum[r], left_expected) for r in left_team)
    assert all(np.allclose(team_sum[r], right_expected) for r in right_team)
    world_expected = (
        len(left_team) * left_expected + len(right_team) * right_expected
    )
    assert all(np.allclose(world_sum[r], world_expected) for r in range(total))

    left_time = max(team_time[r] for r in left_team)
    right_time = max(team_time[r] for r in right_team)
    print(f"{total} ranks split into two teams of {len(left_team)}")
    print(f"  left team phase : {format_us(left_time)} us")
    print(f"  right team phase: {format_us(right_time)} us")
    print(f"  total (teams ran concurrently + world combine): {format_us(result.elapsed)} us")
    overlap = (left_time + right_time) / max(left_time, right_time)
    print(f"  concurrency gain over serial teams: {overlap:.2f}x")


if __name__ == "__main__":
    main()
