"""Quickstart: SRM collectives on a simulated SMP cluster.

Builds the paper's platform (nodes of 16 CPUs, Colony-class network), runs
one broadcast under all three collective stacks, and prints the timings —
a one-minute version of the paper's Figure 6.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench import build, format_us, time_operation
from repro.core import SRM
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM


def manual_broadcast() -> None:
    """Drive the public API directly: one broadcast, data verified."""
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=16))
    srm = SRM(machine)
    total = machine.spec.total_tasks

    payload = np.arange(1024, dtype=np.float64)
    buffers = {rank: (payload.copy() if rank == 0 else np.zeros(1024)) for rank in range(total)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    result = machine.launch(program)
    assert all(np.array_equal(buffers[rank], payload) for rank in range(total))
    print(
        f"broadcast of {payload.nbytes} B to {total} ranks: "
        f"{format_us(result.elapsed)} us simulated"
    )


def manual_allreduce() -> None:
    """A global sum (the stopping-criterion pattern from the paper's intro)."""
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=16))
    srm = SRM(machine)
    total = machine.spec.total_tasks
    sources = {rank: np.full(128, float(rank)) for rank in range(total)}
    sums = {rank: np.zeros(128) for rank in range(total)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], sums[task.rank], SUM)

    result = machine.launch(program)
    expected = sum(range(total))
    assert all(np.all(sums[rank] == expected) for rank in range(total))
    print(f"allreduce over {total} ranks: {format_us(result.elapsed)} us simulated")


def stack_comparison() -> None:
    """SRM vs the two MPI baselines — the paper's headline in one table."""
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    print(f"\nbroadcast of 16 KB on {spec} :")
    baseline = None
    for name in ("srm", "ibm", "mpich"):
        machine, stack = build(name, spec)
        measurement = time_operation(machine, stack, "broadcast", 16 * 1024, repeats=3)
        label = getattr(stack, "name", name)
        if baseline is None:
            baseline = measurement.seconds
        print(
            f"  {label:22s} {format_us(measurement.seconds):>9} us "
            f"({100 * measurement.seconds / baseline:5.1f}% of SRM)"
        )


if __name__ == "__main__":
    manual_broadcast()
    manual_allreduce()
    stack_comparison()
