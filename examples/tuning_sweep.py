"""Tuning SRM for a different machine — the §5 what-if workflow.

The paper's future work asks how SRM behaves "under different assumptions
and parameter values such as the SMP node size, intra-SMP memory bandwidth,
and performance of inter-node communication".  This example answers three
such questions with the simulator and cross-checks the analytical model:

1. How does the SRM advantage change with SMP node size at fixed P?
2. What happens on a commodity cluster (slower network) vs the SP?
3. Where should the pipeline chunk size sit on each machine?

Run:  python examples/tuning_sweep.py
"""

from repro.analysis import srm_broadcast_time
from repro.bench import build, format_bytes, format_us, time_operation
from repro.core import SRMConfig
from repro.machine import ClusterSpec, CostModel

TOTAL_TASKS = 64
MESSAGE = 16 * 1024


def node_size_sweep() -> None:
    print(f"\n1) node size at fixed P={TOTAL_TASKS}, {format_bytes(MESSAGE)} broadcast")
    print(f"   {'shape':>12} {'SRM':>10} {'IBM MPI':>10} {'ratio':>7}")
    for tasks_per_node in (2, 4, 8, 16, 32):
        nodes = TOTAL_TASKS // tasks_per_node
        spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks_per_node)
        machine, srm = build("srm", spec)
        srm_time = time_operation(machine, srm, "broadcast", MESSAGE, repeats=3).seconds
        machine, ibm = build("ibm", spec)
        ibm_time = time_operation(machine, ibm, "broadcast", MESSAGE, repeats=3).seconds
        print(
            f"   {nodes:>3} x {tasks_per_node:<2}     "
            f"{format_us(srm_time):>10} {format_us(ibm_time):>10} "
            f"{100 * srm_time / ibm_time:6.1f}%"
        )
    print(
        "   -> shared memory absorbs more of the work as nodes fatten, until"
        " the intra-node fan-out itself becomes the bottleneck"
    )


def machine_presets() -> None:
    print(f"\n2) machine presets, 8x16 cluster, {format_bytes(MESSAGE)} broadcast")
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    for label, cost in [
        ("IBM SP / Colony", CostModel.ibm_sp_colony()),
        ("commodity cluster", CostModel.commodity_cluster()),
        ("fat SMP server", CostModel.fat_smp()),
    ]:
        machine, srm = build("srm", spec, cost=cost)
        simulated = time_operation(machine, srm, "broadcast", MESSAGE, repeats=3).seconds
        predicted = srm_broadcast_time(cost, spec, MESSAGE)
        print(
            f"   {label:18s} sim {format_us(simulated):>9} us, "
            f"model {format_us(predicted):>9} us (x{predicted / simulated:.2f})"
        )


def chunk_tuning() -> None:
    print(f"\n3) pipeline chunk tuning, 32KB broadcast")
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    for label, cost in [
        ("IBM SP / Colony", CostModel.ibm_sp_colony()),
        ("commodity cluster", CostModel.commodity_cluster()),
    ]:
        best = None
        for chunk in (1024, 2048, 4096, 8192, 16384):
            config = SRMConfig(pipeline_chunk=chunk, pipeline_min=max(8192, chunk))
            machine, srm = build("srm", spec, cost=cost, srm_config=config)
            seconds = time_operation(machine, srm, "broadcast", 32 * 1024, repeats=3).seconds
            if best is None or seconds < best[1]:
                best = (chunk, seconds)
        print(
            f"   {label:18s} best chunk {format_bytes(best[0]):>5} "
            f"({format_us(best[1])} us)"
        )
    print("   -> slower networks favour larger chunks (less per-chunk latency)")


if __name__ == "__main__":
    node_size_sweep()
    machine_presets()
    chunk_tuning()
