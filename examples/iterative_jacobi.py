"""Jacobi iteration with SRM collectives for the convergence test.

The paper's introduction motivates collectives with exactly this workload:
"updating distributed vectors, calculating stopping criteria in iterative
algorithms".  Each rank owns a block of rows of a diagonally-dominant
system ``A x = b``; every sweep ends with an **allreduce** of the squared
residual (the stopping criterion) and an **allgather-by-broadcast** of the
block updates.  The same program runs under SRM and under the IBM-MPI-like
baseline, reproducing — inside an application — the collective speedups of
the paper's microbenchmarks.

Run:  python examples/iterative_jacobi.py
"""

import numpy as np

from repro.bench import build, format_us
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM

NODES = 4
TASKS_PER_NODE = 8
UNKNOWNS = 512
TOLERANCE = 1e-8
MAX_SWEEPS = 60


def make_system(n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(3)
    matrix = rng.random((n, n)) * 0.5 / n
    np.fill_diagonal(matrix, 1.0)
    rhs = rng.random(n)
    return matrix, rhs


def run(stack_name: str) -> tuple[int, float, np.ndarray]:
    spec = ClusterSpec(nodes=NODES, tasks_per_node=TASKS_PER_NODE)
    machine, stack = build(stack_name, spec)
    total = spec.total_tasks
    block = UNKNOWNS // total
    matrix, rhs = make_system(UNKNOWNS)

    x = {rank: np.zeros(UNKNOWNS) for rank in range(total)}
    sweeps_taken = {}

    def program(task):
        rank = task.rank
        mine = slice(rank * block, (rank + 1) * block)
        local_a = matrix[mine]
        local_b = rhs[mine]
        local_diag = np.diag(matrix)[mine]
        residual_sq = np.zeros(1)
        global_residual = np.zeros(1)

        for sweep in range(MAX_SWEEPS):
            # Local Jacobi update on my block.
            update = (local_b - local_a @ x[rank] + local_diag * x[rank][mine]) / local_diag
            new_block = update
            residual_sq[0] = float(np.sum((new_block - x[rank][mine]) ** 2))
            x[rank][mine] = new_block

            # Share my block with everyone.
            yield from stack.allgather(task, x[rank][mine].copy(), x[rank])

            # Global stopping criterion.
            yield from stack.allreduce(task, residual_sq, global_residual, SUM)
            if global_residual[0] < TOLERANCE:
                break
        sweeps_taken[rank] = sweep + 1

    result = machine.launch(program)
    sweeps = max(sweeps_taken.values())
    return sweeps, result.elapsed, x[0]


def main() -> None:
    matrix, rhs = make_system(UNKNOWNS)
    reference = np.linalg.solve(matrix, rhs)
    print(f"Jacobi on {UNKNOWNS} unknowns, {NODES * TASKS_PER_NODE} ranks "
          f"({NODES} nodes x {TASKS_PER_NODE}):")
    times = {}
    for name in ("srm", "ibm"):
        sweeps, elapsed, solution = run(name)
        error = float(np.max(np.abs(solution - reference)))
        times[name] = elapsed
        print(
            f"  {name:5s} converged in {sweeps} sweeps, "
            f"{format_us(elapsed)} us simulated, max error {error:.2e}"
        )
        assert error < 1e-3, "solver failed to converge to the true solution"
    speedup = times["ibm"] / times["srm"]
    print(f"  SRM collective stack is {speedup:.2f}x faster end-to-end")


if __name__ == "__main__":
    main()
