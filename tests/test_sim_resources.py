"""Unit tests for FIFO and fluid-flow bandwidth resources."""

import pytest

from repro.errors import SimulationError
from repro.obs.monitor import ResourceMonitor, ResourceSample
from repro.sim import Engine, FifoResource, Gate, SharedBandwidth


def monitored_engine():
    engine = Engine()
    engine.monitor = ResourceMonitor(engine)
    return engine


# ---------------------------------------------------------------------------
# FifoResource
# ---------------------------------------------------------------------------


def test_fifo_grants_up_to_capacity_immediately():
    engine = Engine()
    resource = FifoResource(engine, capacity=2)
    first, second, third = resource.request(), resource.request(), resource.request()
    assert first.triggered and second.triggered and not third.triggered
    assert resource.in_use == 2
    assert resource.queued == 1


def test_fifo_release_wakes_waiters_in_order():
    engine = Engine()
    resource = FifoResource(engine, capacity=1)
    order = []

    def worker(ident, hold):
        yield resource.request()
        order.append(("in", ident, engine.now))
        yield engine.timeout(hold)
        resource.release()

    for ident in range(3):
        engine.process(worker(ident, 1.0))
    engine.run()
    assert order == [("in", 0, 0.0), ("in", 1, 1.0), ("in", 2, 2.0)]


def test_fifo_release_when_idle_raises():
    engine = Engine()
    with pytest.raises(SimulationError):
        FifoResource(engine).release()


def test_fifo_capacity_validation():
    with pytest.raises(SimulationError):
        FifoResource(Engine(), capacity=0)


def test_fifo_use_helper_holds_for_duration():
    engine = Engine()
    resource = FifoResource(engine, capacity=1)
    spans = []

    def worker(ident):
        start = engine.now
        yield from resource.use(2.0)
        spans.append((ident, start, engine.now))

    engine.process(worker("a"))
    engine.process(worker("b"))
    engine.run()
    # Second worker enters only after the first's 2s hold.
    assert spans[0][2] == 2.0
    assert spans[1][2] == 4.0


# ---------------------------------------------------------------------------
# SharedBandwidth (processor sharing)
# ---------------------------------------------------------------------------


def test_single_transfer_takes_size_over_rate():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    done = link.transfer(250.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(2.5)


def test_zero_byte_transfer_completes_instantly():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    done = link.transfer(0)
    assert done.triggered
    engine.run(until=done)
    assert engine.now == 0.0


def test_two_equal_transfers_share_rate_equally():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    first = link.transfer(100.0)
    second = link.transfer(100.0)
    engine.run(until=engine.all_of([first, second]))
    # Each gets 50 B/s, so both finish at t=2 (not t=1).
    assert engine.now == pytest.approx(2.0)


def test_late_joiner_slows_existing_transfer():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    finish_times = {}

    def start_late():
        yield engine.timeout(0.5)
        done = link.transfer(100.0)
        yield done
        finish_times["late"] = engine.now

    def start_now():
        done = link.transfer(100.0)
        yield done
        finish_times["early"] = engine.now

    engine.process(start_now())
    engine.process(start_late())
    engine.run()
    # Early: 50 bytes alone in 0.5s, then shares; both have 100 resp. 50+? —
    # early has 50 left, late has 100; early finishes at 0.5 + 50/50 = 1.5,
    # then late has 50 left at full rate: 1.5 + 0.5 = 2.0.
    assert finish_times["early"] == pytest.approx(1.5)
    assert finish_times["late"] == pytest.approx(2.0)


def test_per_transfer_cap_limits_rate_on_idle_link():
    engine = Engine()
    link = SharedBandwidth(engine, rate=1000.0)
    done = link.transfer(100.0, max_rate=10.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(10.0)


def test_water_filling_gives_leftover_to_uncapped():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    capped = link.transfer(10.0, max_rate=10.0)  # uses 10 B/s
    free = link.transfer(90.0)  # gets the remaining 90 B/s
    engine.run(until=engine.all_of([capped, free]))
    assert engine.now == pytest.approx(1.0)


def test_bytes_transferred_accounting():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    link.transfer(30.0)
    link.transfer(70.0)
    engine.run()
    assert link.bytes_transferred == pytest.approx(100.0)


def test_many_concurrent_transfers_fair_share():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    events = [link.transfer(10.0) for _ in range(10)]
    engine.run(until=engine.all_of(events))
    # 10 transfers × 10 bytes at 10 B/s each → all complete at t=1.
    assert engine.now == pytest.approx(1.0)


def test_negative_transfer_rejected():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    with pytest.raises(SimulationError):
        link.transfer(-1.0)


def test_invalid_rates_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        SharedBandwidth(engine, rate=0.0)
    with pytest.raises(SimulationError):
        SharedBandwidth(engine, rate=float("inf"))
    link = SharedBandwidth(engine, rate=1.0)
    with pytest.raises(SimulationError):
        link.transfer(1.0, max_rate=0.0)


def test_sequential_transfers_reuse_link_cleanly():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)

    def program():
        yield link.transfer(100.0)
        mid = engine.now
        yield link.transfer(100.0)
        return (mid, engine.now)

    mid, end = engine.run(until=engine.process(program()))
    assert mid == pytest.approx(1.0)
    assert end == pytest.approx(2.0)


def test_water_filling_fairness_under_mixed_caps():
    # Rate 100 split over caps [10, inf, inf]: the capped transfer takes its
    # 10, the two uncapped ones share the remaining 90 equally.
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    link.transfer(1000.0, max_rate=10.0)
    link.transfer(1000.0)
    link.transfer(1000.0)
    assert sorted(link._allocations().values()) == pytest.approx([10.0, 45.0, 45.0])


def test_water_filling_pays_tight_caps_first():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    link.transfer(1000.0, max_rate=10.0)
    link.transfer(1000.0, max_rate=20.0)
    link.transfer(1000.0)
    # Caps below the equal share are paid out in full; the uncapped transfer
    # absorbs everything they leave on the table (not just 100/3).
    assert sorted(link._allocations().values()) == pytest.approx([10.0, 20.0, 70.0])


def test_mixed_cap_transfers_complete_at_fair_share_times():
    engine = Engine()
    link = SharedBandwidth(engine, rate=100.0)
    done = [
        link.transfer(20.0, max_rate=10.0),  # 20 bytes at 10 B/s -> t=2
        link.transfer(90.0),                 # 90 bytes at 45 B/s -> t=2
        link.transfer(90.0),
    ]
    engine.run(until=engine.all_of(done))
    assert engine.now == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Occupancy timelines (ResourceMonitor hooks)
# ---------------------------------------------------------------------------


def test_fifo_timeline_tracks_queue_depth_through_request_release():
    engine = monitored_engine()
    resource = FifoResource(engine, capacity=1, name="dma")

    def worker(hold):
        yield resource.request()
        yield engine.timeout(hold)
        resource.release()

    for _ in range(3):
        engine.process(worker(1.0))
    engine.run()
    timeline = engine.monitor.get("dma")
    assert timeline.kind == "fifo"
    # Three simultaneous requests at t=0 coalesce into one sample; each
    # release pops exactly one waiter; the final release idles the slot.
    assert timeline.samples == [
        ResourceSample(0.0, 1, 2, True),
        ResourceSample(1.0, 1, 1, True),
        ResourceSample(2.0, 1, 0, True),
        ResourceSample(3.0, 0, 0, False),
    ]
    assert timeline.max_occupancy() == 1
    assert timeline.max_queued() == 2
    assert timeline.queued_seconds(0.0, 3.0) == pytest.approx(2.0)
    # A single-slot resource is never *contended* (needs >= 2 sharers).
    assert timeline.contended_seconds(0.0, 3.0) == 0.0


def test_fifo_use_releases_on_exception():
    engine = monitored_engine()
    resource = FifoResource(engine, capacity=1, name="dma")
    holder = resource.use(5.0)
    grant = next(holder)
    assert grant.triggered and resource.in_use == 1
    holder.send(None)  # advance past the grant, into the timed hold
    # An exception thrown into the holding generator must still release.
    with pytest.raises(RuntimeError):
        holder.throw(RuntimeError("interrupted"))
    assert resource.in_use == 0
    timeline = engine.monitor.get("dma")
    assert timeline.samples[-1] == ResourceSample(0.0, 0, 0, False)
    with pytest.raises(SimulationError):
        resource.release()


def test_bandwidth_timeline_saturation_requires_full_rate():
    engine = monitored_engine()
    link = SharedBandwidth(engine, rate=100.0, name="bus")
    done = [link.transfer(20.0, max_rate=10.0), link.transfer(90.0)]
    engine.run(until=engine.all_of(done))
    timeline = engine.monitor.get("bus")
    assert timeline.kind == "bandwidth"
    # 10 + 90 consumes the whole link: saturated with two sharers until the
    # uncapped transfer drains at t=1, then the capped one runs alone (10 of
    # 100 B/s — not saturated) until t=2.
    assert timeline.samples == [
        ResourceSample(0.0, 2, 0, True),
        ResourceSample(1.0, 1, 0, False),
        ResourceSample(2.0, 0, 0, False),
    ]
    assert timeline.contended_seconds(0.0, 2.0) == pytest.approx(1.0)


def test_bandwidth_timeline_undersubscribed_caps_not_saturated():
    # Two sharers whose caps sum below the link rate: occupancy 2 but the
    # link is NOT saturated — no false bandwidth-contention signal.
    engine = monitored_engine()
    link = SharedBandwidth(engine, rate=100.0, name="bus")
    done = [link.transfer(10.0, max_rate=10.0), link.transfer(10.0, max_rate=10.0)]
    engine.run(until=engine.all_of(done))
    timeline = engine.monitor.get("bus")
    assert timeline.samples[0] == ResourceSample(0.0, 2, 0, False)
    assert timeline.contended_seconds(0.0, 1.0) == 0.0


def test_gate_timeline_records_parked_waiters():
    engine = monitored_engine()
    gate = Gate(engine, name="intr")

    def waiter():
        yield gate.wait()

    def opener():
        yield engine.timeout(3.0)
        gate.open()

    engine.process(waiter())
    engine.process(opener())
    engine.run()
    timeline = engine.monitor.get("intr")
    assert timeline.kind == "gate"
    assert timeline.samples == [
        ResourceSample(0.0, 0, 1, False),
        ResourceSample(3.0, 1, 0, False),
    ]
    assert timeline.queued_seconds(0.0, 3.0) == pytest.approx(3.0)


def test_unmonitored_resources_record_nothing():
    engine = Engine()
    resource = FifoResource(engine, capacity=1, name="dma")
    resource.request()
    resource.release()
    assert engine.monitor is None
    assert resource._timeline is None


# ---------------------------------------------------------------------------
# Gate
# ---------------------------------------------------------------------------


def test_gate_open_passes_immediately():
    engine = Engine()
    gate = Gate(engine, open=True)
    passed = gate.wait()
    assert passed.triggered


def test_gate_closed_blocks_until_open():
    engine = Engine()
    gate = Gate(engine)
    times = []

    def waiter():
        yield gate.wait()
        times.append(engine.now)

    def opener():
        yield engine.timeout(3.0)
        gate.open()

    engine.process(waiter())
    engine.process(opener())
    engine.run()
    assert times == [3.0]


def test_gate_close_only_affects_future_waiters():
    engine = Engine()
    gate = Gate(engine, open=True)
    assert gate.wait().triggered
    gate.close()
    blocked = gate.wait()
    assert not blocked.triggered
    gate.open()
    assert blocked.triggered
