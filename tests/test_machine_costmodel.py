"""Unit tests for the cost model and eager-limit table."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import CostModel, EagerLimitTable

KB = 1024


def test_default_eager_limit_shrinks_with_task_count():
    # The §2.3 behaviour: larger jobs get a smaller eager limit.
    model = CostModel.ibm_sp_colony()
    limits = [model.eager_limit(tasks) for tasks in (16, 32, 64, 128, 256)]
    assert limits == sorted(limits, reverse=True)
    assert limits[0] == 32 * KB
    assert limits[-1] == 4 * KB


def test_eager_limit_also_capped_by_pool():
    model = CostModel.ibm_sp_colony().evolve(eager_pool_bytes=64 * KB)
    # 256 peers on a 64 KB pool -> 256 B per peer beats the 4 KB table floor.
    assert model.eager_limit(257) == 64 * KB // 256


def test_fixed_table_is_task_count_independent():
    table = EagerLimitTable.fixed(16 * KB)
    assert table.limit_for(2) == table.limit_for(10_000) == 16 * KB


def test_single_task_uses_table_limit():
    model = CostModel.ibm_sp_colony()
    assert model.eager_limit(1) == 32 * KB


def test_copy_reduce_wire_time_shapes():
    model = CostModel.ibm_sp_colony()
    assert model.copy_time(0) == pytest.approx(model.sm_copy_latency)
    assert model.copy_time(2**20) > model.copy_time(2**10)
    assert model.wire_time(0) == pytest.approx(model.net_latency)
    # The core premise: an intra-node copy is much cheaper than a wire hop.
    assert model.copy_time(1024) < model.wire_time(1024) / 5
    # Reduce streams slower than plain copy (two reads + a write + ALU).
    assert model.reduce_time(2**20) > model.copy_time(2**20)


def test_evolve_returns_modified_copy():
    base = CostModel.ibm_sp_colony()
    faster = base.evolve(net_latency=1e-6)
    assert faster.net_latency == 1e-6
    assert base.net_latency != 1e-6
    assert faster.net_bandwidth == base.net_bandwidth


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        CostModel(net_bandwidth=0)
    with pytest.raises(ConfigurationError):
        CostModel(net_latency=-1)
    with pytest.raises(ConfigurationError):
        CostModel(spin_yield_threshold=0)
    with pytest.raises(ConfigurationError):
        CostModel(eager_pool_bytes=-1)


def test_presets_are_valid_and_distinct():
    colony = CostModel.ibm_sp_colony()
    commodity = CostModel.commodity_cluster()
    fat = CostModel.fat_smp()
    assert commodity.net_latency > colony.net_latency
    assert fat.memory_bus_bandwidth > colony.memory_bus_bandwidth
