"""Unit tests for the cost model, eager-limit table, and term breakdown."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import COST_TERMS, CostModel, CostTerms, EagerLimitTable

KB = 1024


def test_default_eager_limit_shrinks_with_task_count():
    # The §2.3 behaviour: larger jobs get a smaller eager limit.
    model = CostModel.ibm_sp_colony()
    limits = [model.eager_limit(tasks) for tasks in (16, 32, 64, 128, 256)]
    assert limits == sorted(limits, reverse=True)
    assert limits[0] == 32 * KB
    assert limits[-1] == 4 * KB


def test_eager_limit_also_capped_by_pool():
    model = CostModel.ibm_sp_colony().evolve(eager_pool_bytes=64 * KB)
    # 256 peers on a 64 KB pool -> 256 B per peer beats the 4 KB table floor.
    assert model.eager_limit(257) == 64 * KB // 256


def test_fixed_table_is_task_count_independent():
    table = EagerLimitTable.fixed(16 * KB)
    assert table.limit_for(2) == table.limit_for(10_000) == 16 * KB


def test_single_task_uses_table_limit():
    model = CostModel.ibm_sp_colony()
    assert model.eager_limit(1) == 32 * KB


def test_copy_reduce_wire_time_shapes():
    model = CostModel.ibm_sp_colony()
    assert model.copy_time(0) == pytest.approx(model.sm_copy_latency)
    assert model.copy_time(2**20) > model.copy_time(2**10)
    assert model.wire_time(0) == pytest.approx(model.net_latency)
    # The core premise: an intra-node copy is much cheaper than a wire hop.
    assert model.copy_time(1024) < model.wire_time(1024) / 5
    # Reduce streams slower than plain copy (two reads + a write + ALU).
    assert model.reduce_time(2**20) > model.copy_time(2**20)


def test_evolve_returns_modified_copy():
    base = CostModel.ibm_sp_colony()
    faster = base.evolve(net_latency=1e-6)
    assert faster.net_latency == 1e-6
    assert base.net_latency != 1e-6
    assert faster.net_bandwidth == base.net_bandwidth


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        CostModel(net_bandwidth=0)
    with pytest.raises(ConfigurationError):
        CostModel(net_latency=-1)
    with pytest.raises(ConfigurationError):
        CostModel(spin_yield_threshold=0)
    with pytest.raises(ConfigurationError):
        CostModel(eager_pool_bytes=-1)


def test_presets_are_valid_and_distinct():
    colony = CostModel.ibm_sp_colony()
    commodity = CostModel.commodity_cluster()
    fat = CostModel.fat_smp()
    assert commodity.net_latency > colony.net_latency
    assert fat.memory_bus_bandwidth > colony.memory_bus_bandwidth


# ---------------------------------------------------------------------------
# cost terms + the breakdown probe
# ---------------------------------------------------------------------------


def test_cost_terms_algebra():
    a = CostTerms({"copy": 1.0, "wire": 2.0})
    b = CostTerms({"wire": 3.0, "reduce": 0.5})
    merged = a + b
    assert merged.as_dict() == {"copy": 1.0, "reduce": 0.5, "wire": 5.0}
    scaled = 3 * a
    assert scaled.as_dict() == {"copy": 3.0, "wire": 6.0}
    # Scalars fold into the catch-all "other" bucket; 0 + terms is identity
    # (so sum() works over CostTerms).
    assert (a + 1.5).as_dict()["other"] == 1.5
    assert sum([a, b]).total == pytest.approx(a.total + b.total)
    assert float(merged) == pytest.approx(6.5)
    assert a < b  # totals: 3.0 < 3.5
    assert b > a
    assert CostTerms.coerce(0).as_dict() == {}
    assert CostTerms.coerce(2.0).as_dict() == {"other": 2.0}
    assert CostTerms.coerce(a) is a


def test_probe_primitives_return_single_terms():
    model = CostModel.ibm_sp_colony()
    probe = model.probe()
    assert probe.copy_time(KB).as_dict() == {"copy": model.copy_time(KB)}
    assert probe.wire_time(KB).as_dict() == {"wire": model.wire_time(KB)}
    assert probe.reduce_time(KB).as_dict() == {"reduce": model.reduce_time(KB)}
    # Non-primitive attributes pass through to the wrapped model.
    assert probe.net_latency == model.net_latency
    assert set(COST_TERMS) == {"copy", "wire", "reduce", "eager"}


def test_eager_time_is_zero_below_the_limit():
    model = CostModel.ibm_sp_colony()
    limit = model.eager_limit(16)
    assert model.eager_time(limit, 16) == 0.0
    penalty = model.eager_time(limit + 1, 16)
    assert penalty == pytest.approx(
        2 * (model.rendezvous_control_cost + model.net_latency)
    )
    probed = model.probe().eager_time(limit + 1, 16)
    assert probed.as_dict() == {"eager": penalty}


def test_probe_breakdown_totals_match_plain_estimates_for_every_variant():
    # The invariant predict_terms rests on: every registered cost hook is a
    # linear combination of the model primitives, so evaluating it against
    # the probe yields the same total as evaluating it against the model.
    from repro.core import SRMConfig
    from repro.core.dispatch import (
        SelectionEnv,
        predict_terms,
        registered_ops,
        variants_for,
    )

    model = CostModel.ibm_sp_colony()
    config = SRMConfig()
    checked = 0
    for op in registered_ops():
        for entry in variants_for(op):
            for nbytes in (0, 1, 8 * KB, 64 * KB + 1, 2**20):
                for nodes in (1, 2, 16):
                    env = SelectionEnv(
                        op=op, nbytes=nbytes, nodes=nodes, ppn=16,
                        config=config, cost=model,
                    )
                    terms, total = predict_terms(entry, env)
                    assert total == pytest.approx(entry.cost(env), rel=1e-12)
                    assert total == pytest.approx(sum(terms.values()), rel=1e-12)
                    assert set(terms) <= set(COST_TERMS) | {"other"}
                    checked += 1
    assert checked > 100
