"""Unit tests for shared segments, flags, and double buffers."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.shmem import DoubleBuffer, FlagArray, SharedFlag, SharedSegment


@pytest.fixture
def machine():
    return Machine(ClusterSpec(nodes=2, tasks_per_node=4))


# ---------------------------------------------------------------------------
# SharedSegment
# ---------------------------------------------------------------------------


def test_segment_allocation_and_visibility(machine):
    segment = SharedSegment(machine.nodes[0], 4096)
    a = segment.allocate(128)
    b = segment.allocate(128)
    a[:] = 7
    assert not np.shares_memory(a, b)
    # Views into the same region alias the same bytes (shared memory).
    again = segment.view(0, 128)
    assert np.array_equal(again, a)


def test_segment_alignment_is_cache_line(machine):
    segment = SharedSegment(machine.nodes[0], 4096)
    segment.allocate(1)
    second = segment.allocate(1)
    # Second allocation starts at the next 64-byte boundary.
    offset = second.__array_interface__["data"][0] - segment.view(0, 1).__array_interface__["data"][0]
    assert offset == 64


def test_segment_exhaustion_raises(machine):
    segment = SharedSegment(machine.nodes[0], 100)
    segment.allocate(80)
    with pytest.raises(ProtocolError):
        segment.allocate(80)


def test_segment_view_bounds_checked(machine):
    segment = SharedSegment(machine.nodes[0], 100)
    with pytest.raises(ProtocolError):
        segment.view(90, 20)
    with pytest.raises(ProtocolError):
        segment.view(-1, 5)


def test_segment_typed_views(machine):
    segment = SharedSegment(machine.nodes[0], 1024)
    doubles = segment.allocate(8 * 10, dtype=np.float64)
    assert doubles.shape == (10,)
    doubles[:] = 1.5
    assert segment.view(0, 80, dtype=np.float64)[0] == 1.5


# ---------------------------------------------------------------------------
# SharedFlag
# ---------------------------------------------------------------------------


def test_flag_set_and_wait(machine):
    node = machine.nodes[0]
    flag = SharedFlag(node, name="t")
    t0, t1 = machine.task(0), machine.task(1)
    times = {}

    def setter(t):
        yield t.engine.timeout(5e-6)
        yield from flag.set(t, 1)
        times["set"] = t.engine.now

    def waiter(t):
        value = yield from flag.wait_value(t, 1)
        times["seen"] = t.engine.now
        return value

    def program(t):
        if t.rank == 0:
            yield from setter(t)
        else:
            result = yield from waiter(t)
            return result

    result = machine.launch(program, ranks=[0, 1])
    assert result.results[1] == 1
    # Waiter observes the flag one poll interval after the set.
    assert times["seen"] == pytest.approx(times["set"] + machine.cost.flag_poll_interval)
    del t0, t1


def test_flag_wait_already_satisfied_costs_one_poll(machine):
    node = machine.nodes[0]
    flag = SharedFlag(node, initial=3)

    def program(t):
        yield from flag.wait_value(t, 3)

    elapsed = machine.launch(program, ranks=[0]).elapsed
    assert elapsed == pytest.approx(machine.cost.flag_poll_interval)


def test_flag_long_wait_yields_cpu(machine):
    node = machine.nodes[0]
    flag = SharedFlag(node)
    spin_window = machine.cost.spin_yield_threshold * machine.cost.flag_poll_interval

    def setter(t):
        yield t.engine.timeout(spin_window * 10)
        yield from flag.set(t, 1)

    def waiter(t):
        yield from flag.wait_value(t, 1)

    def program(t):
        if t.rank == 0:
            yield from setter(t)
        else:
            yield from waiter(t)

    machine.launch(program, ranks=[0, 1])
    assert machine.task(1).stats.yields == 1


def test_flag_cross_node_access_rejected(machine):
    flag = SharedFlag(machine.nodes[0])
    remote_task = machine.task(4)  # lives on node 1

    def program(t):
        yield from flag.set(t, 1)

    with pytest.raises(ProtocolError):
        machine.launch(program, ranks=[4])
    del remote_task


def test_flag_untimed_store_wakes_waiters(machine):
    flag = SharedFlag(machine.nodes[0])

    def waiter(t):
        value = yield from flag.wait_for(t, lambda v: v >= 2)
        return value

    def poker(t):
        yield t.engine.timeout(1e-6)
        flag.store(1)  # not enough
        yield t.engine.timeout(1e-6)
        flag.store(2)  # wakes the waiter

    def program(t):
        if t.rank == 0:
            result = yield from waiter(t)
            return result
        yield from poker(t)

    result = machine.launch(program, ranks=[0, 1])
    assert result.results[0] == 2


# ---------------------------------------------------------------------------
# FlagArray
# ---------------------------------------------------------------------------


def test_flag_array_wait_all_and_reset(machine):
    node = machine.nodes[0]
    flags = FlagArray(node, 4)

    def program(t):
        local = t.local_index
        if local == 0:
            # Master: wait for everyone else, then reset them.
            yield from flags.wait_all(t, lambda v: v == 1, skip=0)
            yield from flags.set_all(t, 0, skip=0)
            return flags.values()
        yield t.engine.timeout(1e-6 * local)
        yield from flags[local].set(t, 1)

    result = machine.launch(program, ranks=[0, 1, 2, 3])
    assert result.results[0] == [0, 0, 0, 0]


def test_flag_array_wait_all_immediate_when_satisfied(machine):
    flags = FlagArray(machine.nodes[0], 3, initial=1)

    def program(t):
        yield from flags.wait_all(t, lambda v: v == 1)

    elapsed = machine.launch(program, ranks=[0]).elapsed
    assert elapsed == pytest.approx(machine.cost.flag_poll_interval)


def test_flag_array_set_all_cost_scales_with_count(machine):
    flags = FlagArray(machine.nodes[0], 8)

    def program(t):
        yield from flags.set_all(t, 5)

    elapsed = machine.launch(program, ranks=[0]).elapsed
    assert elapsed == pytest.approx(8 * machine.cost.flag_set_cost)
    assert flags.values() == [5] * 8


def test_flag_array_needs_at_least_one(machine):
    with pytest.raises(ProtocolError):
        FlagArray(machine.nodes[0], 0)


# ---------------------------------------------------------------------------
# DoubleBuffer
# ---------------------------------------------------------------------------


def test_double_buffer_alternation(machine):
    dbuf = DoubleBuffer(machine.nodes[0], 1024, flags_per_buffer=4)
    slots = [dbuf.next_slot() for _ in range(5)]
    assert slots == [0, 1, 0, 1, 0]
    assert dbuf.peek_slot() == 1


def test_double_buffer_views_and_flags(machine):
    dbuf = DoubleBuffer(machine.nodes[0], 1024, flags_per_buffer=4)
    view = dbuf.data(0, 100)
    view[:] = 9
    assert np.all(dbuf.data(0, 100) == 9)
    assert len(dbuf.flags(0)) == 4
    assert len(dbuf.flags(1)) == 4


def test_double_buffer_bounds(machine):
    dbuf = DoubleBuffer(machine.nodes[0], 64, flags_per_buffer=2)
    with pytest.raises(ProtocolError):
        dbuf.data(0, 65)
    with pytest.raises(ProtocolError):
        dbuf.data(2, 10)
    with pytest.raises(ProtocolError):
        dbuf.flags(3)
    with pytest.raises(ProtocolError):
        DoubleBuffer(machine.nodes[0], 0, flags_per_buffer=1)
