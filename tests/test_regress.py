"""Tests for the snapshot regression gate (compare, attribute, CLI)."""

import copy

import pytest

import json

from repro.bench.regress import (
    DIFF_KIND,
    SchemaMismatchError,
    compare_snapshots,
    diff_document,
    format_report,
)
from repro.bench.snapshot import SCHEMA_VERSION, SNAPSHOT_KIND, write_snapshot
from repro.cli import main
from repro.errors import ConfigurationError


def make_cell(operation="allreduce", stack="srm", nbytes=1024, nodes=2,
              us=100.0, phases=None, waits=None):
    critical = None
    if phases is not None:
        critical = {
            "total_us": us,
            "attributed_us": us,
            "segments": 4,
            "ranks": 2,
            "phases_us": phases,
        }
    return {
        "operation": operation,
        "stack": stack,
        "nbytes": nbytes,
        "nodes": nodes,
        "total_tasks": nodes * 16,
        "repeats": 3,
        "microseconds": us,
        "metrics": {},
        "critical_path": critical,
        "wait_states": waits or {},
    }


def make_snapshot(cells, label="base", version=SCHEMA_VERSION, identity=None):
    return {
        "kind": SNAPSHOT_KIND,
        "schema_version": version,
        "label": label,
        "identity": identity if identity is not None else {"version": "1.0"},
        "fingerprint": "0" * 12,
        "grid": {},
        "cells": cells,
    }


BASE_PHASES = {"counter-wait": 60.0, "smp-reduce": 40.0}


def test_identical_snapshots_pass():
    base = make_snapshot([make_cell(phases=BASE_PHASES)])
    report = compare_snapshots(base, copy.deepcopy(base))
    assert report.ok
    assert [cell.status for cell in report.cells] == ["pass"]
    assert "gate: PASS" in format_report(report)


def test_drift_within_tolerance_passes():
    base = make_snapshot([make_cell(us=100.0)])
    cand = make_snapshot([make_cell(us=103.0)])
    report = compare_snapshots(base, cand, tolerance=0.05)
    assert report.ok
    assert [cell.status for cell in report.cells] == ["drift"]


def test_regression_fails_and_names_grown_phase():
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES)])
    cand = make_snapshot(
        [make_cell(us=200.0, phases={"counter-wait": 160.0, "smp-reduce": 40.0})]
    )
    report = compare_snapshots(base, cand)
    assert not report.ok
    [cell] = report.regressions
    assert cell.ratio == pytest.approx(2.0)
    assert cell.dominant_phase == "counter-wait"
    assert cell.phase_deltas_us["counter-wait"] == pytest.approx(100.0)
    text = format_report(report)
    assert "REGRESSION" in text
    assert "localized to counter-wait" in text
    assert "gate: FAIL" in text


def test_regression_attribution_falls_back_to_heaviest_phase():
    # A uniformly-scaled snapshot has no positive phase delta to blame; the
    # report still names the heaviest candidate phase.
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES)])
    cand = make_snapshot([make_cell(us=200.0, phases=BASE_PHASES)])
    report = compare_snapshots(base, cand)
    [cell] = report.regressions
    assert cell.dominant_phase == "counter-wait"
    assert "dominant critical-path phase: counter-wait" in format_report(report)


def test_regression_without_phase_data_still_fails():
    base = make_snapshot([make_cell(stack="ibm", us=100.0)])
    cand = make_snapshot([make_cell(stack="ibm", us=200.0)])
    report = compare_snapshots(base, cand)
    assert not report.ok
    assert report.regressions[0].dominant_phase is None


def test_regression_names_dominant_wait_state_and_resource():
    base = make_snapshot([make_cell(
        us=100.0, phases=BASE_PHASES,
        waits={"late-release|ring-step|-": 40.0},
    )])
    cand = make_snapshot([make_cell(
        us=200.0, phases={"counter-wait": 160.0, "smp-reduce": 40.0},
        waits={"late-release|ring-step|-": 30.0,
               "bandwidth-contention|ring-step|bus[0]": 120.0},
    )])
    report = compare_snapshots(base, cand)
    [cell] = report.regressions
    assert cell.dominant_wait == "bandwidth-contention on bus[0] during ring-step"
    assert cell.wait_delta_us == pytest.approx(120.0)
    text = format_report(report)
    # The wait-state attribution outranks the phase fallback in the report.
    assert "-- +120.0 us of bandwidth-contention on bus[0] during ring-step" in text
    assert "localized to" not in text


def test_regression_without_wait_growth_keeps_phase_attribution():
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES,
                                    waits={"late-sender|-|-": 50.0})])
    cand = make_snapshot(
        [make_cell(us=200.0, phases={"counter-wait": 160.0, "smp-reduce": 40.0},
                   waits={"late-sender|-|-": 50.0})]
    )
    report = compare_snapshots(base, cand)
    [cell] = report.regressions
    assert cell.dominant_wait is None
    assert "localized to counter-wait" in format_report(report)


def test_diff_document_covers_every_moved_cell():
    unchanged = make_cell(nbytes=512, phases=BASE_PHASES)
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES,
                                    waits={"late-sender|-|-": 20.0}),
                          unchanged])
    cand = make_snapshot([make_cell(us=200.0, phases=BASE_PHASES,
                                    waits={"late-sender|-|-": 130.0}),
                          copy.deepcopy(unchanged)], label="head")
    report = compare_snapshots(base, cand)
    document = diff_document(base, cand, report)
    json.dumps(document)
    assert document["kind"] == DIFF_KIND
    assert document["baseline_label"] == "base"
    assert document["candidate_label"] == "head"
    assert document["ok"] is False
    assert document["compared"] == 2
    # Only the moved cell is analyzed; the identical one is skipped.
    [entry] = document["cells"]
    assert entry["key"] == ["allreduce", "srm", 1024, 2]
    assert entry["status"] == "regression"
    assert "+110.0us of late-sender" in entry["headline"]


def test_improvement_passes():
    base = make_snapshot([make_cell(us=100.0)])
    cand = make_snapshot([make_cell(us=50.0)])
    report = compare_snapshots(base, cand)
    assert report.ok
    assert [cell.status for cell in report.cells] == ["improvement"]
    assert "improvement" in format_report(report)


def test_missing_cell_fails_added_cell_passes():
    kept = make_cell(nbytes=1024)
    dropped = make_cell(nbytes=8192)
    new = make_cell(nbytes=512)
    report = compare_snapshots(
        make_snapshot([kept, dropped]), make_snapshot([kept, new])
    )
    assert not report.ok
    assert report.missing == [("allreduce", "srm", 8192, 2)]
    assert report.added == [("allreduce", "srm", 512, 2)]
    assert "MISSING" in format_report(report)
    # Additions alone do not fail the gate.
    assert compare_snapshots(make_snapshot([kept]), make_snapshot([kept, new])).ok


def test_schema_version_mismatch_raises():
    good = make_snapshot([make_cell()])
    stale = make_snapshot([make_cell()], version=SCHEMA_VERSION + 1)
    with pytest.raises(SchemaMismatchError):
        compare_snapshots(stale, good)
    with pytest.raises(SchemaMismatchError):
        compare_snapshots(good, stale)


def test_negative_tolerance_rejected():
    base = make_snapshot([make_cell()])
    with pytest.raises(ConfigurationError):
        compare_snapshots(base, base, tolerance=-0.1)


def test_identity_drift_is_reported_not_fatal():
    base = make_snapshot([make_cell()], identity={"version": "1.0",
                                                  "cost_model": {"latency": 1.0}})
    cand = make_snapshot([make_cell()], identity={"version": "1.1",
                                                  "cost_model": {"latency": 2.0}})
    report = compare_snapshots(base, cand)
    assert report.ok
    assert report.identity_drift == ["cost_model.latency", "version"]
    assert "identity drift" in format_report(report)


def test_verbose_report_lists_every_cell():
    base = make_snapshot([make_cell(us=100.0)])
    report = compare_snapshots(base, copy.deepcopy(base))
    assert "pass allreduce" in format_report(report, verbose=True)


# -- CLI --------------------------------------------------------------------


def write_pair(tmp_path, base, cand):
    base_path = tmp_path / "BENCH_base.json"
    cand_path = tmp_path / "BENCH_cand.json"
    write_snapshot(str(base_path), base)
    write_snapshot(str(cand_path), cand)
    return str(base_path), str(cand_path)


def test_cli_regress_pass_exit_zero(tmp_path, capsys):
    base = make_snapshot([make_cell(phases=BASE_PHASES)])
    base_path, cand_path = write_pair(tmp_path, base, copy.deepcopy(base))
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path])
    out = capsys.readouterr().out
    assert code == 0
    assert "gate: PASS" in out


def test_cli_regress_injected_slowdown_exits_nonzero(tmp_path, capsys):
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES)])
    cand = copy.deepcopy(base)
    cand["cells"][0]["microseconds"] *= 2  # inject a 2x slowdown in one cell
    base_path, cand_path = write_pair(tmp_path, base, cand)
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path])
    out = capsys.readouterr().out
    assert code == 1
    assert "REGRESSION allreduce srm 1KB x2 nodes" in out
    # The dominant critical-path phase is always named for SRM cells.
    assert "counter-wait" in out


def test_cli_regress_diff_out_writes_artifact(tmp_path, capsys):
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES,
                                    waits={"late-sender|-|-": 20.0})])
    cand = make_snapshot([make_cell(us=200.0, phases=BASE_PHASES,
                                    waits={"late-sender|-|-": 140.0})])
    base_path, cand_path = write_pair(tmp_path, base, cand)
    diff_path = tmp_path / "DIFF.json"
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path,
                 "--diff-out", str(diff_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert f"wrote differential trace analysis to {diff_path}" in out
    document = json.loads(diff_path.read_text())
    assert document["kind"] == DIFF_KIND
    assert document["cells"][0]["status"] == "regression"


def test_cli_regress_trace_out_skipped_without_regressions(tmp_path, capsys):
    base = make_snapshot([make_cell(phases=BASE_PHASES)])
    base_path, cand_path = write_pair(tmp_path, base, copy.deepcopy(base))
    trace_path = tmp_path / "TRACE.json"
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path,
                 "--trace-out", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no regressions; skipping --trace-out" in out
    assert not trace_path.exists()


def test_cli_regress_trace_out_rebuilds_worst_cell(tmp_path, capsys):
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES)])
    cand = make_snapshot([make_cell(us=250.0, phases=BASE_PHASES)])
    base_path, cand_path = write_pair(tmp_path, base, cand)
    trace_path = tmp_path / "TRACE.json"
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path,
                 "--trace-out", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "wrote Perfetto trace of worst regression" in out
    events = json.loads(trace_path.read_text())
    assert any(event.get("cat") == "phase" for event in events)


def test_cli_regress_update_rewrites_baseline(tmp_path, capsys):
    base = make_snapshot([make_cell(us=100.0, phases=BASE_PHASES)])
    cand = make_snapshot([make_cell(us=200.0, phases=BASE_PHASES)], label="head")
    base_path, cand_path = write_pair(tmp_path, base, cand)
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path,
                 "--update"])
    assert code == 0
    assert "updated baseline" in capsys.readouterr().out
    # The rewritten baseline now matches the candidate: the gate passes.
    code = main(["regress", "--baseline", base_path, "--candidate", cand_path])
    capsys.readouterr()
    assert code == 0
