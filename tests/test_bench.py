"""Unit tests for the benchmark harness."""

import pytest

from repro.bench import (
    Measurement,
    build,
    clear_cache,
    format_bytes,
    format_us,
    measure,
    message_sizes,
    processor_configs,
    ratio_percent,
    small_message_sizes,
    sweep,
    table,
    time_operation,
)
from repro.core import SRM
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec
from repro.mpi.collectives import IbmMpi, Mpich


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


SPEC = ClusterSpec(nodes=2, tasks_per_node=4)


def test_build_returns_matching_stack():
    machine, stack = build("srm", SPEC)
    assert isinstance(stack, SRM)
    machine, stack = build("ibm", SPEC)
    assert isinstance(stack, IbmMpi)
    machine, stack = build("mpich", SPEC)
    assert isinstance(stack, Mpich)


def test_build_unknown_stack_rejected():
    with pytest.raises(ConfigurationError):
        build("openmpi", SPEC)


def test_mpich_machine_gets_tuned_cost():
    ibm_machine, _ = build("ibm", SPEC)
    mpich_machine, _ = build("mpich", SPEC)
    assert mpich_machine.cost.mpi_send_overhead > ibm_machine.cost.mpi_send_overhead


def test_time_operation_all_operations():
    for operation in ("broadcast", "reduce", "allreduce", "barrier"):
        machine, stack = build("srm", SPEC)
        measurement = time_operation(machine, stack, operation, 256, repeats=2)
        assert measurement.seconds > 0
        assert measurement.operation == operation
        assert measurement.total_tasks == 8


def test_time_operation_validates_input():
    machine, stack = build("srm", SPEC)
    with pytest.raises(ConfigurationError):
        time_operation(machine, stack, "alltoall", 8)
    with pytest.raises(ConfigurationError):
        time_operation(machine, stack, "broadcast", 8, repeats=0)


def test_warmup_reaches_steady_state():
    # Repeated measurement passes on one machine stay in the same regime
    # (launch boundaries flush stalled acknowledgements, so perfect equality
    # is not expected — only stability within a factor).
    machine, stack = build("srm", SPEC)
    first = time_operation(machine, stack, "broadcast", 1024, repeats=3, warmup=1)
    second = time_operation(machine, stack, "broadcast", 1024, repeats=3, warmup=0)
    assert 0.5 * first.seconds < second.seconds < 2.0 * first.seconds


def test_measurement_repr_and_units():
    measurement = Measurement("srm", "broadcast", 64, 8, 12.5e-6, 3)
    assert measurement.microseconds == pytest.approx(12.5)
    assert "srm" in repr(measurement)


def test_measure_is_memoized():
    first = measure("srm", "broadcast", 512, nodes=2, tasks_per_node=4)
    second = measure("srm", "broadcast", 512, nodes=2, tasks_per_node=4)
    assert first is second


def test_sweep_covers_sizes():
    results = sweep("srm", "broadcast", [8, 64], nodes=2)
    assert [m.nbytes for m in results] == [8, 64]


def test_ratio_percent():
    fast = Measurement("srm", "broadcast", 8, 8, 1e-6, 1)
    slow = Measurement("ibm", "broadcast", 8, 8, 4e-6, 1)
    assert ratio_percent(fast, slow) == pytest.approx(25.0)


def test_grids_have_paper_endpoints():
    assert message_sizes()[0] == 8
    assert message_sizes()[-1] == 8 * 1024 * 1024
    assert small_message_sizes()[-1] == 64 * 1024
    assert processor_configs()[-1] == 16  # 256 CPUs at 16/node


def test_format_helpers():
    assert format_bytes(8) == "8B"
    assert format_bytes(4096) == "4KB"
    assert format_bytes(8 * 1024 * 1024) == "8MB"
    assert format_us(1.5e-6) == "1.50"
    assert "," in format_us(0.5)  # 500,000 us


def test_table_alignment():
    rendered = table(["a", "bb"], [[1, 2], [33, 44]])
    lines = rendered.splitlines()
    assert len(lines) == 4
    assert lines[0].endswith("bb")
