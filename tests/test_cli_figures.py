"""Tests for the ASCII chart renderer and the CLI."""

import pytest

from repro.bench.figures import ascii_chart
from repro.cli import main


# ---------------------------------------------------------------------------
# ascii_chart
# ---------------------------------------------------------------------------


def test_chart_contains_points_and_legend():
    art = ascii_chart(
        "demo",
        [("alpha", "a", [(1.0, 10.0), (100.0, 1000.0)]), ("beta", "b", [(10.0, 100.0)])],
        width=40,
        height=10,
    )
    assert art.startswith("demo")
    assert "a" in art and "b" in art
    assert "a=alpha" in art and "b=beta" in art


def test_chart_log_extremes_on_borders():
    art = ascii_chart("d", [("s", "#", [(1.0, 1.0), (1000.0, 1000.0)])], width=30, height=8)
    rows = [line for line in art.splitlines() if "|" in line]
    # Min point bottom-left, max point top-right.
    assert rows[0].rstrip().endswith("#")
    assert rows[-1].split("|")[1].startswith("#")


def test_chart_linear_axes():
    art = ascii_chart(
        "lin",
        [("s", "*", [(0.0, 0.0), (10.0, 5.0)])],
        width=20,
        height=6,
        log_x=False,
        log_y=False,
        x_label="procs",
    )
    assert "procs" in art


def test_chart_rejects_nonpositive_on_log_axis():
    with pytest.raises(ValueError):
        ascii_chart("bad", [("s", "*", [(0.0, 1.0), (10.0, 2.0)])])


def test_chart_empty():
    assert "(no data)" in ascii_chart("empty", [])


def test_chart_unit_formatting():
    art = ascii_chart("u", [("s", "*", [(8.0, 1.0), (8.0e6, 1.0e6)])], width=30, height=6)
    assert "8M" in art  # megabyte x end
    assert "1M" in art  # mega-us y end


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "net_latency" in out
    assert "small_protocol_max" in out


def test_cli_compare(capsys):
    assert main(["compare", "--op", "barrier", "--nodes", "2", "--tasks", "2"]) == 0
    out = capsys.readouterr().out
    assert "SRM" in out and "MPICH" in out
    assert "100.0%" in out


def test_cli_trace(capsys):
    assert (
        main(["trace", "--op", "reduce", "--bytes", "1024", "--nodes", "2", "--tasks", "2"])
        == 0
    )
    out = capsys.readouterr().out
    assert "rank" in out
    assert "makespan" in out


def test_cli_trace_mpi_stack(capsys):
    assert main(["trace", "--op", "barrier", "--stack", "ibm", "--nodes", "2", "--tasks", "2"]) == 0
    assert "MPI sends" in capsys.readouterr().out


def test_cli_unknown_figure(capsys):
    assert main(["figures", "--fig", "99"]) == 2


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
