"""Tests for differential trace analysis (repro.obs.diff)."""

import json

import numpy as np
import pytest

from repro.bench.runner import build
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM
from repro.obs.diff import (
    WaitDelta,
    capture_profile,
    diff_cells,
    diff_profiles,
    format_diff,
)


def profile(us, phases=None, waits=None):
    return {
        "microseconds": us,
        "critical_path": {"phases_us": phases or {}},
        "wait_states": waits or {},
    }


# ---------------------------------------------------------------------------
# Alignment and attribution
# ---------------------------------------------------------------------------


def test_regression_headline_names_grown_wait_bucket():
    base = profile(100.0, {"ring-step": 60.0},
                   {"late-sender|ring-step|-": 30.0})
    cand = profile(110.0, {"ring-step": 70.0},
                   {"late-sender|ring-step|-": 25.0,
                    "bandwidth-contention|ring-step|bus[0]": 15.0})
    diff = diff_profiles(base, cand, label="allreduce srm")
    assert diff.delta_us == pytest.approx(10.0)
    assert diff.ratio == pytest.approx(1.1)
    wait = diff.dominant_wait()
    assert wait is not None
    assert wait.state == "bandwidth-contention"
    assert wait.resource == "bus[0]"
    line = diff.headline()
    assert "regressed +10.0%" in line
    assert "+15.0us of bandwidth-contention on bus[0] during ring-step" in line


def test_improvement_headline_names_shrunk_bucket():
    base = profile(100.0, waits={"late-release|ring-step|-": 40.0})
    cand = profile(80.0, waits={"late-release|ring-step|-": 18.0})
    line = diff_profiles(base, cand).headline()
    assert "improved -20.0%" in line
    assert "-22.0us of late-release during ring-step" in line


def test_unchanged_runs_have_no_dominant_entries():
    base = profile(100.0, {"shm-copy": 100.0}, {"late-sender|-|-": 5.0})
    diff = diff_profiles(base, dict(base))
    assert diff.dominant_wait() is None
    assert diff.dominant_phase() is None
    assert "unchanged" in diff.headline()
    assert "no phase or wait-state movement" in format_diff(diff)


def test_regression_without_wait_movement_falls_back_to_phase():
    base = profile(100.0, {"shm-copy": 100.0})
    cand = profile(120.0, {"shm-copy": 120.0})
    line = diff_profiles(base, cand).headline()
    assert "+20.0us of shm-copy on the critical path" in line


def test_wait_delta_label_skips_placeholder_parts():
    full = WaitDelta("bandwidth-contention", "ring-step", "bus[0]", 0.0, 1.0)
    assert full.label == "bandwidth-contention on bus[0] during ring-step"
    bare = WaitDelta("late-sender", "-", "-", 0.0, 1.0)
    assert bare.label == "late-sender"


def test_deltas_sorted_largest_growth_first():
    base = profile(100.0, waits={"a|x|-": 10.0, "b|y|-": 10.0})
    cand = profile(130.0, waits={"a|x|-": 30.0, "b|y|-": 5.0, "c|z|-": 15.0})
    diff = diff_profiles(base, cand)
    assert [w.state for w in diff.waits] == ["a", "c", "b"]


def test_to_dict_is_sorted_and_serializable():
    base = profile(100.0, {"b": 2.0, "a": 1.0}, {"z|x|-": 1.0, "a|y|-": 2.0})
    cand = profile(150.0, {"a": 51.0, "b": 2.0}, {"z|x|-": 40.0})
    data = diff_profiles(base, cand, label="cell").to_dict()
    json.dumps(data)
    assert list(data["phases_us"]) == sorted(data["phases_us"])
    assert list(data["wait_states_us"]) == sorted(data["wait_states_us"])
    assert data["headline"].startswith("cell:")
    # Dropped buckets still appear, with candidate 0.
    assert data["wait_states_us"]["a|y|-"] == {"baseline": 2.0, "candidate": 0.0}


def test_zero_baseline_ratio_edge_cases():
    assert diff_profiles(profile(0.0), profile(0.0)).ratio == 1.0
    assert diff_profiles(profile(0.0), profile(5.0)).ratio == float("inf")


def test_missing_critical_path_diffs_as_empty():
    diff = diff_profiles({"microseconds": 10.0, "critical_path": None},
                         {"microseconds": 12.0})
    assert diff.phases == []
    assert diff.delta_us == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Live captures and cell diffs
# ---------------------------------------------------------------------------


def run_allreduce():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    total = machine.spec.total_tasks
    sources = {r: np.full(512, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(512) for r in range(total)}

    def program(task):
        yield from stack.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    result = machine.launch(program)
    return machine, result


def test_capture_profile_has_snapshot_cell_shape():
    machine, result = run_allreduce()
    data = capture_profile(machine, result.start_time, result.end_time)
    assert data["microseconds"] == pytest.approx(result.elapsed * 1e6)
    assert data["critical_path"]["phases_us"]
    assert data["wait_states"]
    json.dumps(data)


def test_capture_profile_self_diff_is_unchanged():
    machine, result = run_allreduce()
    data = capture_profile(machine, result.start_time, result.end_time)
    diff = diff_profiles(data, data)
    assert diff.delta_us == pytest.approx(0.0)
    assert "unchanged" in diff.headline()


def test_diff_cells_labels_from_grid_key():
    base = profile(100.0)
    cand = profile(120.0)
    for cell in (base, cand):
        cell.update(operation="allreduce", stack="srm", nbytes=65536, nodes=8)
    diff = diff_cells(base, cand)
    assert diff.label == "allreduce srm 64KB x8 nodes"
    assert diff.label in diff.headline()


def test_format_diff_renders_movement_tables():
    base = profile(100.0, {"ring-step": 50.0},
                   {"late-release|ring-step|-": 20.0})
    cand = profile(140.0, {"ring-step": 90.0},
                   {"late-release|ring-step|-": 55.0})
    text = format_diff(diff_profiles(base, cand))
    assert "critical path:" in text
    assert "wait states:" in text
    assert "ring-step" in text
    assert "late-release during ring-step" in text
