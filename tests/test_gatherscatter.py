"""Tests for the block-data collectives (scatter / gather / allgather)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build
from repro.core import SRM
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, Machine

STACKS = ("srm", "ibm", "mpich")


def blocks_for(total, block_elems, dtype=np.uint8):
    """Deterministic distinct block content per rank."""
    return {
        r: np.full(block_elems, (r * 7 + 3) % 251, dtype=dtype) for r in range(total)
    }


def expected_concat(blocks, total):
    return np.concatenate([blocks[r] for r in range(total)])


# ---------------------------------------------------------------------------
# scatter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACKS)
@pytest.mark.parametrize("root", [0, 3, 5])
def test_scatter_all_stacks(name, root):
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=4))
    total = 8
    block = 96
    blocks = blocks_for(total, block)
    sendbuf = expected_concat(blocks, total)
    outs = {r: np.zeros(block, np.uint8) for r in range(total)}

    def program(task):
        src = sendbuf if task.rank == root else None
        yield from stack.scatter(task, src, outs[task.rank], root=root)

    machine.launch(program)
    for rank in range(total):
        assert np.array_equal(outs[rank], blocks[rank]), f"{name} rank {rank}"


def test_scatter_root_needs_buffer():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.scatter(task, None, np.zeros(8, np.uint8), root=0)

    with pytest.raises(ConfigurationError):
        machine.launch(program)


def test_scatter_size_validation():
    machine, stack = build("ibm", ClusterSpec(nodes=1, tasks_per_node=2))
    bad = np.zeros(7, np.uint8)  # not 2 x block

    def program(task):
        src = bad if task.rank == 0 else None
        yield from stack.scatter(task, src, np.zeros(8, np.uint8), root=0)

    with pytest.raises(ValueError):
        machine.launch(program)


# ---------------------------------------------------------------------------
# gather
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACKS)
@pytest.mark.parametrize("root", [0, 2, 7])
def test_gather_all_stacks(name, root):
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=4))
    total = 8
    block = 64
    blocks = blocks_for(total, block)
    recvbuf = np.zeros(block * total, np.uint8)

    def program(task):
        dst = recvbuf if task.rank == root else None
        yield from stack.gather(task, blocks[task.rank], dst, root=root)

    machine.launch(program)
    assert np.array_equal(recvbuf, expected_concat(blocks, total))


def test_gather_root_needs_buffer():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.gather(task, np.ones(8, np.uint8), None, root=0)

    with pytest.raises(ConfigurationError):
        machine.launch(program)


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACKS)
@pytest.mark.parametrize("nodes,tasks", [(1, 3), (2, 4), (3, 2)])
def test_allgather_all_stacks(name, nodes, tasks):
    machine, stack = build(name, ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    block = 48
    blocks = blocks_for(total, block)
    outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

    def program(task):
        yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program)
    expected = expected_concat(blocks, total)
    for rank in range(total):
        assert np.array_equal(outs[rank], expected), f"{name} rank {rank}"


def test_allgather_single_task():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=1))
    out = np.zeros(16, np.uint8)

    def program(task):
        yield from stack.allgather(task, np.full(16, 9, np.uint8), out)

    machine.launch(program)
    assert np.all(out == 9)


# ---------------------------------------------------------------------------
# SRM specifics
# ---------------------------------------------------------------------------


def test_srm_scatter_uses_puts_not_messages():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    blocks = blocks_for(4, 32)
    sendbuf = expected_concat(blocks, 4)
    outs = {r: np.zeros(32, np.uint8) for r in range(4)}

    def program(task):
        src = sendbuf if task.rank == 0 else None
        yield from stack.scatter(task, src, outs[task.rank], root=0)

    machine.launch(program)
    assert sum(t.mpi.stats.sends for t in machine.tasks) == 0
    assert sum(t.lapi.stats.puts for t in machine.tasks) >= 3


def test_srm_gather_repeated_calls():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    for call in range(3):
        blocks = {r: np.full(40, call * 10 + r, np.uint8) for r in range(4)}
        recvbuf = np.zeros(160, np.uint8)

        def program(task):
            dst = recvbuf if task.rank == 1 else None
            yield from stack.gather(task, blocks[task.rank], dst, root=1)

        machine.launch(program)
        assert np.array_equal(recvbuf, np.concatenate([blocks[r] for r in range(4)]))


def test_srm_group_gather():
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
    members = [1, 2, 6, 11, 12]
    srm = SRM(machine, group=members)
    blocks = {r: np.full(24, r, np.uint8) for r in members}
    recvbuf = np.zeros(24 * len(members), np.uint8)

    def program(task):
        dst = recvbuf if task.rank == 6 else None
        yield from srm.gather(task, blocks[task.rank], dst, root=6)

    machine.launch(program, ranks=members)
    assert np.array_equal(recvbuf, np.concatenate([blocks[r] for r in members]))


def test_srm_group_allgather():
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
    members = [0, 5, 10, 15]
    srm = SRM(machine, group=members)
    blocks = {r: np.full(16, r + 1, np.uint8) for r in members}
    outs = {r: np.zeros(64, np.uint8) for r in members}

    def program(task):
        yield from srm.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program, ranks=members)
    expected = np.concatenate([blocks[r] for r in members])
    for rank in members:
        assert np.array_equal(outs[rank], expected)


def test_srm_faster_than_baseline_gather():
    from repro.machine import ClusterSpec as CS

    def timed(name):
        machine, stack = build(name, CS(nodes=4, tasks_per_node=8))
        total = 32
        blocks = blocks_for(total, 1024)
        recvbuf = np.zeros(1024 * total, np.uint8)

        def program(task):
            dst = recvbuf if task.rank == 0 else None
            yield from stack.gather(task, blocks[task.rank], dst, root=0)

        machine.launch(program)  # warm
        start = machine.now
        machine.launch(program)
        return machine.now - start

    assert timed("srm") < timed("ibm")


@given(
    seed=st.integers(0, 5000),
    block=st.integers(1, 2000),
)
@settings(max_examples=15, deadline=None)
def test_allgather_property(seed, block):
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=3))
    rng = np.random.default_rng(seed)
    blocks = {r: rng.integers(0, 255, block).astype(np.uint8) for r in range(6)}
    outs = {r: np.zeros(block * 6, np.uint8) for r in range(6)}

    def program(task):
        yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program)
    expected = np.concatenate([blocks[r] for r in range(6)])
    for rank in range(6):
        assert np.array_equal(outs[rank], expected)


# ---------------------------------------------------------------------------
# hierarchical ring allgather (large results)
# ---------------------------------------------------------------------------


def test_allgather_large_uses_ring_and_is_correct():
    machine, stack = build("srm", ClusterSpec(nodes=4, tasks_per_node=4))
    total = 16
    block = 16 * 1024  # 256 KB total -> ring regime
    rng = np.random.default_rng(3)
    blocks = {r: rng.integers(0, 255, block).astype(np.uint8) for r in range(total)}
    outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

    def program(task):
        yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program)
    expected = np.concatenate([blocks[r] for r in range(total)])
    for rank in range(total):
        assert np.array_equal(outs[rank], expected), f"rank {rank}"
    # The ring plan was actually engaged.
    assert getattr(stack.ctx, "_allgather_ring_plan", None) is not None


def test_allgather_small_stays_on_gather_bcast():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    outs = {r: np.zeros(4 * 64, np.uint8) for r in range(4)}

    def program(task):
        yield from stack.allgather(task, np.full(64, task.rank, np.uint8), outs[task.rank])

    machine.launch(program)
    assert getattr(stack.ctx, "_allgather_ring_plan", None) is None


def test_allgather_ring_repeated_calls():
    machine, stack = build("srm", ClusterSpec(nodes=3, tasks_per_node=2))
    total = 6
    block = 32 * 1024
    for call in range(3):
        blocks = {r: np.full(block, (call * 7 + r) % 251, np.uint8) for r in range(total)}
        outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

        machine.launch(program)
        expected = np.concatenate([blocks[r] for r in range(total)])
        for rank in range(total):
            assert np.array_equal(outs[rank], expected), f"call {call} rank {rank}"


def test_allgather_ring_group_subset():
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
    members = [0, 1, 5, 9, 10, 14]
    srm = SRM(machine, group=members)
    block = 24 * 1024
    blocks = {r: np.full(block, r + 1, np.uint8) for r in members}
    outs = {r: np.zeros(block * len(members), np.uint8) for r in members}

    def program(task):
        yield from srm.allgather(task, blocks[task.rank], outs[task.rank])

    machine.launch(program, ranks=members)
    expected = np.concatenate([blocks[r] for r in members])
    for rank in members:
        assert np.array_equal(outs[rank], expected)


def test_allgather_size_mismatch_rejected():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.allgather(task, np.zeros(8, np.uint8), np.zeros(15, np.uint8))

    with pytest.raises(ConfigurationError):
        machine.launch(program)


def test_allgather_ring_beats_composition_at_large_sizes():
    from repro.core import SRMConfig

    def timed(ring_min):
        spec = ClusterSpec(nodes=8, tasks_per_node=4)
        machine, stack = build(
            "srm", spec, srm_config=SRMConfig(allgather_ring_min=ring_min)
        )
        total = 32
        block = 8 * 1024
        blocks = {r: np.full(block, r % 251, np.uint8) for r in range(total)}
        outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

        machine.launch(program)  # warm
        start = machine.now
        machine.launch(program)
        return machine.now - start

    ring_time = timed(64 * 1024)  # ring engaged
    composed_time = timed(1 << 30)  # forced gather+bcast
    assert ring_time < composed_time


# ---------------------------------------------------------------------------
# alltoall
# ---------------------------------------------------------------------------


def alltoall_blocks(total, block):
    """sendbuf[r] block j carries the value 100*r + j (mod 251)."""
    bufs = {}
    for r in range(total):
        buf = np.zeros(block * total, np.uint8)
        for j in range(total):
            buf[j * block : (j + 1) * block] = (100 * r + j) % 251
        bufs[r] = buf
    return bufs


@pytest.mark.parametrize("name", STACKS)
@pytest.mark.parametrize("nodes,tasks", [(1, 4), (2, 3), (3, 2)])
def test_alltoall_all_stacks(name, nodes, tasks):
    machine, stack = build(name, ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    block = 40
    sends = alltoall_blocks(total, block)
    recvs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

    def program(task):
        yield from stack.alltoall(task, sends[task.rank], recvs[task.rank])

    machine.launch(program)
    for r in range(total):
        for j in range(total):
            expected = (100 * j + r) % 251  # sender j's block for me
            assert np.all(recvs[r][j * block : (j + 1) * block] == expected), (
                f"{name}: rank {r} block from {j}"
            )


def test_alltoall_srm_repeated_calls():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    total = 4
    block = 64
    for call in range(3):
        sends = {
            r: np.full(block * total, (call * 3 + r) % 251, np.uint8) for r in range(total)
        }
        recvs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.alltoall(task, sends[task.rank], recvs[task.rank])

        machine.launch(program)
        for r in range(total):
            for j in range(total):
                assert np.all(
                    recvs[r][j * block : (j + 1) * block] == (call * 3 + j) % 251
                ), f"call {call}"


def test_alltoall_group():
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
    members = [1, 6, 9, 14]
    srm = SRM(machine, group=members)
    block = 32
    size = len(members)
    sends = {
        r: np.concatenate(
            [np.full(block, (r + members[j]) % 251, np.uint8) for j in range(size)]
        )
        for r in members
    }
    recvs = {r: np.zeros(block * size, np.uint8) for r in members}

    def program(task):
        yield from srm.alltoall(task, sends[task.rank], recvs[task.rank])

    machine.launch(program, ranks=members)
    for i, r in enumerate(members):
        for j, sender in enumerate(members):
            assert np.all(
                recvs[r][j * block : (j + 1) * block] == (sender + r) % 251
            ), f"rank {r} from {sender}"


def test_alltoall_size_validation():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.alltoall(task, np.zeros(7, np.uint8), np.zeros(7, np.uint8))

    with pytest.raises(ConfigurationError):
        machine.launch(program)


def test_alltoall_srm_beats_baseline():
    def timed(name):
        machine, stack = build(name, ClusterSpec(nodes=4, tasks_per_node=4))
        total = 16
        block = 2048
        sends = {r: np.full(block * total, r % 251, np.uint8) for r in range(total)}
        recvs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.alltoall(task, sends[task.rank], recvs[task.rank])

        machine.launch(program)  # warm
        start = machine.now
        machine.launch(program)
        return machine.now - start

    assert timed("srm") < timed("ibm")
