"""Tests for the protocol-dispatch layer (repro.core.dispatch).

The load-bearing property: under the default :class:`PaperPolicy`, every
decision is byte-for-byte identical to the pre-refactor ``if``-chains that
lived in ``broadcast.py``/``allreduce.py``/``reduce.py``/``gatherscatter.py``
— exhaustively, across the full (op, size, nodes) bench grid and the
thresholds' ±1 neighborhoods.  The legacy decision logic is replicated
verbatim below as the oracle.
"""

import json

import numpy as np
import pytest

from repro.bench.snapshot import bench_nodes as _bench_nodes
from repro.bench.snapshot import bench_sizes as _bench_sizes
from repro.core import (
    SRM,
    CostModelPolicy,
    FixedPolicy,
    PaperPolicy,
    SRMConfig,
    TunedPolicy,
)
from repro.core.dispatch import (
    TUNED_TABLE_KIND,
    TUNED_TABLE_SCHEMA_VERSION,
    SelectionEnv,
    derive_chunks,
    lookup_variant,
    registered_ops,
    variants_for,
)
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.mpi.ops import SUM

KB = 1024


def _env(op, nbytes, nodes, config=None, ppn=16):
    return SelectionEnv(
        op=op, nbytes=nbytes, nodes=nodes, ppn=ppn,
        config=config if config is not None else SRMConfig(),
        cost=CostModel.ibm_sp_colony(),
    )


def _grid_sizes():
    """The bench grid plus every switch point's ±1 neighborhood."""
    sizes = set(_bench_sizes())
    for threshold in (8 * KB, 16 * KB, 64 * KB):
        sizes.update({threshold - 1, threshold, threshold + 1})
    sizes.update({0, 1, 4 * KB, 256 * KB, 8 * 1024 * KB})
    return sorted(sizes)


# ---------------------------------------------------------------------------
# the pre-refactor if-chains, replicated verbatim (the oracle)
# ---------------------------------------------------------------------------


def _legacy_broadcast(config, nbytes):
    """broadcast.py lines 62-64 before the refactor."""
    chunks = config.chunks(nbytes)
    large = config.is_large(nbytes)
    manage = config.manage_interrupts and not large
    return chunks, large, manage


def _legacy_reduce(config, nbytes):
    """reduce.py lines 69-72 before the refactor."""
    chunks = config.chunks(nbytes)
    manage = config.manage_interrupts and not config.is_large(nbytes)
    return chunks, manage


def _legacy_allreduce(config, nbytes, nodes):
    """allreduce.py lines 57-71 before the refactor."""
    if nbytes <= config.allreduce_exchange_max:
        return "exchange", None, config.manage_interrupts
    if config.allreduce_algorithm == "ring" and nodes > 1:
        return "ring", None, False
    return "pipeline", config.chunks(nbytes), False


def _legacy_allgather(config, recv_nbytes, nodes):
    """gatherscatter.py line 208 before the refactor."""
    if recv_nbytes > config.allgather_ring_min and nodes > 1:
        return "ring"
    return "gather-bcast"


# ---------------------------------------------------------------------------
# satellite: PaperPolicy == legacy decisions, exhaustively
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nodes", sorted(set(_bench_nodes()) | {1, 2, 3}))
def test_paper_policy_matches_legacy_broadcast_and_reduce(nodes):
    from repro.core.dispatch import _manage_interrupts

    policy = PaperPolicy()
    config = SRMConfig()
    for nbytes in _grid_sizes():
        for op in ("broadcast", "reduce"):
            variant = policy.select(_env(op, nbytes, nodes, config))
            chunks = list(derive_chunks(config, op, variant, nbytes))
            if op == "broadcast":
                legacy_chunks, legacy_large, legacy_manage = _legacy_broadcast(
                    config, nbytes
                )
                assert (variant == "large") == legacy_large, (op, nbytes, nodes)
            else:
                legacy_chunks, legacy_manage = _legacy_reduce(config, nbytes)
            assert chunks == legacy_chunks, (op, nbytes, nodes)
            assert _manage_interrupts(config, op, variant) == legacy_manage, (
                op, nbytes, nodes,
            )


@pytest.mark.parametrize("algorithm", ["pipeline", "ring"])
@pytest.mark.parametrize("nodes", sorted(set(_bench_nodes()) | {1, 2, 3}))
def test_paper_policy_matches_legacy_allreduce(nodes, algorithm):
    policy = PaperPolicy()
    config = SRMConfig(allreduce_algorithm=algorithm)
    from repro.core.dispatch import _manage_interrupts

    for nbytes in _grid_sizes():
        variant = policy.select(_env("allreduce", nbytes, nodes, config))
        legacy_variant, legacy_chunks, legacy_manage = _legacy_allreduce(
            config, nbytes, nodes
        )
        assert variant == legacy_variant, (nbytes, nodes, algorithm)
        if legacy_chunks is not None:
            assert (
                list(derive_chunks(config, "allreduce", variant, nbytes))
                == legacy_chunks
            ), (nbytes, nodes, algorithm)
        assert _manage_interrupts(config, "allreduce", variant) == legacy_manage


@pytest.mark.parametrize("nodes", sorted(set(_bench_nodes()) | {1, 2, 3}))
def test_paper_policy_matches_legacy_allgather(nodes):
    policy = PaperPolicy()
    config = SRMConfig()
    for nbytes in _grid_sizes():
        variant = policy.select(_env("allgather", nbytes, nodes, config))
        assert variant == _legacy_allgather(config, nbytes, nodes), (nbytes, nodes)


def test_paper_policy_tree_families_follow_config():
    policy = PaperPolicy()
    config = SRMConfig(inter_family="flat", intra_reduce_family="binary")
    assert policy.select(_env("inter-tree", 0, 4, config)) == "flat"
    assert policy.select(_env("intra-reduce-tree", 0, 4, config)) == "binary"


def test_paper_policy_single_variant_ops():
    policy = PaperPolicy()
    assert policy.select(_env("barrier", 0, 4)) == "dissemination"
    assert policy.select(_env("scatter", 1024, 4)) == "rma-direct"
    assert policy.select(_env("scan", 1024, 4)) == "chained"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_covers_every_operation():
    ops = registered_ops()
    for op in (
        "broadcast", "reduce", "allreduce", "allgather", "scatter", "gather",
        "alltoall", "barrier", "scan", "inter-tree", "intra-reduce-tree",
    ):
        assert op in ops
        assert variants_for(op)


def test_unknown_variant_and_op_raise():
    with pytest.raises(ConfigurationError):
        lookup_variant("broadcast", "telepathy")
    with pytest.raises(ConfigurationError):
        variants_for("sort")


def test_every_variant_has_a_finite_cost_estimate():
    for op in registered_ops():
        env = _env(op, 64 * KB, 4)
        for entry in variants_for(op):
            cost = entry.cost(env)
            assert cost >= 0 and np.isfinite(cost), (op, entry.name)


def test_exchange_applicability_tracks_staging_capacity():
    entry = lookup_variant("allreduce", "exchange")
    assert entry.applicable(_env("allreduce", 16 * KB, 4))
    assert not entry.applicable(_env("allreduce", 16 * KB + 1, 4))
    raised = entry.tune_config(SRMConfig(), 1024 * KB)
    assert entry.applicable(_env("allreduce", 1024 * KB, 4, raised))


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


def test_cost_model_policy_picks_only_applicable_variants():
    policy = CostModelPolicy()
    for nodes in (1, 4, 16):
        for nbytes in _grid_sizes():
            env = _env("allreduce", nbytes, nodes)
            chosen = lookup_variant("allreduce", policy.select(env))
            assert chosen.applicable(env), (nbytes, nodes, chosen.name)


def test_fixed_policy_forces_and_falls_through():
    policy = FixedPolicy({"allreduce": "ring"})
    assert policy.select(_env("allreduce", 8, 4)) == "ring"
    # Unlisted ops follow the fallback (paper) policy.
    assert policy.select(_env("broadcast", 1 * KB, 4)) == "small"


def test_fixed_policy_rejects_unknown_variant():
    with pytest.raises(ConfigurationError):
        FixedPolicy({"broadcast": "telepathy"})


def _tuned_document(table):
    return {
        "kind": TUNED_TABLE_KIND,
        "schema_version": TUNED_TABLE_SCHEMA_VERSION,
        "label": "test",
        "table": table,
    }


def test_tuned_policy_lookup_and_fallback():
    policy = TunedPolicy(
        _tuned_document(
            {
                "broadcast": {
                    "4": [[8 * KB, "small"], [64 * KB, "pipelined"], [1024 * KB, "large"]],
                }
            }
        )
    )
    assert policy.select(_env("broadcast", 4 * KB, 4)) == "small"
    assert policy.select(_env("broadcast", 32 * KB, 4)) == "pipelined"
    # Beyond the grid: the largest row's winner.
    assert policy.select(_env("broadcast", 8 * 1024 * KB, 4)) == "large"
    # Nearest node count by log distance (4 is the only row).
    assert policy.select(_env("broadcast", 4 * KB, 16)) == "small"
    # Ops absent from the table fall through to the paper policy.
    assert policy.select(_env("allreduce", 4 * KB, 4)) == "exchange"


def test_tuned_policy_validates_document():
    with pytest.raises(ConfigurationError):
        TunedPolicy({"kind": "something-else"})
    with pytest.raises(ConfigurationError):
        TunedPolicy({"kind": TUNED_TABLE_KIND, "schema_version": 999, "table": {"broadcast": {}}})
    with pytest.raises(ConfigurationError):
        TunedPolicy(_tuned_document({}))
    with pytest.raises(ConfigurationError):
        TunedPolicy(_tuned_document({"broadcast": {"4": [[1024, "telepathy"]]}}))


def test_tuned_policy_load_round_trip(tmp_path):
    path = tmp_path / "tuned.json"
    path.write_text(
        json.dumps(_tuned_document({"allreduce": {"4": [[64 * KB, "ring"]]}}))
    )
    policy = TunedPolicy.load(str(path))
    assert policy.select(_env("allreduce", 32 * KB, 4)) == "ring"


def test_tuned_policy_load_warns_on_fingerprint_mismatch(tmp_path):
    document = _tuned_document({"broadcast": {"4": [[8 * KB, "small"]]}})
    document["identity"] = {"tasks_per_node": 16}
    document["fingerprint"] = "0" * 12  # never a real sha256 prefix of ours
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(document))
    with pytest.warns(UserWarning) as caught:
        policy = TunedPolicy.load(str(path))
    message = str(caught[0].message)
    # The warning names the file and *both* fingerprints, so the user can
    # tell which side is stale.
    assert "stale.json" in message
    assert "0" * 12 in message
    from repro.bench.export import bench_identity, identity_fingerprint

    live = identity_fingerprint(bench_identity(tasks_per_node=16))
    assert live in message
    # The table still loads: stale switch points beat no switch points.
    assert policy.select(_env("broadcast", 4 * KB, 4)) == "small"


def test_tuned_policy_load_is_silent_when_fingerprint_matches(tmp_path):
    import warnings

    from repro.bench.export import bench_identity, identity_fingerprint

    document = _tuned_document({"broadcast": {"4": [[8 * KB, "small"]]}})
    document["identity"] = bench_identity(tasks_per_node=16)
    document["fingerprint"] = identity_fingerprint(document["identity"])
    path = tmp_path / "fresh.json"
    path.write_text(json.dumps(document))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        TunedPolicy.load(str(path))


def test_tuned_policy_missing_entries_fall_to_the_fallback_policy():
    # An op absent from the table routes through the explicit fallback;
    # sizes beyond the table's grid use the table's own last row.
    policy = TunedPolicy(
        _tuned_document({"broadcast": {"4": [[8 * KB, "small"]]}}),
        fallback=FixedPolicy({"allreduce": "ring"}),
    )
    assert policy.select(_env("allreduce", 4 * KB, 4)) == "ring"
    assert policy.select(_env("broadcast", 1024 * KB, 4)) == "small"


# ---------------------------------------------------------------------------
# the dispatcher on a live machine
# ---------------------------------------------------------------------------


def _run_allreduce(policy, nbytes=2 * KB, nodes=2, tasks=2):
    spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks)
    machine = Machine(spec)
    srm = SRM(machine, policy=policy)
    count = max(1, nbytes // 8)
    sources = {r: np.full(count, float(r + 1)) for r in range(spec.total_tasks)}
    outs = {r: np.zeros(count) for r in range(spec.total_tasks)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    expected = sum(range(1, spec.total_tasks + 1))
    for rank in range(spec.total_tasks):
        np.testing.assert_allclose(outs[rank], expected)
    return machine, srm


def test_dispatcher_records_variant_counter_and_span():
    machine, srm = _run_allreduce(None)
    summary = machine.obs.metrics.summary()
    assert summary.get("dispatch.allreduce.exchange", 0) >= 1
    dispatch_spans = [
        span for span in machine.obs.recorder.spans if span.name == "dispatch"
    ]
    assert any(
        span.detail.startswith("allreduce/exchange") for span in dispatch_spans
    )
    # Marker spans are zero-duration: they never perturb the critical path.
    assert all(span.duration == 0.0 for span in dispatch_spans)


def test_dispatcher_caches_decisions():
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    machine = Machine(spec)
    srm = SRM(machine)
    first = srm.ctx.dispatch("broadcast", 4 * KB)
    second = srm.ctx.dispatch("broadcast", 4 * KB)
    assert first is second
    assert machine.obs.metrics.summary()["dispatch.broadcast.small"] == 2


def test_inapplicable_choice_falls_back_to_paper():
    # Force the exchange variant far beyond its staging capacity: the
    # dispatcher must substitute the paper choice instead of overflowing.
    machine, srm = _run_allreduce(
        FixedPolicy({"allreduce": "exchange"}), nbytes=128 * KB
    )
    summary = machine.obs.metrics.summary()
    assert summary["dispatch.fallbacks"] >= 1
    assert summary.get("dispatch.allreduce.pipeline", 0) >= 1
    assert "dispatch.allreduce.exchange" not in summary


def test_fallback_span_detail_names_the_overridden_choice_and_reason():
    machine, _srm = _run_allreduce(
        FixedPolicy({"allreduce": "exchange"}), nbytes=128 * KB
    )
    details = [
        span.detail
        for span in machine.obs.recorder.spans
        if span.name == "dispatch" and span.detail.startswith("allreduce/")
    ]
    assert details, "expected a dispatch marker span"
    # The marker says what ran, what was overridden, and *why* — the
    # variant's declared structural precondition.
    assert any(
        "<- exchange inapplicable:" in detail
        and "exchange staging buffers" in detail
        for detail in details
    )


def test_decision_record_captures_fallback_and_predictions():
    machine, _srm = _run_allreduce(
        FixedPolicy({"allreduce": "exchange"}), nbytes=128 * KB
    )
    record = machine.obs.decisions.find("allreduce", 128 * KB)
    assert record is not None
    assert record.fallback is True
    assert record.fallback_from == "exchange"
    assert record.chosen == "pipeline"
    assert record.policy == "fixed"
    # Every registered variant was forecast, applicable or not.
    assert set(record.predictions) == {"exchange", "pipeline", "ring"}
    assert record.predictions["exchange"]["applicable"] is False
    assert record.predictions["pipeline"]["applicable"] is True
    for prediction in record.predictions.values():
        assert prediction["total_us"] > 0
        assert prediction["total_us"] == pytest.approx(
            sum(prediction["terms_us"].values()), rel=1e-9
        )


def test_decision_record_counts_cache_hits():
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    machine = Machine(spec)
    srm = SRM(machine)
    srm.ctx.dispatch("broadcast", 4 * KB)
    srm.ctx.dispatch("broadcast", 4 * KB)
    srm.ctx.dispatch("broadcast", 4 * KB)
    assert len(machine.obs.decisions) == 1
    record = machine.obs.decisions.find("broadcast", 4 * KB)
    assert record.calls == 3
    assert record.cache_hits == 2


def test_decisions_log_is_none_when_observation_is_off():
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    machine = Machine(spec, observe=False)
    assert machine.obs.decisions is None
    srm = SRM(machine)
    # Dispatch still works; it just records nothing.
    decision = srm.ctx.dispatch("broadcast", 4 * KB)
    assert decision.variant == "small"


def test_dispatchers_with_different_policies_do_not_share_cached_decisions():
    # Two stacks on one machine, different policies, same (op, nbytes):
    # each Dispatcher caches per context, so the selections must diverge.
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    machine = Machine(spec)
    srm_paper = SRM(machine, policy=PaperPolicy())
    srm_fixed = SRM(machine, policy=FixedPolicy({"allreduce": "ring"}))
    paper_first = srm_paper.ctx.dispatch("allreduce", 2 * KB)
    fixed_first = srm_fixed.ctx.dispatch("allreduce", 2 * KB)
    assert paper_first.variant == "exchange"
    assert fixed_first.variant == "ring"
    # Repeat dispatches hit each stack's own cache, not the other's.
    assert srm_paper.ctx.dispatch("allreduce", 2 * KB) is paper_first
    assert srm_fixed.ctx.dispatch("allreduce", 2 * KB) is fixed_first
    assert paper_first is not fixed_first
    # One DecisionRecord per dispatcher, not one shared record.
    assert len(machine.obs.decisions) == 2
    chosen = {record.chosen for record in machine.obs.decisions.records}
    assert chosen == {"exchange", "ring"}


def test_srm_accepts_each_policy_end_to_end():
    for policy in (
        PaperPolicy(),
        CostModelPolicy(),
        FixedPolicy({"allreduce": "ring"}),
        TunedPolicy(_tuned_document({"allreduce": {"2": [[64 * KB, "pipeline"]]}})),
    ):
        _run_allreduce(policy, nbytes=4 * KB)


def test_paper_policy_is_perf_identical_to_prerefactor_shape():
    # Same machine shape, default policy vs explicitly-passed PaperPolicy:
    # decisions and simulated latency must agree exactly.
    machine_a, _ = _run_allreduce(None)
    machine_b, _ = _run_allreduce(PaperPolicy())
    assert machine_a.engine.now == machine_b.engine.now


def test_tree_family_dispatch_changes_embedding():
    spec = ClusterSpec(nodes=4, tasks_per_node=2)
    machine = Machine(spec)
    srm = SRM(machine, policy=FixedPolicy({"inter-tree": "flat"}))
    plan = srm.ctx.bcast_plan(0)
    root_children = plan.trees.inter.children_of(0)
    assert len(root_children) == 3  # flat: the root parents every other master


# ---------------------------------------------------------------------------
# the tuner
# ---------------------------------------------------------------------------


def test_tune_dry_run_emits_loadable_table():
    from repro.bench.tune import run_tune

    document = run_tune(dry_run=True, operations=("broadcast", "allreduce"))
    assert document["kind"] == TUNED_TABLE_KIND
    assert document["schema_version"] == TUNED_TABLE_SCHEMA_VERSION
    assert document["table"]
    policy = TunedPolicy(document)
    _run_allreduce(policy, nbytes=1 * KB)


def test_tune_cell_skips_structurally_impossible_candidates():
    from repro.bench.tune import tune_cell

    # Ring allreduce on a single node can never run.
    assert tune_cell("allreduce", "ring", 8 * KB, nodes=1, tasks_per_node=2) is None
    # The exchange variant beyond its cutoff is probed via tune_config.
    micros = tune_cell(
        "allreduce", "exchange", 32 * KB, nodes=2, tasks_per_node=2, repeats=1
    )
    assert micros is not None and micros > 0


def test_tune_writes_snapshot_style_artifact(tmp_path):
    from repro.bench.snapshot import write_snapshot
    from repro.bench.tune import collect_table

    document = collect_table(
        operations=("broadcast",),
        sizes=[512],
        nodes_axis=[2],
        tasks_per_node=2,
        repeats=1,
    )
    path = tmp_path / "TUNED.json"
    write_snapshot(str(path), document)
    policy = TunedPolicy.load(str(path))
    assert policy.select(_env("broadcast", 256, 2)) in {"small", "pipelined", "large"}
    assert "fingerprint" in document and "identity" in document
