"""Tests for the calibration report (`repro.obs.calib`) and its CLI path.

The heavy lifting — decision records on a live machine, the term-breakdown
invariant — is covered in test_dispatch.py and test_machine_costmodel.py;
this file exercises the report builder itself: document shape, schema
validation, jobs-determinism, crossover checks, the regret scorecard, and
the predicted-vs-measured scatter.
"""

import copy
import json

import pytest

from repro.bench.figures import calibration_scatter
from repro.errors import ConfigurationError
from repro.obs.calib import (
    CALIBRATION_KIND,
    CALIBRATION_SCHEMA_VERSION,
    QUICK_SIZES,
    SCORECARD_POLICIES,
    DecisionRecord,
    collect_calibration,
    load_calibration_report,
    run_calibrate,
    validate_calibration_report,
)

KB = 1024

# One micro-grid shared by every test in this file: allreduce on 2 nodes,
# two sizes straddling the 16 KB exchange->pipeline switch point.
GRID = dict(
    operations=("allreduce",),
    sizes=[8 * KB, 32 * KB],
    nodes_axis=[2],
    tasks_per_node=2,
    repeats=1,
    label="test",
)


@pytest.fixture(scope="module")
def report():
    return collect_calibration(**GRID)


def test_report_shape_and_cells(report):
    assert report["kind"] == CALIBRATION_KIND
    assert report["schema_version"] == CALIBRATION_SCHEMA_VERSION
    assert report["label"] == "test"
    assert report["fingerprint"]
    assert report["grid"]["sizes"] == [8 * KB, 32 * KB]
    assert set(report["terms"]) == {"copy", "wire", "reduce", "eager", "other"}
    assert len(report["cells"]) == 2
    for cell in report["cells"]:
        assert cell["operation"] == "allreduce"
        assert set(cell["variants"]) == {"exchange", "pipeline", "ring"}
        assert cell["best"] in cell["variants"]
        best_entry = cell["variants"][cell["best"]]
        assert best_entry["measured_us"] == cell["best_us"] > 0
        # Selections were scored for every scorecard policy.
        assert set(cell["selections"]) == set(SCORECARD_POLICIES)
        for entry in cell["variants"].values():
            if entry["measured_us"] is None:
                continue
            assert entry["predicted_us"] == pytest.approx(
                sum(entry["predicted_terms_us"].values()), rel=1e-3
            )


def test_report_validates(report):
    validate_calibration_report(report)


def test_model_error_groups_carry_term_attribution(report):
    (group,) = report["model_error"]
    assert group["operation"] == "allreduce" and group["nodes"] == 2
    assert group["mean_abs_log2_error"] is not None
    for entry in group["by_variant"].values():
        assert entry["cells"] >= 1
        # With 2 cells and >=2 active terms the lstsq fit may be
        # underdetermined (None); when present, scales are positive-keyed.
        if entry["term_scales"] is not None:
            assert all(term in report["terms"] for term in entry["term_scales"])


def test_crossover_check_spans_the_exchange_switch(report):
    checks = [c for c in report["crossovers"] if c["switch"] == "allreduce_exchange_max"]
    assert len(checks) == 1
    check = checks[0]
    assert check["paper_bytes"] == 16 * KB
    assert check["below"] == "exchange" and check["above"] == "pipeline"
    assert check["spanned"] is True
    # The threshold is inclusive-below: paper's first pipeline size is the
    # first grid size *above* 16 KB.
    assert check["paper_first_above"] == 32 * KB
    assert check["agrees"] in (True, False)


def test_regret_scorecard_covers_all_policies(report):
    regret = report["regret"]
    assert set(SCORECARD_POLICIES) <= set(regret)
    for name in SCORECARD_POLICIES:
        entry = regret[name]
        assert entry["cells"] == 2
        assert entry["total_regret_us"] >= 0
        assert entry["mis_selections"] >= 0
        assert "allreduce" in entry["by_op"]
    # The self-trained tuned row replays this grid's winners: zero regret
    # by construction, and flagged as such.
    assert regret["tuned"]["trained_on_grid"] is True
    assert regret["tuned"]["total_regret_us"] == 0
    assert regret["tuned"]["mis_selections"] == 0


def test_headlines_lead_with_the_scorecard(report):
    assert report["headlines"]
    assert report["headlines"][0].startswith("policy scorecard over 2 cells:")
    assert all(name in report["headlines"][0] for name in SCORECARD_POLICIES)


def test_report_is_byte_identical_at_any_jobs_setting(report):
    parallel = collect_calibration(**GRID, jobs=2)
    assert json.dumps(parallel, sort_keys=True) == json.dumps(
        report, sort_keys=True
    )


def test_external_tuned_table_is_scored_instead_of_grid_winners(report):
    from repro.core.dispatch import TUNED_TABLE_KIND, TUNED_TABLE_SCHEMA_VERSION

    # A deliberately wrong table: pipeline everywhere, including 8 KB where
    # exchange wins. Scoring it must cost regret and drop the grid flag.
    table = {
        "kind": TUNED_TABLE_KIND,
        "schema_version": TUNED_TABLE_SCHEMA_VERSION,
        "label": "wrong",
        "table": {"allreduce": {"2": [[1024 * KB, "pipeline"]]}},
    }
    document = collect_calibration(**GRID, tuned_document=table)
    tuned = document["regret"]["tuned"]
    assert tuned["trained_on_grid"] is False
    expected = [
        cell for cell in document["cells"] if cell["best"] != "pipeline"
    ]
    assert tuned["mis_selections"] == len(expected)
    if expected:
        assert tuned["total_regret_us"] > 0


def test_validation_rejects_malformed_documents(report):
    with pytest.raises(ConfigurationError):
        validate_calibration_report({"kind": "something-else"})
    with pytest.raises(ConfigurationError):
        validate_calibration_report({**report, "schema_version": 999})
    for key in ("cells", "model_error", "crossovers", "headlines"):
        with pytest.raises(ConfigurationError):
            validate_calibration_report({**report, key: []})
    missing = dict(report)
    del missing["fingerprint"]
    with pytest.raises(ConfigurationError):
        validate_calibration_report(missing)
    negative = copy.deepcopy(report)
    negative["regret"]["paper"]["total_regret_us"] = -1.0
    with pytest.raises(ConfigurationError):
        validate_calibration_report(negative)
    unknown_term = copy.deepcopy(report)
    first_variant = next(iter(unknown_term["cells"][0]["variants"].values()))
    first_variant["predicted_terms_us"]["teleport"] = 1.0
    with pytest.raises(ConfigurationError):
        validate_calibration_report(unknown_term)


def test_validation_rejects_unknown_operation():
    with pytest.raises(ConfigurationError):
        collect_calibration(operations=("telepathy",), sizes=[1024], nodes_axis=[2])


def test_run_calibrate_writes_a_loadable_validated_report(tmp_path, report, monkeypatch):
    # Route the full-grid branch through the micro-grid so the CLI path
    # (validate -> write_snapshot -> reload) stays test-sized.
    import repro.obs.calib as calib

    def tiny(operations=None, label="calibration", progress=None, jobs=1,
             tuned_document=None, **kwargs):
        return collect_calibration(**{**GRID, "label": label})

    monkeypatch.setattr(calib, "collect_calibration", tiny)
    path = tmp_path / "CALIB_report.json"
    document = run_calibrate(out=str(path), label="roundtrip")
    assert document["label"] == "roundtrip"
    loaded = load_calibration_report(str(path))
    assert loaded == json.loads(json.dumps(document))
    # Byte-stable serialization: a rewrite reproduces the file exactly.
    first = path.read_bytes()
    run_calibrate(out=str(path), label="roundtrip")
    assert path.read_bytes() == first


def test_quick_grid_spans_the_paper_switch_points():
    # The CI micro-grid must keep straddling the 8 KB (pipeline_min) and
    # 16 KB (allreduce_exchange_max) switch points.
    assert min(QUICK_SIZES) <= 8 * KB < max(QUICK_SIZES)
    assert min(QUICK_SIZES) <= 16 * KB < max(QUICK_SIZES)


def test_calibration_scatter_renders(report):
    chart = calibration_scatter(report)
    assert "predicted vs measured latency" in chart
    assert "measured us" in chart and "predicted us" in chart
    empty = calibration_scatter({**report, "cells": []})
    assert empty == "calibration scatter: no measured cells"


def test_decision_record_to_dict_is_json_ready():
    record = DecisionRecord(
        op="broadcast", nbytes=4 * KB, nodes=2, ppn=2, policy="paper",
        chosen="small",
        predictions={
            "small": {
                "applicable": True,
                "total_us": 12.34567,
                "terms_us": {"wire": 10.0, "copy": 2.34567},
            }
        },
    )
    record.calls += 1
    record.cache_hits += 1
    payload = record.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["calls"] == 2 and payload["cache_hits"] == 1
    assert payload["fallback"] is False and payload["fallback_from"] is None
    assert payload["predictions"]["small"]["total_us"] == 12.3457
