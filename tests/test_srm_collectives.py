"""Correctness + behaviour tests for the SRM collective operations."""

import numpy as np
import pytest

from repro.core import SRM, SRMConfig
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import MAX, MIN, PROD, SUM


def make(nodes=2, tasks=4, config=None, **kwargs):
    machine = Machine(ClusterSpec(nodes=nodes, tasks_per_node=tasks), **kwargs)
    return machine, SRM(machine, config=config)


def run_broadcast(machine, srm, nbytes, root):
    P = machine.spec.total_tasks
    reference = np.random.default_rng(42).integers(0, 255, max(1, nbytes), dtype=np.uint8).astype(np.uint8)
    buffers = {r: (reference.copy() if r == root else np.zeros_like(reference)) for r in range(P)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=root)

    result = machine.launch(program)
    return buffers, reference, result


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nbytes", [1, 8, 100, 4096, 8192, 20_000, 65_536, 200_000])
def test_broadcast_delivers_all_sizes(nbytes):
    machine, srm = make(nodes=2, tasks=4)
    buffers, reference, _ = run_broadcast(machine, srm, nbytes, root=0)
    for rank, buffer in buffers.items():
        assert np.array_equal(buffer, reference), f"rank {rank} mismatched"


@pytest.mark.parametrize("root", [0, 1, 3, 4, 7])
def test_broadcast_arbitrary_root(root):
    # §2.2: "The algorithm supports the arbitrary root without extra copies."
    machine, srm = make(nodes=2, tasks=4)
    buffers, reference, _ = run_broadcast(machine, srm, 2048, root=root)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


def test_broadcast_single_node():
    machine, srm = make(nodes=1, tasks=8)
    buffers, reference, _ = run_broadcast(machine, srm, 10_000, root=3)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


def test_broadcast_single_task_per_node():
    machine, srm = make(nodes=4, tasks=1)
    buffers, reference, _ = run_broadcast(machine, srm, 100_000, root=2)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


def test_broadcast_zero_bytes_completes():
    machine, srm = make(nodes=2, tasks=2)
    empty = {r: np.zeros(0, np.uint8) for r in range(4)}

    def program(task):
        yield from srm.broadcast(task, empty[task.rank], root=0)

    machine.launch(program)  # must terminate without deadlock


def test_broadcast_protocol_switch_uses_streaming():
    # Above the 64 KB switch the payload lands in user buffers directly:
    # stream counters get used; below, only the edge counters do.
    machine, srm = make(nodes=2, tasks=2)
    plan = srm.ctx.bcast_plan(0)
    run_broadcast(machine, srm, 1024, root=0)
    assert plan.stream_base == {}
    run_broadcast(machine, srm, 100_000, root=0)
    assert plan.stream_base and all(v > 0 for v in plan.stream_base.values())


def test_broadcast_small_pipelines_chunks():
    # 8 KB < size <= 64 KB messages travel as 4 KB chunks (§2.4): the same
    # small-protocol machinery runs multiple times per call.
    machine, srm = make(nodes=2, tasks=2)
    run_broadcast(machine, srm, 16_384, root=0)
    state = srm.ctx.nodes[0]
    assert state.bcast_seq[0] == 4  # 16 KB / 4 KB chunks


def test_broadcast_repeated_calls_alternate_buffers():
    machine, srm = make(nodes=1, tasks=4)
    run_broadcast(machine, srm, 1024, root=0)
    first = srm.ctx.nodes[0].bcast_seq[0]
    run_broadcast(machine, srm, 1024, root=0)
    assert srm.ctx.nodes[0].bcast_seq[0] == first + 1  # cursor advanced


def test_broadcast_faster_than_sum_of_hops_for_large():
    # Pipelining: a 1 MB broadcast over 4 nodes must take far less than
    # 4 sequential full-message wire times.
    machine, srm = make(nodes=4, tasks=4)
    nbytes = 1 << 20
    _, _, result = run_broadcast(machine, srm, nbytes, root=0)
    full_wire = machine.cost.wire_time(nbytes)
    assert result.elapsed < 2.5 * full_wire


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------


def run_reduce(machine, srm, count, root, op=SUM, dtype=np.float64):
    P = machine.spec.total_tasks
    rng = np.random.default_rng(7)
    sources = {r: rng.random(count).astype(dtype) + 1 for r in range(P)}
    destination = np.zeros(count, dtype=dtype)

    def program(task):
        dst = destination if task.rank == root else None
        yield from srm.reduce(task, sources[task.rank], dst, op, root=root)

    machine.launch(program)
    return sources, destination


@pytest.mark.parametrize("count", [1, 2, 100, 1024, 4096, 30_000])
def test_reduce_sum_all_sizes(count):
    machine, srm = make(nodes=2, tasks=4)
    sources, destination = run_reduce(machine, srm, count, root=0)
    expected = np.sum([sources[r] for r in sources], axis=0)
    assert np.allclose(destination, expected)


@pytest.mark.parametrize("op,combine", [(SUM, np.sum), (MAX, np.max), (MIN, np.min), (PROD, np.prod)])
def test_reduce_operators(op, combine):
    machine, srm = make(nodes=2, tasks=2)
    sources, destination = run_reduce(machine, srm, 64, root=0, op=op)
    stacked = np.stack([sources[r] for r in sources])
    assert np.allclose(destination, combine(stacked, axis=0))


@pytest.mark.parametrize("root", [0, 2, 5, 7])
def test_reduce_arbitrary_root(root):
    machine, srm = make(nodes=2, tasks=4)
    sources, destination = run_reduce(machine, srm, 500, root=root)
    expected = np.sum([sources[r] for r in sources], axis=0)
    assert np.allclose(destination, expected)


def test_reduce_root_needs_destination():
    machine, srm = make(nodes=1, tasks=2)

    def program(task):
        yield from srm.reduce(task, np.ones(4), None, SUM, root=0)

    with pytest.raises(ValueError):
        machine.launch(program)


def test_reduce_source_buffers_unchanged():
    machine, srm = make(nodes=2, tasks=4)
    sources, _ = run_reduce(machine, srm, 256, root=0)
    # smp_reduce must never scribble on contributor buffers.
    rng = np.random.default_rng(7)
    for r in range(8):
        assert np.allclose(sources[r], rng.random(256) + 1)


def test_reduce_int_dtype():
    machine, srm = make(nodes=2, tasks=2)
    P = 4
    sources = {r: np.full(32, r + 1, dtype=np.int64) for r in range(P)}
    destination = np.zeros(32, dtype=np.int64)

    def program(task):
        dst = destination if task.rank == 0 else None
        yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)

    machine.launch(program)
    assert np.all(destination == 10)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------


def run_allreduce(machine, srm, count, op=SUM):
    P = machine.spec.total_tasks
    rng = np.random.default_rng(11)
    sources = {r: rng.random(count) + 1 for r in range(P)}
    destinations = {r: np.zeros(count) for r in range(P)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], destinations[task.rank], op)

    machine.launch(program)
    return sources, destinations


@pytest.mark.parametrize("count", [1, 100, 2047, 2048, 10_000, 50_000])
def test_allreduce_sum_all_sizes(count):
    # 2048 doubles = 16 KB: exactly the recursive-doubling cutoff (§2.4).
    machine, srm = make(nodes=2, tasks=4)
    sources, destinations = run_allreduce(machine, srm, count)
    expected = np.sum([sources[r] for r in sources], axis=0)
    for rank, destination in destinations.items():
        assert np.allclose(destination, expected), f"rank {rank}"


@pytest.mark.parametrize("nodes", [1, 2, 3, 4, 5, 7, 8])
def test_allreduce_any_node_count(nodes):
    # Exercises the power-of-two exchange group + fold for the rest.
    machine, srm = make(nodes=nodes, tasks=2)
    sources, destinations = run_allreduce(machine, srm, 64)
    expected = np.sum([sources[r] for r in sources], axis=0)
    for destination in destinations.values():
        assert np.allclose(destination, expected)


def test_allreduce_large_uses_pipeline():
    # Above 16 KB the reduce and broadcast stages overlap: the total time
    # must be clearly under the sum of a separate reduce + broadcast.
    machine, srm = make(nodes=4, tasks=4)
    count = 1 << 17  # 1 MB of doubles

    t_allreduce = _timed(machine, srm, "allreduce", count)
    machine2, srm2 = make(nodes=4, tasks=4)
    t_reduce = _timed(machine2, srm2, "reduce", count)
    t_bcast = _timed(machine2, srm2, "broadcast", count * 8)
    assert t_allreduce < 0.95 * (t_reduce + t_bcast)


def _timed(machine, srm, operation, size):
    start = machine.now
    if operation == "allreduce":
        sources, destinations = run_allreduce(machine, srm, size)
    elif operation == "reduce":
        run_reduce(machine, srm, size, root=0)
    else:
        run_broadcast(machine, srm, size, root=0)
    return machine.now - start


def test_allreduce_size_mismatch_rejected():
    machine, srm = make(nodes=1, tasks=2)

    def program(task):
        yield from srm.allreduce(task, np.ones(4), np.zeros(8), SUM)

    with pytest.raises(ValueError):
        machine.launch(program)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nodes,tasks", [(1, 1), (1, 8), (2, 4), (4, 4), (3, 5), (8, 2)])
def test_barrier_synchronizes(nodes, tasks):
    machine, srm = make(nodes=nodes, tasks=tasks)
    P = machine.spec.total_tasks
    arrivals = {}
    releases = {}

    def program(task):
        yield from task.compute(1e-6 * task.rank)  # staggered arrival
        arrivals[task.rank] = task.engine.now
        yield from srm.barrier(task)
        releases[task.rank] = task.engine.now

    machine.launch(program)
    # Nobody leaves before the last arrival.
    assert min(releases.values()) >= max(arrivals.values())
    del P


def test_barrier_repeated_calls():
    machine, srm = make(nodes=2, tasks=4)
    counter = {"rounds": 0}

    def program(task):
        for _ in range(5):
            yield from srm.barrier(task)
            if task.rank == 0:
                counter["rounds"] += 1

    machine.launch(program)
    assert counter["rounds"] == 5


def test_barrier_scales_logarithmically_in_nodes():
    def barrier_time(nodes):
        machine, srm = make(nodes=nodes, tasks=4)

        def program(task):
            yield from srm.barrier(task)

        machine.launch(program)  # warm
        start = machine.now
        machine.launch(program)
        return machine.now - start

    t4, t16 = barrier_time(4), barrier_time(16)
    # 4->16 nodes adds 2 dissemination rounds, not 4x the time.
    assert t16 < 2.2 * t4


# ---------------------------------------------------------------------------
# interrupt management (§2.3)
# ---------------------------------------------------------------------------


def test_small_collectives_disable_interrupts():
    machine, srm = make(nodes=2, tasks=2)
    run_broadcast(machine, srm, 1024, root=0)
    for task in machine.tasks:
        assert task.lapi.interrupts_enabled  # re-enabled afterwards
        assert task.stats.interrupts == 0  # all waits were LAPI polls


def test_interrupt_management_can_be_disabled():
    machine, srm = make(nodes=2, tasks=2, config=SRMConfig(manage_interrupts=False))
    run_broadcast(machine, srm, 1024, root=0)
    for rank, buffer in run_broadcast(machine, srm, 2048, root=0)[0].items():
        assert buffer is not None  # correctness unaffected


# ---------------------------------------------------------------------------
# configuration ablation handles
# ---------------------------------------------------------------------------


def test_custom_chunk_sizes_still_correct():
    config = SRMConfig(pipeline_chunk=1024, pipeline_min=2048, large_chunk=8192)
    machine, srm = make(nodes=2, tasks=4, config=config)
    buffers, reference, _ = run_broadcast(machine, srm, 30_000, root=0)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


def test_fibonacci_inter_tree_still_correct():
    config = SRMConfig(inter_family="fibonacci")
    machine, srm = make(nodes=5, tasks=3, config=config)
    buffers, reference, _ = run_broadcast(machine, srm, 5000, root=0)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)
