"""Unit tests for the network-transfer primitive, memops, and datatypes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.machine import ClusterSpec, Machine, network_transfer
from repro.machine.memops import raw_copyto
from repro.mpi.datatypes import BYTE, DOUBLE, INT, dtype_of, element_count
from repro.mpi.ops import SUM, by_name


@pytest.fixture
def machine():
    return Machine(ClusterSpec(nodes=2, tasks_per_node=2))


# ---------------------------------------------------------------------------
# network_transfer
# ---------------------------------------------------------------------------


def test_transfer_time_is_latency_plus_bandwidth(machine):
    nbytes = 1_000_000

    def program(task):
        yield from network_transfer(machine.nodes[0], machine.nodes[1], nbytes)

    elapsed = machine.launch(program, ranks=[0]).elapsed
    cost = machine.cost
    assert elapsed == pytest.approx(cost.net_latency + nbytes / cost.net_bandwidth, rel=0.01)


def test_zero_byte_transfer_is_pure_latency(machine):
    def program(task):
        yield from network_transfer(machine.nodes[0], machine.nodes[1], 0)

    elapsed = machine.launch(program, ranks=[0]).elapsed
    assert elapsed == pytest.approx(machine.cost.net_latency)


def test_same_node_transfer_rejected(machine):
    def program(task):
        yield from network_transfer(machine.nodes[0], machine.nodes[0], 10)

    with pytest.raises(ProtocolError):
        machine.launch(program, ranks=[0])


def test_concurrent_transfers_share_the_nic(machine):
    nbytes = 1_000_000

    def program(task):
        yield from network_transfer(machine.nodes[0], machine.nodes[1], nbytes)

    # Both ranks on node 0 stream to node 1 at once: NIC-out splits.
    result = machine.launch(program, ranks=[0, 1])
    expected = machine.cost.net_latency + 2 * nbytes / machine.cost.net_bandwidth
    assert result.elapsed == pytest.approx(expected, rel=0.02)


def test_opposite_directions_do_not_contend(machine):
    nbytes = 1_000_000

    def program(task):
        if task.rank == 0:
            yield from network_transfer(machine.nodes[0], machine.nodes[1], nbytes)
        else:
            yield from network_transfer(machine.nodes[1], machine.nodes[0], nbytes)

    result = machine.launch(program, ranks=[0, 2])
    # Full duplex: same time as a single transfer.
    expected = machine.cost.net_latency + nbytes / machine.cost.net_bandwidth
    assert result.elapsed == pytest.approx(expected, rel=0.05)


# ---------------------------------------------------------------------------
# raw_copyto
# ---------------------------------------------------------------------------


def test_raw_copy_same_dtype():
    src = np.arange(10, dtype=np.float64)
    dst = np.zeros(10)
    raw_copyto(dst, src)
    assert np.array_equal(dst, src)


def test_raw_copy_moves_bytes_not_values():
    src = np.arange(8, dtype=np.float64)
    dst = np.zeros(64, dtype=np.uint8)
    raw_copyto(dst, src)
    assert np.array_equal(dst.view(np.float64), src)  # bit-identical, not cast


def test_raw_copy_reverse_direction():
    src = np.arange(64, dtype=np.uint8)
    dst = np.zeros(8, dtype=np.float64)
    raw_copyto(dst, src)
    assert np.array_equal(dst.view(np.uint8), src)


# ---------------------------------------------------------------------------
# datatypes / ops registry
# ---------------------------------------------------------------------------


def test_dtype_lookup():
    assert dtype_of("double") == DOUBLE
    assert dtype_of("int") == INT
    assert dtype_of("byte") == BYTE
    assert dtype_of(np.dtype(np.float32)).itemsize == 4
    assert dtype_of("float64") == DOUBLE  # numpy names pass through


def test_dtype_unknown_rejected():
    with pytest.raises(ConfigurationError):
        dtype_of("quaternion")


def test_element_count():
    assert element_count(80, DOUBLE) == 10
    with pytest.raises(ConfigurationError):
        element_count(81, DOUBLE)


def test_op_registry():
    assert by_name("sum") is SUM
    assert by_name("max").name == "max"
    with pytest.raises(ConfigurationError):
        by_name("xor")


def test_op_identities():
    assert SUM.identity_for(np.float64) == 0
    assert by_name("min").identity_for(np.float64) == np.inf
    assert by_name("min").identity_for(np.int32) == np.iinfo(np.int32).max
    assert by_name("max").identity_for(np.float64) == -np.inf


def test_op_combine_into_aliasing():
    a = np.array([1.0, 2.0])
    b = np.array([10.0, 20.0])
    SUM.combine_into(a, a, b)  # dst aliases a
    assert np.array_equal(a, [11.0, 22.0])


def test_logical_ops():
    land = by_name("land")
    dst = np.array([1, 0, 2], dtype=np.int64)
    land(dst, np.array([1, 1, 0], dtype=np.int64))
    assert np.array_equal(dst, [1, 0, 0])
    lor = by_name("lor")
    out = np.zeros(3, dtype=np.int64)
    lor.combine_into(out, np.array([0, 1, 0]), np.array([0, 0, 2]))
    assert np.array_equal(out, [0, 1, 1])


def test_logical_ops_preserve_dtype_and_support_aliasing():
    # logical_and/or with out= must write 0/1 back in the destination's own
    # dtype (no bool temporaries) and tolerate dst aliasing an operand.
    land, lor = by_name("land"), by_name("lor")
    dst = np.array([0.5, 0.0, 3.0], dtype=np.float64)
    land(dst, np.array([1.0, 1.0, 0.0]))
    assert dst.dtype == np.float64
    assert np.array_equal(dst, [1.0, 0.0, 0.0])
    alias = np.array([0, 2, 0], dtype=np.uint8)
    lor.combine_into(alias, alias, np.array([0, 0, 5], dtype=np.uint8))
    assert alias.dtype == np.uint8
    assert np.array_equal(alias, [0, 1, 1])
    assert land.identity_for(np.int32) == 1
    assert lor.identity_for(np.float64) == 0


def test_bitwise_ops():
    band = by_name("band")
    dst = np.array([0b1100], dtype=np.int64)
    band(dst, np.array([0b1010], dtype=np.int64))
    assert dst[0] == 0b1000
    bor = by_name("bor")
    out = np.zeros(1, dtype=np.int64)
    bor.combine_into(out, np.array([0b01]), np.array([0b10]))
    assert out[0] == 0b11
