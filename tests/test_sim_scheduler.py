"""Tests for the pluggable tie-break schedulers and the purity contract."""

import pytest

from repro.sim import Engine, FifoScheduler, RandomScheduler, ReplayScheduler


def _race(engine, labels, seen):
    """Schedule one same-time event per label, recording firing order."""
    for label in labels:
        engine.timeout(1.0, value=label).add_callback(lambda e: seen.append(e.value))


# ---------------------------------------------------------------------------
# policy semantics
# ---------------------------------------------------------------------------


def test_fifo_scheduler_matches_default_order():
    plain, fifo = [], []
    engine = Engine()
    _race(engine, "abcd", plain)
    engine.run()
    engine = Engine(scheduler=FifoScheduler())
    _race(engine, "abcd", fifo)
    engine.run()
    assert fifo == plain == ["a", "b", "c", "d"]


def test_fifo_records_one_decision_per_contended_batch():
    scheduler = FifoScheduler()
    engine = Engine(scheduler=scheduler)
    seen = []
    _race(engine, "abc", seen)
    engine.timeout(2.0, value="solo").add_callback(lambda e: seen.append(e.value))
    engine.run()
    # Only the 3-way tie is a decision point; the singleton batch is not.
    assert len(scheduler.trace) == 1
    assert len(scheduler.trace[0]) == 3


def test_random_scheduler_permutes_ties():
    orders = set()
    for seed in range(20):
        seen = []
        engine = Engine(scheduler=RandomScheduler(seed=seed))
        _race(engine, "abcd", seen)
        engine.run()
        assert sorted(seen) == ["a", "b", "c", "d"]  # a permutation, always
        orders.add(tuple(seen))
    assert len(orders) > 1  # different seeds reach different interleavings


def test_random_scheduler_same_seed_same_order():
    def run(seed):
        seen = []
        engine = Engine(scheduler=RandomScheduler(seed=seed))
        _race(engine, "abcdef", seen)
        engine.run()
        return seen

    assert run(7) == run(7)
    assert run(7) != run(8) or run(7) != run(9)  # not all seeds collide


def test_replay_choice_moves_event_to_front():
    seen = []
    engine = Engine(scheduler=ReplayScheduler(choices=(2,)))
    _race(engine, "abcd", seen)
    engine.run()
    assert seen == ["c", "a", "b", "d"]


def test_replay_defaults_to_fifo_past_choices():
    scheduler = ReplayScheduler(choices=())
    seen = []
    engine = Engine(scheduler=scheduler)
    _race(engine, "abc", seen)
    engine.run()
    assert seen == ["a", "b", "c"]
    assert scheduler.taken == [0]
    assert scheduler.arities == [3]


def test_replay_arity_capped_by_max_branch():
    scheduler = ReplayScheduler(choices=(), max_branch=2)
    engine = Engine(scheduler=scheduler)
    _race(engine, "abcdef", [])
    engine.run()
    assert scheduler.arities == [2]


def test_replay_out_of_range_choice_raises():
    engine = Engine(scheduler=ReplayScheduler(choices=(5,)))
    _race(engine, "ab", [])
    with pytest.raises(ValueError):
        engine.run()


def test_signature_distinguishes_orders():
    signatures = set()
    for choice in range(3):
        scheduler = ReplayScheduler(choices=(choice,))
        engine = Engine(scheduler=scheduler)
        _race(engine, "abc", [])
        engine.run()
        signatures.add(scheduler.signature())
    assert len(signatures) == 3


def test_scheduler_reset_clears_trace():
    scheduler = RandomScheduler(seed=3)
    engine = Engine(scheduler=scheduler)
    _race(engine, "abc", [])
    engine.run()
    assert scheduler.trace
    scheduler.reset()
    assert scheduler.trace == []
    assert scheduler.signature() == RandomScheduler(seed=3).signature()


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


def test_scheduled_run_until_time():
    engine = Engine(scheduler=FifoScheduler())
    engine.timeout(1.0)
    engine.timeout(10.0)
    engine.run(until=5.0)
    assert engine.now == 5.0


def test_scheduled_run_until_event():
    scheduler = ReplayScheduler(choices=(1,))
    engine = Engine(scheduler=scheduler)
    seen = []
    _race(engine, "ab", seen)
    done = engine.timeout(2.0)
    engine.run(until=done)
    assert seen == ["b", "a"]


def test_scheduler_only_reorders_within_a_timestamp():
    seen = []
    engine = Engine(scheduler=RandomScheduler(seed=1))
    for delay, label in ((3.0, "late"), (1.0, "early"), (2.0, "mid")):
        engine.timeout(delay, value=label).add_callback(lambda e: seen.append(e.value))
    engine.run()
    assert seen == ["early", "mid", "late"]  # time order is never violated


# ---------------------------------------------------------------------------
# the purity contract: a run is a pure function of (inputs, scheduler)
# ---------------------------------------------------------------------------


def _contended_workload(engine, log):
    """Five processes racing through shared timestamps."""

    def worker(ident):
        for step in range(3):
            yield engine.timeout(1.0)
            log.append((engine.now, ident, step))

    for ident in range(5):
        engine.process(worker(ident), name=f"w{ident}")


def test_purity_same_scheduler_same_run():
    """Identical (inputs, scheduler) => identical event log AND trace."""

    def run(seed):
        scheduler = RandomScheduler(seed=seed)
        engine = Engine(scheduler=scheduler)
        log = []
        _contended_workload(engine, log)
        engine.run()
        return log, scheduler.signature()

    assert run(11) == run(11)
    log_a, sig_a = run(11)
    log_b, sig_b = run(12)
    assert sig_a != sig_b  # different scheduler => genuinely different schedule


def test_purity_none_scheduler_matches_fifo():
    def run(scheduler):
        engine = Engine(scheduler=scheduler)
        log = []
        _contended_workload(engine, log)
        engine.run()
        return log

    assert run(None) == run(FifoScheduler())
