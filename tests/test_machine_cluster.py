"""Unit tests for the Machine, Node, Task, and launch machinery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.mpi.ops import SUM


def small_machine(**kwargs):
    return Machine(ClusterSpec(nodes=2, tasks_per_node=4), **kwargs)


def test_machine_builds_nodes_and_tasks():
    machine = small_machine()
    assert len(machine.nodes) == 2
    assert len(machine.tasks) == 8
    assert machine.task(5).node.index == 1
    assert machine.task(5).local_index == 1


def test_node_master_is_lowest_rank():
    machine = small_machine()
    assert machine.nodes[0].master_rank == 0
    assert machine.nodes[1].master_rank == 4
    assert machine.task(4).is_node_master
    assert not machine.task(5).is_node_master


def test_endpoints_attached():
    machine = small_machine()
    for task in machine.tasks:
        assert task.lapi is not None
        assert task.mpi is not None


def test_task_copy_moves_real_bytes_and_takes_time():
    machine = small_machine()
    task = machine.task(0)
    src = np.arange(1024, dtype=np.float64)
    dst = np.zeros_like(src)

    def program(t):
        yield from t.copy(dst, src)

    result = machine.launch(program, ranks=[0])
    assert np.array_equal(dst, src)
    expected = machine.cost.copy_time(src.nbytes)
    assert result.elapsed == pytest.approx(expected, rel=0.01)
    assert task.stats.copies == 1
    assert task.stats.bytes_copied == src.nbytes


def test_task_copy_size_mismatch_rejected():
    machine = small_machine()
    task = machine.task(0)

    def program(t):
        yield from t.copy(np.zeros(4), np.zeros(8))

    with pytest.raises(ProtocolError):
        machine.launch(program, ranks=[0])
    del task


def test_task_reduce_into_applies_operator():
    machine = small_machine()
    dst = np.full(100, 2.0)
    src = np.full(100, 3.0)

    def program(t):
        yield from t.reduce_into(dst, src, SUM)

    result = machine.launch(program, ranks=[0])
    assert np.all(dst == 5.0)
    assert result.elapsed == pytest.approx(machine.cost.reduce_time(dst.nbytes), rel=0.01)


def test_concurrent_copies_contend_on_bus():
    # Aggregate bus bandwidth below the sum of per-CPU demands -> slowdown.
    cost = CostModel.ibm_sp_colony().evolve(
        memory_bus_bandwidth=500e6, sm_copy_bandwidth=400e6, sm_copy_latency=0.0
    )
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=4), cost=cost)
    nbytes = 1_000_000
    buffers = [(np.zeros(nbytes, np.uint8), np.ones(nbytes, np.uint8)) for _ in range(4)]

    def program(t):
        dst, src = buffers[t.rank]
        yield from t.copy(dst, src)

    result = machine.launch(program)
    # 4 MB aggregate through a 500 MB/s bus: 8 ms, vs 2.5 ms uncontended.
    assert result.elapsed == pytest.approx(4 * nbytes / 500e6, rel=0.02)


def test_launch_returns_per_rank_results():
    machine = small_machine()

    def program(t):
        yield t.engine.timeout(1e-6 * (t.rank + 1))
        return t.rank * 10

    result = machine.launch(program)
    assert result.results == {rank: rank * 10 for rank in range(8)}
    assert result.elapsed == pytest.approx(8e-6)
    assert result.finish_times[0] < result.finish_times[7]


def test_sequential_launches_advance_time():
    machine = small_machine()

    def program(t):
        yield t.engine.timeout(1e-3)

    first = machine.launch(program)
    second = machine.launch(program)
    assert second.start_time == pytest.approx(first.end_time)
    assert machine.now == pytest.approx(2e-3)


def test_launch_subset_of_ranks():
    machine = small_machine()
    visited = []

    def program(t):
        visited.append(t.rank)
        yield t.engine.timeout(0)

    machine.launch(program, ranks=[1, 3])
    assert sorted(visited) == [1, 3]


def test_launch_empty_ranks_rejected():
    machine = small_machine()
    with pytest.raises(ConfigurationError):
        machine.launch(lambda t: iter(()), ranks=[])


def test_daemon_noise_perturbs_timing():
    spec = ClusterSpec(nodes=1, tasks_per_node=2)
    # Make the bus the bottleneck so daemon bus theft is visible.
    base = CostModel.ibm_sp_colony().evolve(memory_bus_bandwidth=400e6)
    quiet = Machine(spec, cost=base)
    noisy = Machine(spec, cost=base.evolve(daemon_interval=1e-4), seed=7)
    src = np.ones(4_000_000, np.uint8)
    dst = np.zeros_like(src)

    def program(t):
        for _ in range(5):
            yield from t.copy(dst, src)

    quiet_time = quiet.launch(program, ranks=[0]).elapsed
    noisy_time = noisy.launch(program, ranks=[0]).elapsed
    assert noisy_time > quiet_time


def test_compute_models_pure_cpu_time():
    machine = small_machine()

    def program(t):
        yield from t.compute(5e-6)

    assert machine.launch(program, ranks=[0]).elapsed == pytest.approx(5e-6)
